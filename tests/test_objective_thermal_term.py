"""Quantitative checks of the objective's thermal term (Eq. 3 vs Eq. 2).

These tests pin the *semantics* of the thermal term: it must equal
``alpha_temp * sum_j R_j(layer_j) * P_j`` with the documented R and P
definitions, and its move deltas must price layer changes by the
resistance profile.
"""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from tests.conftest import make_chip


@pytest.fixture
def state(small_netlist):
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-4,
                             num_layers=4, seed=0)
    chip = make_chip(small_netlist)
    pl = Placement.random(small_netlist, chip, seed=6)
    return ObjectiveState(pl, config), config


class TestThermalTermSemantics:
    def test_total_decomposition(self, state):
        obj, config = state
        pl = obj.placement
        metrics = compute_net_metrics(pl)
        net_term = metrics.total_wl + config.alpha_ilv * metrics.total_ilv
        thermal = obj.total - net_term
        # recompute sum R_j P_j from the documented pieces
        pm = PowerModel(pl.netlist, config.tech)
        powers = pm.cell_powers(metrics)
        expected = 0.0
        for cid in range(pl.netlist.num_cells):
            expected += obj.cell_resistance(cid) * powers[cid]
        assert thermal == pytest.approx(config.alpha_temp * expected,
                                        rel=1e-9)

    def test_layer_move_priced_by_resistance_profile(self, state):
        obj, config = state
        pl = obj.placement
        # pick a driving cell on layer 0 with nonzero power
        cid = max(range(pl.netlist.num_cells),
                  key=lambda c: obj.cell_power(c))
        obj.apply_moves([(cid, float(pl.x[cid]), float(pl.y[cid]), 0)])
        p = obj.cell_power(cid)
        r0 = obj.cell_resistance(cid, 0)
        r3 = obj.cell_resistance(cid, 3)
        delta = obj.eval_moves([(cid, float(pl.x[cid]),
                                 float(pl.y[cid]), 3)])
        # the thermal part of the delta is a_temp * P * (R3 - R0); the
        # rest is the via/WL change of the cell's nets
        metrics_part = delta - config.alpha_temp * p * (r3 - r0)
        # via term must explain the remainder: recompute explicitly
        before = obj.total
        obj.apply_moves([(cid, float(pl.x[cid]), float(pl.y[cid]), 3)])
        assert obj.total == pytest.approx(before + delta, rel=1e-12)
        # moving a hot cell up must cost thermal-wise
        assert config.alpha_temp * p * (r3 - r0) > 0

    def test_higher_alpha_temp_scales_term(self, small_netlist):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=6)
        metrics = compute_net_metrics(pl)
        totals = {}
        for at in (1e-5, 2e-5):
            config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=at,
                                     num_layers=4, seed=0)
            totals[at] = ObjectiveState(pl.copy(), config).total
        net_term = metrics.total_wl + 1e-5 * metrics.total_ilv
        t1 = totals[1e-5] - net_term
        t2 = totals[2e-5] - net_term
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_resistance_profile_monotone(self, state):
        obj, _ = state
        cid = 0
        rs = [obj.cell_resistance(cid, z) for z in range(4)]
        assert rs == sorted(rs)
