"""Unit tests for row-aware cell shifting (Section 4.1)."""

import numpy as np
import pytest

from repro.core.cellshift import BETA_CANDIDATES, CellShifter, shifted_widths
from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState
from repro.netlist.placement import Placement
from tests.conftest import make_chip

PARAMS = dict(a_lower=0.5, a_upper=1.0, b=1.0)


class TestShiftedWidths:
    def test_row_without_congestion_untouched(self):
        w = shifted_widths([0.2, 0.9, 1.0, 0.5], 2.0, **PARAMS)
        assert np.allclose(w, 2.0)

    def test_total_width_conserved(self):
        d = [0.1, 2.5, 1.4, 0.0, 0.8]
        w = shifted_widths(d, 3.0, **PARAMS)
        assert w.sum() == pytest.approx(15.0)

    def test_congested_bins_expand(self):
        d = [0.5, 2.0, 0.5]
        w = shifted_widths(d, 1.0, **PARAMS)
        assert w[1] > 1.0
        assert w[0] < 1.0 and w[2] < 1.0

    def test_widths_strictly_positive(self):
        d = [0.0, 0.0, 10.0, 0.0, 0.0]
        w = shifted_widths(d, 1.0, **PARAMS)
        assert np.all(w > 0)

    def test_no_crossover_boundaries_monotone(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            d = rng.uniform(0, 3, 10)
            w = shifted_widths(d, 1.0, **PARAMS)
            bounds = np.concatenate(([0.0], np.cumsum(w)))
            assert np.all(np.diff(bounds) > 0)

    def test_sparse_contract_only_as_needed(self):
        # one slightly congested bin among many empties: empties must
        # NOT contract to their minimum, only enough to feed the need
        d = [1.05] + [0.0] * 9
        w = shifted_widths(d, 1.0, **PARAMS)
        assert w[1] > 0.9  # barely touched

    def test_expansion_capped_by_availability(self):
        # massive congestion, one small donor
        d = [5.0, 0.9]
        w = shifted_widths(d, 1.0, **PARAMS)
        assert w.sum() == pytest.approx(2.0)
        assert w[1] >= 0.1

    def test_higher_density_wider_bin(self):
        d = [1.2, 3.0, 0.0, 0.0]
        w = shifted_widths(d, 1.0, **PARAMS)
        assert w[1] > w[0] > 1.0


class TestCellShifter:
    def make(self, netlist, config, concentrate=True, seed=0):
        chip = make_chip(netlist, num_layers=config.num_layers)
        pl = Placement.random(netlist, chip, seed=seed)
        if concentrate:
            pl.x[:] = 0.25 * chip.width + 0.1 * pl.x
            pl.y[:] = 0.25 * chip.height + 0.1 * pl.y
        obj = ObjectiveState(pl, config)
        return CellShifter(obj, config)

    def test_reduces_max_density(self, small_netlist, config):
        shifter = self.make(small_netlist, config)
        shifter._rebuild_mesh()
        before = shifter.mesh.max_density
        shifter.run()
        shifter._rebuild_mesh()
        assert shifter.mesh.max_density < before

    def test_removes_most_overflow(self, small_netlist, config):
        shifter = self.make(small_netlist, config)
        shifter._rebuild_mesh()
        before = shifter.mesh.overflow(config.shift_max_density)
        shifter.run()
        shifter._rebuild_mesh()
        after = shifter.mesh.overflow(config.shift_max_density)
        # most overflow gone; a residue is irreducible by shifting when
        # single cells are wider than a bin (centre-point binning)
        assert after < 0.35 * before

    def test_converged_placement_stops_quickly(self, small_netlist,
                                               config):
        shifter = self.make(small_netlist, config)
        shifter.run()
        iterations = shifter.run()
        # at the target (0 iterations) or stalls out within a few
        assert iterations <= 6

    def test_cells_stay_inside_chip(self, small_netlist, config):
        shifter = self.make(small_netlist, config)
        shifter.run()
        pl = shifter.objective.placement
        chip = pl.chip
        assert np.all((pl.x >= 0) & (pl.x <= chip.width))
        assert np.all((pl.y >= 0) & (pl.y <= chip.height))
        assert np.all((pl.z >= 0) & (pl.z < chip.num_layers))

    def test_objective_state_stays_consistent(self, small_netlist,
                                              config):
        shifter = self.make(small_netlist, config)
        shifter.run(max_iterations=3)
        shifter.objective.check_consistency()

    def test_z_rebalances_layers(self, small_netlist, config):
        chip = make_chip(small_netlist, num_layers=config.num_layers)
        pl = Placement.random(small_netlist, chip, seed=1)
        pl.z[:] = 0  # everything on the bottom layer
        obj = ObjectiveState(pl, config)
        shifter = CellShifter(obj, config)
        shifter.run()
        populated = len(set(pl.z.tolist()))
        assert populated >= 2

    def test_beta_candidates_shape(self):
        assert all(0 < b <= 1 for b in BETA_CANDIDATES)
        assert 1.0 in BETA_CANDIDATES
