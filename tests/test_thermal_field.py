"""Focused tests for TemperatureField and solver grid bookkeeping."""

import numpy as np
import pytest

from repro.geometry.chip import ChipGeometry
from repro.thermal.solver import ThermalSolver


@pytest.fixture
def chip():
    return ChipGeometry(width=64e-6, height=32e-6, num_layers=3,
                        row_height=2e-6, row_pitch=2.5e-6)


@pytest.fixture
def solver(chip, tech):
    return ThermalSolver(chip, tech, nx=8, ny=4)


class TestFieldGeometry:
    def test_active_shape(self, solver):
        field = solver.solve_powers(np.zeros((8, 4, 3)))
        assert field.active.shape == (8, 4, 3)

    def test_at_maps_coordinates(self, solver, chip):
        p = np.zeros((8, 4, 3))
        p[5, 2, 1] = 1e-3
        field = solver.solve_powers(p)
        # the centre of bin (5,2) on layer 1 must read the peak value
        x = (5 + 0.5) / 8 * chip.width
        y = (2 + 0.5) / 4 * chip.height
        assert field.at(x, y, 1) == pytest.approx(
            float(field.active[5, 2, 1]))

    def test_mean_and_max(self, solver):
        p = np.zeros((8, 4, 3))
        p[0, 0, 2] = 1e-3
        field = solver.solve_powers(p)
        assert field.max_temperature >= field.mean_temperature
        assert field.max_temperature == pytest.approx(
            float(field.active.max()))


class TestGridAnisotropy:
    def test_wide_bins_conduct_more_in_x(self, chip, tech):
        """A non-square grid must use per-direction face areas: heat
        injected at the centre spreads symmetrically in *physical*
        distance, not in bin counts."""
        solver = ThermalSolver(chip, tech, nx=8, ny=4)  # square bins
        p = np.zeros((8, 4, 3))
        p[4, 2, 0] = 1e-3
        field = solver.solve_powers(p)
        # physical symmetry: one bin left vs one bin down (both 8 um)
        left = float(field.active[3, 2, 0])
        down = float(field.active[4, 1, 0])
        assert left == pytest.approx(down, rel=0.2)

    def test_resolution_convergence(self, chip, tech):
        """Refining the grid changes the mean temperature only mildly
        (the discretization is consistent)."""
        p_total = 1e-3
        means = []
        for nx, ny in ((4, 2), (8, 4), (16, 8)):
            solver = ThermalSolver(chip, tech, nx=nx, ny=ny)
            p = np.full((nx, ny, 3), p_total / (nx * ny * 3))
            means.append(solver.solve_powers(p).mean_temperature)
        assert means[2] == pytest.approx(means[1], rel=0.05)
        assert means[1] == pytest.approx(means[0], rel=0.15)


class TestMatrixReuse:
    def test_assembled_once(self, solver):
        a = solver._assemble()
        b = solver._assemble()
        assert a is b

    def test_two_solves_independent(self, solver):
        p1 = np.zeros((8, 4, 3))
        p1[1, 1, 0] = 1e-3
        p2 = np.zeros((8, 4, 3))
        p2[6, 2, 2] = 1e-3
        f1a = solver.solve_powers(p1).active.copy()
        solver.solve_powers(p2)
        f1b = solver.solve_powers(p1).active
        assert np.allclose(f1a, f1b)
