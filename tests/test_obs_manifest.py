"""Manifest building, hashing, and schema validation tests."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import Placer3D
from repro.obs import (
    build_manifest,
    config_hash,
    load_schema,
    validate_manifest,
    write_manifest,
)
from repro.obs.validate import main as validate_main
from repro.obs.validate import validate


class TestValidator:
    def test_type_mismatch(self):
        assert validate(1, {"type": "string"}) \
            == ["$: expected type string, got int"]

    def test_type_list_accepts_any_member(self):
        schema = {"type": ["string", "null"]}
        assert validate(None, schema) == []
        assert validate("x", schema) == []
        assert validate(1.5, schema) != []

    def test_bool_is_not_an_integer(self):
        assert validate(True, {"type": "integer"}) != []

    def test_required_and_properties(self):
        schema = {"type": "object", "required": ["a"],
                  "properties": {"a": {"type": "integer"}}}
        assert validate({"a": 1}, schema) == []
        assert validate({}, schema) == ["$: missing required key 'a'"]
        assert validate({"a": "x"}, schema) \
            == ["$.a: expected type integer, got str"]

    def test_additional_properties_false(self):
        schema = {"type": "object", "properties": {},
                  "additionalProperties": False}
        assert validate({"x": 1}, schema) == ["$: unexpected key 'x'"]

    def test_items_and_min_items(self):
        schema = {"type": "array", "minItems": 2,
                  "items": {"type": "number"}}
        assert validate([1.0, 2.0], schema) == []
        assert len(validate([1.0], schema)) == 1
        assert validate([1.0, "x"], schema) \
            == ["$[1]: expected type number, got str"]

    def test_const_and_minimum(self):
        assert validate("a", {"const": "b"}) != []
        assert validate(-1, {"minimum": 0}) != []
        assert validate(0, {"minimum": 0}) == []

    def test_unknown_keyword_raises(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            validate({}, {"patternProperties": {}})

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"a": 1}))
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps({"type": "object",
                                      "required": ["a"]}))
        assert validate_main([str(good), str(schema)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({}))
        assert validate_main([str(bad), str(schema)]) == 1
        assert validate_main([]) == 2


class TestConfigHash:
    def test_deterministic(self, config):
        assert config_hash(config) == config_hash(config)
        assert config_hash(config).startswith("sha256:")

    def test_sensitive_to_any_knob(self, config):
        changed = dataclasses.replace(config, seed=config.seed + 1)
        assert config_hash(changed) != config_hash(config)
        changed = dataclasses.replace(config, alpha_ilv=2e-5)
        assert config_hash(changed) != config_hash(config)


class TestManifest:
    @pytest.fixture
    def placed(self, small_netlist, config):
        result = Placer3D(small_netlist, config).run()
        return small_netlist, config, result

    def test_manifest_validates_against_packaged_schema(self, placed):
        netlist, config, result = placed
        manifest = build_manifest(netlist, config, result)
        assert validate_manifest(manifest) == []
        assert manifest["kind"] == "repro.placement.run"
        assert manifest["circuit"]["num_cells"] == netlist.num_cells
        assert manifest["config_hash"] == config_hash(config)
        assert any(row["path"] == "place/global"
                   for row in manifest["stages"])
        assert len(manifest["rounds"]) == config.legalization_rounds

    def test_validation_catches_missing_and_mistyped_keys(self, placed):
        netlist, config, result = placed
        manifest = build_manifest(netlist, config, result)
        broken = dict(manifest)
        del broken["seed"]
        assert any("seed" in e for e in validate_manifest(broken))
        broken = json.loads(json.dumps(manifest))
        broken["result"]["ilv"] = "lots"
        assert any("$.result.ilv" in e for e in validate_manifest(broken))

    def test_write_manifest_round_trips(self, placed, tmp_path):
        netlist, config, result = placed
        manifest = build_manifest(netlist, config, result,
                                  trace_path="run.trace.jsonl")
        path = write_manifest(tmp_path / "sub" / "run.manifest.json",
                              manifest)
        loaded = json.loads(open(path).read())
        assert validate_manifest(loaded) == []
        assert loaded["trace_path"] == "run.trace.jsonl"

    def test_schema_itself_uses_only_supported_keywords(self):
        # validating anything exercises every keyword in the schema;
        # an unsupported keyword would raise instead of reporting
        errors = validate_manifest({})
        assert errors  # empty dict is invalid, but validation ran
        assert load_schema()["type"] == "object"
