"""Unit tests for the synthetic netlist generator and benchmark suite."""

import math

import numpy as np
import pytest

from repro.netlist.generator import (
    DEFAULT_DEGREE_WEIGHTS,
    GeneratorSpec,
    generate_netlist,
)
from repro.netlist.suite import (
    SUITE_PROFILES,
    benchmark_names,
    load_benchmark,
)


class TestGeneratorSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", num_cells=1, total_area=1e-9)
        with pytest.raises(ValueError):
            GeneratorSpec("x", num_cells=10, total_area=-1.0)
        with pytest.raises(ValueError):
            GeneratorSpec("x", num_cells=10, total_area=1e-9,
                          locality=0.0)
        with pytest.raises(ValueError):
            GeneratorSpec("x", num_cells=10, total_area=1e-9,
                          global_fraction=2.0)


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def netlist(self):
        spec = GeneratorSpec("gen", num_cells=500,
                             total_area=500 * 5e-12, seed=42)
        return generate_netlist(spec)

    def test_cell_count(self, netlist):
        assert netlist.num_cells == 500

    def test_total_area_exact(self, netlist):
        assert netlist.total_cell_area == pytest.approx(500 * 5e-12,
                                                        rel=1e-9)

    def test_uniform_height(self, netlist):
        heights = {c.height for c in netlist.cells}
        assert len(heights) == 1

    def test_net_count_matches_ratio(self, netlist):
        assert netlist.num_nets == round(1.05 * 500)

    def test_every_net_has_one_driver(self, netlist):
        for net in netlist.nets:
            assert net.num_output_pins == 1

    def test_no_duplicate_pins(self, netlist):
        for net in netlist.nets:
            ids = net.cell_ids
            assert len(ids) == len(set(ids))

    def test_degree_distribution_dominated_by_two_pin(self, netlist):
        hist = netlist.degree_histogram()
        assert hist.get(2, 0) > 0.4 * netlist.num_nets

    def test_activities_in_range(self, netlist):
        for net in netlist.nets:
            assert 0.05 <= net.activity <= 0.45

    def test_deterministic(self):
        spec = GeneratorSpec("gen", num_cells=100,
                             total_area=100 * 5e-12, seed=9)
        a = generate_netlist(spec)
        b = generate_netlist(spec)
        assert [n.cell_ids for n in a.nets] == [n.cell_ids for n in b.nets]
        assert np.allclose(a.widths, b.widths)

    def test_seed_changes_structure(self):
        a = generate_netlist(GeneratorSpec("g", 100, 100 * 5e-12, seed=1))
        b = generate_netlist(GeneratorSpec("g", 100, 100 * 5e-12, seed=2))
        assert [n.cell_ids for n in a.nets] != [n.cell_ids for n in b.nets]

    def test_locality_reduces_home_distance(self):
        def mean_span(nl, spec_seed):
            # approximate: spread of cell ids is meaningless; regenerate
            # home positions the way the generator does
            rng = np.random.default_rng(spec_seed)
            return nl

        local = generate_netlist(GeneratorSpec(
            "loc", 400, 400 * 5e-12, locality=0.02, global_fraction=0.0,
            seed=3))
        spread = generate_netlist(GeneratorSpec(
            "spr", 400, 400 * 5e-12, locality=0.9, global_fraction=0.0,
            seed=3))
        # proxy: a min-cut of the local netlist should be cheaper; use
        # the partitioner itself
        from repro.partition import BisectionConfig, Hypergraph, bisect
        def cut(nl):
            g = Hypergraph(nl.num_cells,
                           [n.unique_cell_ids for n in nl.nets])
            _, c = bisect(g, BisectionConfig(seed=0))
            return c
        assert cut(local) < cut(spread)


class TestSuite:
    def test_profiles_match_table1(self):
        assert len(SUITE_PROFILES) == 18
        assert SUITE_PROFILES["ibm01"].cells == 12282
        assert SUITE_PROFILES["ibm01"].area_mm2 == pytest.approx(0.060)
        assert SUITE_PROFILES["ibm18"].cells == 210323
        assert SUITE_PROFILES["ibm18"].area_mm2 == pytest.approx(0.988)

    def test_names_ordered(self):
        names = benchmark_names()
        assert names[0] == "ibm01"
        assert names[-1] == "ibm18"

    def test_load_scaled(self):
        nl = load_benchmark("ibm03", scale=0.01)
        assert nl.num_cells == round(22207 * 0.01)
        # average cell area preserved under scaling
        profile = SUITE_PROFILES["ibm03"]
        avg = nl.total_cell_area / nl.num_cells
        assert avg == pytest.approx(profile.average_cell_area_m2, rel=1e-6)

    def test_min_cells_floor(self):
        nl = load_benchmark("ibm01", scale=1e-9)
        assert nl.num_cells == 64

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_benchmark("ibm99")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load_benchmark("ibm01", scale=0.0)

    def test_label_encodes_scale(self):
        assert load_benchmark("ibm02", scale=0.01).name == "ibm02@0.01"

    def test_different_circuits_decorrelated(self):
        a = load_benchmark("ibm01", scale=0.01, seed=0)
        b = load_benchmark("ibm02", scale=0.01, seed=0)
        assert [n.degree for n in a.nets[:50]] != \
            [n.degree for n in b.nets[:50]]
