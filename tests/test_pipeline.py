"""The composable stage pipeline: registry, spec, runner, context.

Covers the stage registry (lookup, options validation, duplicates),
PipelineSpec JSON round-trips with unknown-key rejection, unit-label
enumeration, the default spec's equivalence to the historical flow,
drop-in alternate global stages, halt-after boundaries, and the
context's idempotent TRR-net ownership.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.context import PlacementContext
from repro.core.detailed import check_legal
from repro.core.pipeline import (PipelineHalted, PipelineSpec,
                                 PlacementPipeline, RepeatEntry,
                                 StageEntry, default_pipeline_spec)
from repro.core.placer import Placer3D
from repro.core.stages import (Stage, available_stages, create_stage,
                               get_stage, register_stage)
from repro.netlist.generator import GeneratorSpec, generate_netlist


def _netlist(num_cells: int = 60, seed: int = 11):
    return generate_netlist(GeneratorSpec(
        name="pipe", num_cells=num_cells,
        total_area=num_cells * 5e-12, seed=seed))


class TestStageRegistry:
    def test_all_core_stages_registered(self):
        names = available_stages()
        for expected in ("global", "quadratic", "random", "moves",
                         "cellshift", "detailed", "refine"):
            assert expected in names

    def test_get_stage_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown stage"):
            get_stage("nope")

    def test_create_stage_rejects_bad_options(self):
        with pytest.raises(ValueError, match="bad options for stage"):
            create_stage("moves", {"bogus_option": 1})

    def test_create_stage_applies_options(self):
        stage = create_stage("moves", {"passes": 4})
        assert getattr(stage, "passes") == 4

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_stage("moves")
            class Duplicate(Stage):
                pass

    def test_needs_objective_split(self):
        assert get_stage("global").needs_objective is False
        assert get_stage("quadratic").needs_objective is False
        assert get_stage("moves").needs_objective is True
        assert get_stage("detailed").needs_objective is True


class TestPipelineSpec:
    def test_default_spec_shape(self):
        spec = default_pipeline_spec(
            PlacementConfig(legalization_rounds=2, refine_passes=1))
        assert isinstance(spec.entries[0], StageEntry)
        assert spec.entries[0].stage == "global"
        repeat = spec.entries[1]
        assert isinstance(repeat, RepeatEntry)
        assert repeat.rounds == 2
        assert [s.stage for s in repeat.stages] == \
            ["moves", "cellshift", "detailed", "refine"]

    def test_default_spec_drops_refine_when_disabled(self):
        spec = default_pipeline_spec(PlacementConfig(refine_passes=0))
        repeat = spec.entries[1]
        assert isinstance(repeat, RepeatEntry)
        assert [s.stage for s in repeat.stages] == \
            ["moves", "cellshift", "detailed"]

    def test_round_trip_through_dict(self):
        spec = default_pipeline_spec(
            PlacementConfig(legalization_rounds=3))
        again = PipelineSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.to_dict() == spec.to_dict()

    def test_round_trip_through_json_file(self, tmp_path):
        spec = PipelineSpec(entries=(
            StageEntry("quadratic", {"iterations": 2}),
            RepeatEntry(stages=(StageEntry("moves"),
                                StageEntry("detailed")), rounds=2),
        ))
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert PipelineSpec.from_json_file(path) == spec

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline-spec"):
            PipelineSpec.from_dict({"pipeline": [], "stages": []})

    def test_unknown_stage_entry_key_rejected(self):
        with pytest.raises(ValueError, match="unknown stage-entry"):
            PipelineSpec.from_dict(
                {"pipeline": [{"stage": "moves", "pases": 2}]})

    def test_unknown_repeat_key_rejected(self):
        with pytest.raises(ValueError, match="unknown repeat-group"):
            PipelineSpec.from_dict({"pipeline": [{"repeat": {
                "rounds": 1, "stage": [],
                "stages": [{"stage": "moves"}]}}]})

    def test_unknown_stage_name_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            PipelineSpec.from_dict({"pipeline": [{"stage": "warp"}]})

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="at least one entry"):
            PipelineSpec(entries=())

    def test_repeat_needs_rounds_and_stages(self):
        with pytest.raises(ValueError, match="rounds must be >= 1"):
            RepeatEntry(stages=(StageEntry("moves"),), rounds=0)
        with pytest.raises(ValueError, match="at least one stage"):
            RepeatEntry(stages=(), rounds=1)

    def test_units_enumeration(self):
        spec = PipelineSpec(entries=(
            StageEntry("global"),
            RepeatEntry(stages=(StageEntry("moves"),
                                StageEntry("detailed")), rounds=2),
        ))
        assert spec.units() == [
            "0:global",
            "1:round1/moves", "1:round1/detailed", "1:round1/end",
            "1:round2/moves", "1:round2/detailed", "1:round2/end",
            "1:end",
        ]

    def test_round_numbering_spans_repeat_groups(self):
        spec = PipelineSpec(entries=(
            RepeatEntry(stages=(StageEntry("moves"),), rounds=1),
            RepeatEntry(stages=(StageEntry("detailed"),), rounds=1),
        ))
        labels = spec.units()
        assert "0:round1/moves" in labels
        assert "1:round2/detailed" in labels
        assert spec.total_rounds == 2


class TestDefaultPipelineEquivalence:
    def test_explicit_default_spec_matches_implicit(self):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=3, seed=3,
                                 legalization_rounds=2)
        a = Placer3D(_netlist(), config).run()
        b = Placer3D(_netlist(), config,
                     spec=default_pipeline_spec(config)).run()
        assert np.array_equal(a.placement.x, b.placement.x)
        assert np.array_equal(a.placement.y, b.placement.y)
        assert np.array_equal(a.placement.z, b.placement.z)
        assert a.objective == b.objective

    def test_stage_and_round_seconds_derived_from_spec(self):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0,
                                 legalization_rounds=2)
        result = Placer3D(_netlist(40), config).run()
        for stage in ("global", "objective_build", "moves",
                      "cellshift", "detailed", "refine"):
            assert stage in result.stage_seconds
        assert len(result.round_seconds) == 2
        assert all("moves" in rnd for rnd in result.round_seconds)


class TestAlternateGlobalStages:
    @pytest.mark.parametrize("global_stage", ["quadratic", "random"])
    def test_swapped_global_stage_runs_and_legalizes(self, global_stage):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        spec = PipelineSpec(entries=(
            StageEntry(global_stage),
            RepeatEntry(stages=(StageEntry("moves"),
                                StageEntry("cellshift"),
                                StageEntry("detailed"))),
        ))
        result = Placer3D(_netlist(40), config, spec=spec).run()
        check_legal(result.placement)
        assert result.objective > 0

    def test_quadratic_stage_options_flow_from_spec(self):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        spec = PipelineSpec(entries=(
            StageEntry("quadratic", {"iterations": 1}),
            RepeatEntry(stages=(StageEntry("detailed"),)),
        ))
        result = Placer3D(_netlist(40), config, spec=spec).run()
        check_legal(result.placement)


class TestHaltAfter:
    def test_halt_raises_with_unit_label(self):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        placer = Placer3D(_netlist(40), config)
        with pytest.raises(PipelineHalted) as excinfo:
            placer.run(halt_after="round1/moves")
        assert excinfo.value.unit == "1:round1/moves"
        assert excinfo.value.directory is None

    def test_halt_matches_fully_qualified_label(self):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        placer = Placer3D(_netlist(40), config)
        with pytest.raises(PipelineHalted):
            placer.run(halt_after="0:global")


class TestContextTrrOwnership:
    def _thermal_config(self):
        return PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-5,
                               num_layers=2, seed=0)

    def test_trr_injection_idempotent_across_contexts(self):
        netlist = _netlist(30)
        config = self._thermal_config()
        first = PlacementContext.create(netlist, config)
        nets_after_first = netlist.num_nets
        second = PlacementContext.create(netlist, config)
        assert netlist.num_nets == nets_after_first
        assert first.trr_net_ids == second.trr_net_ids
        assert len(first.trr_net_ids) == \
            sum(1 for c in netlist.cells if c.movable)

    def test_trr_skipped_when_thermal_off(self):
        netlist = _netlist(30)
        before = netlist.num_nets
        ctx = PlacementContext.create(
            netlist, PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0))
        assert netlist.num_nets == before
        assert ctx.trr_net_ids == {}

    def test_rerunning_one_placer_does_not_duplicate_nets(self):
        netlist = _netlist(30)
        placer = Placer3D(netlist, self._thermal_config())
        placer.run()
        nets_after_first = netlist.num_nets
        placer.run()
        assert netlist.num_nets == nets_after_first


class TestContextObjectiveLifecycle:
    def test_objective_lazy_and_cached(self):
        ctx = PlacementContext.create(
            _netlist(30), PlacementConfig(alpha_ilv=1e-5, num_layers=2))
        assert not ctx.objective_built
        first = ctx.objective
        assert ctx.objective_built
        assert ctx.objective is first

    def test_invalidate_forces_rebuild(self):
        ctx = PlacementContext.create(
            _netlist(30), PlacementConfig(alpha_ilv=1e-5, num_layers=2))
        first = ctx.objective
        ctx.invalidate_objective()
        assert not ctx.objective_built
        assert ctx.objective is not first


class TestPipelineRunnerDirect:
    def test_runner_completes_all_units(self):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        ctx = PlacementContext.create(_netlist(40), config)
        spec = default_pipeline_spec(config)
        pipeline = PlacementPipeline(spec, ctx)
        pipeline.run()
        assert pipeline._completed == spec.units()
        check_legal(ctx.placement)
