"""Tests for the committed perf ledger (``repro.obs.history`` + CLI).

Covers measurement flattening, entry construction (including merged
before/after bench documents), JSONL round-trip with loud failure on
malformed lines, the rolling-median regression check, the history
renderer, and the ``repro obs history`` CLI exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.history import (LEDGER_KIND, append_entry, check_latest,
                               entry_from_measurement, load_ledger,
                               render_history)


def _measurement(wall=1.5):
    return {
        "placement": {
            "0.05": {"wall_seconds": wall, "peak_rss_bytes": 1000.0,
                     "cells": 600},
        },
        "rebuild": {"seconds": 0.2},
        "solve_powers": {"repeat_seconds": 0.05},
        "thermal_fidelity": {"exact_eval_seconds": 0.3,
                             "surrogate_eval_seconds": 0.01,
                             "calibration_seconds": 0.4},
    }


def _entry(label, **metrics):
    return {"kind": LEDGER_KIND, "recorded_unix": 0.0, "label": label,
            "metrics": metrics}


class TestEntryFromMeasurement:
    def test_flattens_known_sections(self):
        entry = entry_from_measurement(_measurement(), label="run",
                                       recorded_unix=12.0)
        assert entry["kind"] == LEDGER_KIND
        assert entry["recorded_unix"] == 12.0
        assert entry["metrics"] == {
            "wall_seconds/0.05": 1.5,
            "peak_rss_bytes/0.05": 1000.0,
            "rebuild_seconds": 0.2,
            "solve_powers_repeat_seconds": 0.05,
            "thermal/exact_eval_seconds": 0.3,
            "thermal/surrogate_eval_seconds": 0.01,
            "thermal/calibration_seconds": 0.4,
        }

    def test_after_block_wins_in_merged_document(self):
        merged = {"before": _measurement(wall=9.0),
                  "after": _measurement(wall=1.0)}
        entry = entry_from_measurement(merged, label="x",
                                       recorded_unix=0.0)
        assert entry["metrics"]["wall_seconds/0.05"] == 1.0

    def test_unknown_numeric_top_level_rides_along(self):
        entry = entry_from_measurement({"new_bench_seconds": 3.5},
                                       label="x", recorded_unix=0.0)
        assert entry["metrics"] == {"new_bench_seconds": 3.5}

    def test_commit_is_optional(self):
        entry = entry_from_measurement(_measurement(), label="x",
                                       commit="abc123",
                                       recorded_unix=0.0)
        assert entry["commit"] == "abc123"
        entry = entry_from_measurement(_measurement(), label="x",
                                       recorded_unix=0.0)
        assert "commit" not in entry

    def test_empty_measurement_raises(self):
        with pytest.raises(ValueError):
            entry_from_measurement({"notes": "nothing numeric"},
                                   label="x")


class TestLedgerIo:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "ledger.jsonl"
        first = _entry("a", wall=1.0)
        second = _entry("b", wall=2.0)
        append_entry(path, first)
        append_entry(path, second)
        entries = load_ledger(path)
        assert [e["label"] for e in entries] == ["a", "b"]
        assert entries[1]["metrics"] == {"wall": 2.0}

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "absent.jsonl") == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(_entry("a", x=1.0)) + "\n\n\n")
        assert len(load_ledger(path)) == 1

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(_entry("a", x=1.0)) + "\n{broken\n")
        with pytest.raises(ValueError, match=r"ledger\.jsonl:2"):
            load_ledger(path)

    def test_foreign_object_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"kind": "something.else"}\n')
        with pytest.raises(ValueError, match="not a repro.bench.entry"):
            load_ledger(path)


class TestCheckLatest:
    def test_fewer_than_two_entries_pass(self):
        assert check_latest([]) == []
        assert check_latest([_entry("a", wall=1.0)]) == []

    def test_within_threshold_passes(self):
        entries = [_entry("a", wall=1.0), _entry("b", wall=1.1)]
        assert check_latest(entries) == []

    def test_over_threshold_regresses(self):
        entries = [_entry("a", wall=1.0), _entry("b", wall=1.5)]
        (reg,) = check_latest(entries)
        assert reg.metric == "wall"
        assert reg.baseline == 1.0
        assert reg.value == 1.5
        assert reg.pct == pytest.approx(50.0)

    def test_baseline_is_rolling_median(self):
        # median of (1.0, 1.0, 10.0) is 1.0: one outlier run does not
        # poison the baseline
        entries = [_entry("a", wall=1.0), _entry("b", wall=10.0),
                   _entry("c", wall=1.0), _entry("d", wall=1.5)]
        (reg,) = check_latest(entries, window=3)
        assert reg.baseline == 1.0

    def test_window_bounds_lookback(self):
        # window=2 sees (4, 6): median 5, +10% passes.  window=3 also
        # sees the old fast run: median(1, 4, 6) = 4, +37.5% regresses.
        entries = [_entry("a", wall=1.0), _entry("b", wall=4.0),
                   _entry("c", wall=6.0), _entry("d", wall=5.5)]
        assert check_latest(entries, window=2) == []
        (reg,) = check_latest(entries, window=3)
        assert reg.metric == "wall"
        assert reg.baseline == 4.0

    def test_new_metric_has_no_baseline(self):
        entries = [_entry("a", wall=1.0),
                   _entry("b", wall=1.0, rss=999.0)]
        assert check_latest(entries) == []

    def test_improvement_passes_one_sided(self):
        entries = [_entry("a", wall=2.0), _entry("b", wall=0.1)]
        assert check_latest(entries) == []


class TestRenderHistory:
    def test_empty_ledger(self):
        assert render_history([]) == "ledger is empty"

    def test_summary_lists_all_entries(self):
        entries = [_entry("seed", wall=1.0, rss=2.0)]
        entries[0]["commit"] = "abcdef0123456789"
        text = render_history(entries)
        assert "seed" in text
        assert "abcdef012345" in text  # truncated to 12 chars
        assert "2" in text  # metric count

    def test_metric_trajectory(self):
        entries = [_entry("a", wall=1.0), _entry("b", other=2.0)]
        text = render_history(entries, metric="wall")
        lines = text.splitlines()
        assert lines[1].endswith("1")
        assert lines[2].endswith("n/a")


class TestObsHistoryCli:
    def test_append_then_check(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(_measurement()))
        assert main(["obs", "history", "--ledger", ledger, "--append",
                     str(bench), "--label", "first"]) == 0
        assert "appended entry 'first'" in capsys.readouterr().out
        assert main(["obs", "history", "--ledger", ledger, "--append",
                     str(bench), "--label", "second"]) == 0
        capsys.readouterr()
        assert main(["obs", "history", "--ledger", ledger,
                     "--check"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_short_ledger_exits_two(self, capsys, tmp_path):
        # a ledger with fewer than 2 entries has no baseline to check
        # against: exit 2 with a diagnostic, never a traceback
        ledger = str(tmp_path / "ledger.jsonl")
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(_measurement()))
        assert main(["obs", "history", "--ledger", ledger,
                     "--check"]) == 2
        assert "at least 2 ledger entries" in capsys.readouterr().err
        assert main(["obs", "history", "--ledger", ledger, "--append",
                     str(bench), "--label", "only"]) == 0
        capsys.readouterr()
        assert main(["obs", "history", "--ledger", ledger,
                     "--check"]) == 2
        assert "has 1" in capsys.readouterr().err

    def test_check_detects_regression(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        append_entry(ledger, _entry("a", wall=1.0))
        append_entry(ledger, _entry("b", wall=2.0))
        assert main(["obs", "history", "--ledger", str(ledger),
                     "--check"]) == 1
        assert "REGRESSION wall" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        append_entry(ledger, _entry("a", wall=1.0))
        append_entry(ledger, _entry("b", wall=2.0))
        assert main(["obs", "history", "--ledger", str(ledger),
                     "--check", "--threshold", "150"]) == 0

    def test_append_without_label_exits_two(self, capsys, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(_measurement()))
        assert main(["obs", "history", "--ledger",
                     str(tmp_path / "l.jsonl"), "--append",
                     str(bench)]) == 2
        assert "requires --label" in capsys.readouterr().err

    def test_corrupt_ledger_exits_two(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text("{broken\n")
        assert main(["obs", "history", "--ledger", str(ledger)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_plain_listing(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        append_entry(ledger, _entry("seed", wall=1.0))
        assert main(["obs", "history", "--ledger", str(ledger)]) == 0
        assert "seed" in capsys.readouterr().out

    def test_committed_ledger_parses(self):
        entries = load_ledger("benchmarks/results/ledger.jsonl")
        assert len(entries) >= 1
        assert entries[0]["metrics"]
