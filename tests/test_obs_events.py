"""JSONL event sink round-trip tests (``repro.obs.events``)."""

from __future__ import annotations

import pytest

from repro.obs import EventSink, Recorder, read_events


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestEventSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        clock = FakeClock()
        with EventSink(path, clock=clock) as sink:
            sink.emit({"type": "span", "path": "place", "seconds": 1.0})
            clock.advance(0.5)
            sink.emit({"type": "gauge", "name": "d", "value": 1.2})
        events = read_events(path)
        assert [e["type"] for e in events] == ["span", "gauge"]
        assert events[0]["t"] == 0.0
        assert events[1]["t"] == 0.5
        assert events[1]["value"] == 1.2

    def test_explicit_timestamp_is_kept(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with EventSink(path, clock=FakeClock()) as sink:
            sink.emit({"type": "x", "t": 42.0})
        assert read_events(path)[0]["t"] == 42.0

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        with EventSink(path) as sink:
            sink.emit({"type": "x"})
        assert len(read_events(path)) == 1

    def test_close_is_idempotent_and_emit_after_close_is_noop(
            self, tmp_path):
        sink = EventSink(tmp_path / "c.jsonl")
        sink.emit({"type": "x"})
        sink.close()
        sink.close()
        sink.emit({"type": "y"})
        assert sink.events_written == 1
        assert len(read_events(sink.path)) == 1

    def test_blank_lines_skipped_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"a"}\n\n{"type":"b"}\n')
        assert len(read_events(path)) == 2
        path.write_text('{"type":"a"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_events(path)


class TestRecorderStreaming:
    def test_recorder_streams_spans_and_series(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        clock = FakeClock()
        sink = EventSink(path, clock=clock)
        with Recorder(sink=sink, clock=clock) as rec:
            with rec.span("place/global"):
                clock.advance(1.0)
            rec.gauge("density", 1.3)
            rec.record("placer/round", round=1, objective=2.0)
        events = read_events(path)
        by_type = {}
        for event in events:
            by_type.setdefault(event["type"], []).append(event)
        assert by_type["span"][0]["path"] == "place/global"
        assert by_type["span"][0]["seconds"] == pytest.approx(1.0)
        assert by_type["gauge"][0]["name"] == "density"
        assert by_type["series"][0]["name"] == "placer/round"
        assert by_type["series"][0]["objective"] == 2.0
