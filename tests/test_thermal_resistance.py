"""Unit tests for the simple thermal-resistance model."""

import dataclasses

import pytest

from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig
from repro.thermal.resistance import ResistanceModel, VerticalProfile


@pytest.fixture
def chip():
    return ChipGeometry(width=100e-6, height=100e-6, num_layers=4,
                        row_height=2e-6, row_pitch=2.5e-6)


@pytest.fixture
def model(chip, tech):
    return ResistanceModel(chip, tech)


AREA = 5e-12


class TestCellResistance:
    def test_positive(self, model):
        assert model.cell_resistance(50e-6, 50e-6, 0, AREA) > 0

    def test_increases_with_layer(self, model):
        rs = [model.cell_resistance(50e-6, 50e-6, z, AREA)
              for z in range(4)]
        assert rs == sorted(rs)
        assert rs[3] > 1.5 * rs[0]  # strong vertical gradient

    def test_scales_inversely_with_area(self, model):
        r1 = model.cell_resistance(50e-6, 50e-6, 1, AREA)
        r2 = model.cell_resistance(50e-6, 50e-6, 1, 2 * AREA)
        assert r2 == pytest.approx(0.5 * r1, rel=1e-6)

    def test_dominated_by_down_path(self, model, chip, tech):
        """The heat-sink path conductance should dominate the total."""
        r = model.cell_resistance(50e-6, 50e-6, 0, AREA)
        r_down = (chip.layer_center_height(0)
                  / (tech.thermal_conductivity * AREA)
                  + 1.0 / (tech.heat_sink_convection * AREA))
        assert r == pytest.approx(r_down, rel=0.01)

    def test_substrate_in_path_raises_resistance(self, chip, tech):
        with_sub = dataclasses.replace(tech,
                                       substrate_in_thermal_path=True)
        r_no = ResistanceModel(chip, tech).cell_resistance(
            50e-6, 50e-6, 0, AREA)
        r_yes = ResistanceModel(chip, with_sub).cell_resistance(
            50e-6, 50e-6, 0, AREA)
        assert r_yes > 2 * r_no

    def test_zero_area_rejected(self, model):
        with pytest.raises(ValueError):
            model.cell_resistance(0, 0, 0, 0.0)

    def test_lateral_position_effect_is_tiny(self, model, chip):
        center = model.cell_resistance(50e-6, 50e-6, 2, AREA)
        corner = model.cell_resistance(1e-6, 1e-6, 2, AREA)
        assert corner == pytest.approx(center, rel=0.01)

    def test_adiabatic_secondary_surfaces(self, chip, tech):
        iso = dataclasses.replace(tech, secondary_convection=0.0)
        r = ResistanceModel(chip, iso).cell_resistance(50e-6, 50e-6, 3,
                                                       AREA)
        assert r > 0  # only the down path remains


class TestCellResistances:
    def test_array_matches_scalar(self, model, chip, tiny_netlist):
        pl = Placement.random(tiny_netlist, chip, seed=0)
        rs = model.cell_resistances(pl)
        cid = 2
        expected = model.cell_resistance(
            float(pl.x[cid]), float(pl.y[cid]), int(pl.z[cid]),
            tiny_netlist.areas[cid])
        assert rs[cid] == pytest.approx(expected)
        assert rs.shape == (tiny_netlist.num_cells,)


class TestVerticalProfile:
    def test_fit_matches_layer_values(self, model, chip):
        prof = model.vertical_profile(area=AREA)
        for z in range(4):
            fitted = prof.at_layer(chip, z)
            actual = model.layer_resistance(z, AREA)
            assert fitted == pytest.approx(actual, rel=0.05)

    def test_slope_positive(self, model):
        assert model.vertical_profile(area=AREA).slope > 0

    def test_single_layer_profile(self, tech):
        chip1 = ChipGeometry(width=100e-6, height=100e-6, num_layers=1,
                             row_height=2e-6, row_pitch=2.5e-6)
        prof = ResistanceModel(chip1, tech).vertical_profile(area=AREA)
        assert prof.r0 > 0
        assert prof.slope > 0

    def test_profile_slope_matches_marginal_layer_cost(self, model,
                                                       chip, tech):
        prof = model.vertical_profile(area=AREA)
        # slope * pitch should be close to the per-layer resistance step
        step = (model.layer_resistance(1, AREA)
                - model.layer_resistance(0, AREA))
        assert prof.slope * chip.layer_pitch == pytest.approx(step,
                                                              rel=0.1)
