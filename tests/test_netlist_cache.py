"""Unit tests for the content-keyed netlist cache."""

import pytest

from repro.netlist import bookshelf
from repro.netlist.cache import (NetlistCache, benchmark_key,
                                 bookshelf_key, cached_netlist,
                                 clear_netlist_cache,
                                 netlist_cache_stats)
from repro.netlist.net import PinRole
from repro.netlist.suite import load_benchmark


@pytest.fixture(autouse=True)
def _fresh_global_cache():
    clear_netlist_cache()
    yield
    clear_netlist_cache()


def _loader():
    return load_benchmark("ibm01", scale=0.01, seed=0)


class TestNetlistCache:
    def test_miss_then_hit(self):
        cache = NetlistCache()
        key = benchmark_key("ibm01", 0.01, 0)
        first = cache.get_or_load(key, _loader)
        second = cache.get_or_load(key, _loader)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert first is not second  # fresh copies, never shared

    def test_hit_carries_content_key(self):
        cache = NetlistCache()
        key = benchmark_key("ibm01", 0.01, 0)
        assert cache.get_or_load(key, _loader).content_key == key
        assert cache.get_or_load(key, _loader).content_key == key

    def test_mutation_does_not_leak_between_copies(self):
        cache = NetlistCache()
        key = benchmark_key("ibm01", 0.01, 0)
        first = cache.get_or_load(key, _loader)
        first.add_net("__trr__x", [(0, PinRole.SINK)], activity=0.0,
                      is_trr=True)
        second = cache.get_or_load(key, _loader)
        assert second.num_nets == first.num_nets - 1

    def test_loader_mutation_after_miss_is_isolated(self):
        cache = NetlistCache()
        key = benchmark_key("ibm01", 0.01, 0)
        first = cache.get_or_load(key, _loader)
        # the pristine snapshot was taken before this mutation
        first.add_cell("extra", 1e-6, 1e-6)
        second = cache.get_or_load(key, _loader)
        assert second.num_cells == first.num_cells - 1

    def test_lru_eviction(self):
        cache = NetlistCache(capacity=2)
        for seed in (0, 1, 2):
            cache.get_or_load(benchmark_key("ibm01", 0.01, seed),
                              lambda s=seed: load_benchmark(
                                  "ibm01", scale=0.01, seed=s))
        assert cache.stats()["entries"] == 2
        # seed 0 was evicted: loading it again misses
        cache.get_or_load(benchmark_key("ibm01", 0.01, 0), _loader)
        assert cache.stats()["misses"] == 4

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            NetlistCache(capacity=0)


class TestKeys:
    def test_benchmark_key_distinguishes_sources(self):
        assert benchmark_key("ibm01", 0.05, 0) \
            != benchmark_key("ibm01", 0.05, 1)
        assert benchmark_key("ibm01", 0.05, 0) \
            != benchmark_key("ibm01", 0.1, 0)
        assert benchmark_key("ibm01", 0.05, 0) \
            != benchmark_key("ibm02", 0.05, 0)

    def test_bookshelf_key_tracks_file_stat(self, tmp_path):
        nl = load_benchmark("ibm01", scale=0.01, seed=0)
        prefix = str(tmp_path / "circ")
        bookshelf.write_bookshelf(prefix, nl)
        before = bookshelf_key(prefix)
        assert before == bookshelf_key(prefix)
        with open(prefix + ".nodes", "a") as fh:
            fh.write("\n")
        assert bookshelf_key(prefix) != before

    def test_bookshelf_key_absent_files(self, tmp_path):
        key = bookshelf_key(str(tmp_path / "nope"))
        assert "absent" in key


class TestGlobalCache:
    def test_cached_netlist_round_trip(self):
        key = benchmark_key("ibm01", 0.01, 0)
        first = cached_netlist(key, _loader)
        second = cached_netlist(key, _loader)
        assert first is not second
        assert first.num_cells == second.num_cells
        assert netlist_cache_stats()["hits"] == 1
