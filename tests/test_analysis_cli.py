"""CLI, baseline round-trip and SARIF output tests for
``python -m tools.analysis``."""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path
from typing import Dict

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis import main
from tools.analysis.baseline import (Baseline, BaselineError,
                                     apply_baseline)
from tools.analysis.findings import Finding
from tools.analysis.sarif import to_sarif


def write_package(root: Path, files: Dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


#: A fixture tree with one seeded determinism violation (RPA101) and
#: one RPL013 wall-clock read.
def violation_package(tmp_path: Path) -> Path:
    return write_package(tmp_path / "repro", {
        "__init__.py": "",
        "core/__init__.py": "",
        "core/pipeline.py": """
            from repro.core.work import step

            class PlacementPipeline:
                def run(self) -> None:
                    step()
        """,
        "core/work.py": """
            import time
            import numpy as np

            def step() -> float:
                rng = np.random.default_rng()
                return rng.random() + time.time()
        """,
    })


def clean_package(tmp_path: Path) -> Path:
    return write_package(tmp_path / "repro", {
        "__init__.py": "",
        "core/__init__.py": "",
        "core/pipeline.py": """
            from repro.core.work import step

            class PlacementPipeline:
                def run(self) -> None:
                    step()
        """,
        "core/work.py": """
            import numpy as np

            def step() -> float:
                rng = np.random.default_rng(3)
                return rng.random()
        """,
    })


class TestExitCodes:
    def test_nonzero_on_seeded_violation_fixture(self, tmp_path,
                                                 capsys):
        root = violation_package(tmp_path)
        code = main([str(root), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPA101" in out
        assert "RPL013" in out

    def test_zero_on_clean_fixture(self, tmp_path):
        root = clean_package(tmp_path)
        assert main([str(root), "--no-baseline"]) == 0

    def test_zero_on_shipped_tree_with_committed_baseline(self):
        assert main([str(REPO_ROOT / "src" / "repro"),
                     "--baseline",
                     str(REPO_ROOT / "tools" / "analysis"
                         / "baseline.json")]) == 0

    def test_unknown_pass_is_usage_error(self, tmp_path):
        root = clean_package(tmp_path)
        assert main([str(root), "--pass", "nope"]) == 2

    def test_max_seconds_guard_trips(self, tmp_path, capsys):
        root = clean_package(tmp_path)
        code = main([str(root), "--no-baseline",
                     "--max-seconds", "0.0"])
        assert code == 1
        assert "bench guard" in capsys.readouterr().err


class TestBaselineRoundTrip:
    def test_write_then_suppress(self, tmp_path, capsys):
        root = violation_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(root), "--baseline", str(baseline),
                     "--write-baseline", "fixture accepts these"]) == 0
        assert baseline.exists()
        # the same findings are now suppressed and the run passes
        assert main([str(root), "--baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "suppressed" in err

    def test_line_drift_keeps_fingerprints(self, tmp_path):
        root = violation_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(root), "--baseline", str(baseline),
                     "--write-baseline", "fixture accepts these"]) == 0
        # prepend a comment block: every line number shifts
        work = root / "core" / "work.py"
        work.write_text("# banner\n# banner\n# banner\n"
                        + work.read_text())
        assert main([str(root), "--baseline", str(baseline)]) == 0

    def test_stale_entries_reported_not_fatal(self, tmp_path, capsys):
        root = clean_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": {"deadbeefdeadbeef": {
                "rule": "RPA101", "reason": "obsolete"}},
        }))
        assert main([str(root), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_entry_without_reason_rejected(self, tmp_path, capsys):
        root = clean_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": {"deadbeefdeadbeef": {"rule": "RPA101"}},
        }))
        assert main([str(root), "--baseline", str(baseline)]) == 2
        assert "justification" in capsys.readouterr().err

    def test_malformed_baseline_rejected(self, tmp_path):
        with pytest.raises(BaselineError):
            bad = tmp_path / "b.json"
            bad.write_text("[]")
            Baseline.load(bad)

    def test_apply_baseline_split(self):
        f1 = Finding(rule="RPA101", path="a.py", line=1, col=0,
                     symbol="a.f", message="m1")
        f2 = Finding(rule="RPA102", path="a.py", line=2, col=0,
                     symbol="a.g", message="m2")
        baseline = Baseline(entries={
            f1.fingerprint(): {"reason": "known"}})
        active, suppressed, stale = apply_baseline([f1, f2], baseline)
        assert active == [f2]
        assert suppressed == [f1]
        assert stale == []


class TestSarifOutput:
    def test_sarif_written_and_valid(self, tmp_path):
        root = violation_package(tmp_path)
        sarif_path = tmp_path / "out" / "analysis.sarif"
        code = main([str(root), "--no-baseline",
                     "--sarif", str(sarif_path)])
        assert code == 1
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        result_rules = {r["ruleId"] for r in run["results"]}
        assert result_rules <= rule_ids
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["region"]["startLine"] >= 1
            assert "uri" in loc["artifactLocation"]
            assert "reproAnalysis/v1" in result["partialFingerprints"]

    def test_suppressed_findings_marked(self, tmp_path):
        root = violation_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        sarif_path = tmp_path / "analysis.sarif"
        assert main([str(root), "--baseline", str(baseline),
                     "--write-baseline", "accepted"]) == 0
        assert main([str(root), "--baseline", str(baseline),
                     "--sarif", str(sarif_path)]) == 0
        log = json.loads(sarif_path.read_text())
        results = log["runs"][0]["results"]
        assert results, "suppressed findings must still be emitted"
        assert all(r.get("suppressions") for r in results)

    def test_to_sarif_unit(self):
        finding = Finding(rule="RPA101", path="src\\x.py", line=3,
                          col=2, symbol="x.f", message="m",
                          pass_name="determinism")
        log = to_sarif([finding], rule_docs={"RPA101": "doc"})
        result = log["runs"][0]["results"][0]
        assert result["level"] == "error"
        loc = result["locations"][0]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] \
            == "src/x.py"
        assert loc["logicalLocations"][0]["fullyQualifiedName"] == "x.f"
        assert result["properties"]["pass"] == "determinism"


class TestListPasses:
    def test_all_passes_listed(self, capsys):
        assert main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in ("lint", "determinism", "purity", "fork-safety",
                     "contracts"):
            assert name in out
