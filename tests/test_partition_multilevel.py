"""Unit tests for multilevel bisection."""

import numpy as np
import pytest

from repro.partition.fm import cut_cost
from repro.partition.hypergraph import FREE, Hypergraph
from repro.partition.multilevel import BisectionConfig, bisect


def ring(n: int) -> Hypergraph:
    return Hypergraph(n, [[i, (i + 1) % n] for i in range(n)])


def clustered(n_clusters: int, size: int, seed: int = 0) -> Hypergraph:
    """Dense clusters with a single chain of bridges; cheap cuts exist."""
    rng = np.random.default_rng(seed)
    nets = []
    for c in range(n_clusters):
        base = c * size
        for _ in range(size * 2):
            a, b = rng.integers(0, size, 2)
            if a != b:
                nets.append([base + int(a), base + int(b)])
        if c + 1 < n_clusters:
            nets.append([base + size - 1, base + size])
    return Hypergraph(n_clusters * size, nets)


class TestBisect:
    def test_empty_graph(self):
        parts, cut = bisect(Hypergraph(0, []))
        assert len(parts) == 0
        assert cut == 0.0

    def test_ring_cut_is_two(self):
        parts, cut = bisect(ring(32), BisectionConfig(seed=0))
        assert cut == pytest.approx(2.0)

    def test_clustered_graph_cut_cheap(self):
        g = clustered(4, 16)
        parts, cut = bisect(g, BisectionConfig(seed=1))
        # the only cheap cuts are the bridges; expect roughly one bridge
        assert cut <= 3.0

    def test_balance(self):
        g = clustered(4, 16)
        config = BisectionConfig(tolerance=0.05, seed=2)
        parts, _ = bisect(g, config)
        frac = (parts == 0).sum() / g.num_vertices
        # window plus the one-vertex slack rule
        assert 0.4 <= frac <= 0.6

    def test_returned_cut_matches(self):
        g = clustered(2, 20, seed=5)
        parts, cut = bisect(g, BisectionConfig(seed=3))
        assert cut == pytest.approx(cut_cost(g, parts))

    def test_deterministic_given_seed(self):
        g = clustered(3, 12, seed=7)
        a, ca = bisect(g, BisectionConfig(seed=9))
        b, cb = bisect(g, BisectionConfig(seed=9))
        assert np.array_equal(a, b)
        assert ca == cb

    def test_all_fixed(self):
        g = Hypergraph(4, [[0, 1], [2, 3]], fixed=[0, 0, 1, 1],
                       vertex_weights=[0, 0, 0, 0])
        parts, cut = bisect(g)
        assert list(parts) == [0, 0, 1, 1]
        assert cut == 0.0

    def test_fixed_respected_through_coarsening(self):
        g = clustered(4, 32, seed=1)
        fixed = np.full(g.num_vertices, FREE)
        fixed[0] = 0
        fixed[g.num_vertices - 1] = 1
        g2 = Hypergraph(g.num_vertices, g.nets,
                        vertex_weights=np.where(fixed == FREE, 1.0, 0.0),
                        fixed=fixed)
        parts, _ = bisect(g2, BisectionConfig(seed=0))
        assert parts[0] == 0
        assert parts[g.num_vertices - 1] == 1

    def test_terminal_pulls_its_cluster(self):
        # two cliques; pin one vertex of clique A to side 1 — the whole
        # clique should follow to keep the cut at the bridge
        nets = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3],
                [0, 6]]
        fixed = [FREE] * 6 + [1]
        weights = [1.0] * 6 + [0.0]
        g = Hypergraph(7, nets, vertex_weights=weights, fixed=fixed)
        parts, cut = bisect(g, BisectionConfig(seed=0))
        assert parts[0] == parts[1] == parts[2] == 1
        assert parts[3] == parts[4] == parts[5] == 0
        assert cut == pytest.approx(1.0)

    def test_more_starts_no_worse_on_average(self):
        g = clustered(6, 16, seed=3)
        cheap = np.mean([bisect(g, BisectionConfig(seed=s, num_starts=1)
                                )[1] for s in range(4)])
        thorough = np.mean([bisect(g, BisectionConfig(seed=s,
                                                      num_starts=6))[1]
                            for s in range(4)])
        assert thorough <= cheap + 1.0

    def test_unbalanced_target(self):
        g = ring(40)
        parts, _ = bisect(g, BisectionConfig(target=0.25, tolerance=0.05,
                                             seed=0))
        frac = (parts == 0).sum() / 40
        assert 0.15 <= frac <= 0.35
