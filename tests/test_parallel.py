"""The parallel execution backend and its determinism contract.

Pins the three load-bearing guarantees of :mod:`repro.parallel`:

- worker-count resolution (explicit request > ``REPRO_WORKERS`` env >
  serial default) and backend selection;
- path-keyed seed derivation: random-access equivalence with the
  standard ``SeedSequence.spawn`` protocol, stream distinctness, and
  independence from execution order;
- bit-identical results: the full placement pipeline produces
  byte-identical ``.pl`` output for ``num_workers`` in {1, 2, 4}, and
  merged telemetry counters match the serial run's.

Plus the telemetry-merge primitives the dispatch loop leans on
(``SpanStats.from_dict``/``merge``, ``Recorder.merge``) and the
region path-id propagation in the global placer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.globalplace import GlobalPlacer, Region
from repro.core.placer import Placer3D
from repro.netlist.bookshelf import write_pl
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.placement import Placement
from repro.obs import Recorder, Telemetry, use_recorder
from repro.obs.manifest import config_hash
from repro.obs.trace import SpanStats
from repro.parallel import (ProcessPoolBackend, SerialBackend,
                            WORKERS_ENV, create_backend, resolve_workers,
                            task_seed, task_seed_sequence)
from repro.partition.subproblem import BisectionTask, solve, solve_recorded
from tests.conftest import make_chip


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_fills_auto(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(0) == 5
        assert resolve_workers(None) == 5

    def test_env_zero_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == 1

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestBackends:
    def test_create_backend_selects_by_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        serial = create_backend(1)
        assert isinstance(serial, SerialBackend)
        auto = create_backend(0)
        assert isinstance(auto, SerialBackend)
        pool = create_backend(2)
        try:
            assert isinstance(pool, ProcessPoolBackend)
            assert pool.num_workers == 2
        finally:
            pool.close()

    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(1)

    def test_serial_map_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(_square, [3, 1, 2]) == [9, 1, 4]
        assert backend.map(_square, []) == []

    def test_pool_map_preserves_order(self):
        with create_backend(2) as backend:
            assert backend.map(_square, list(range(20))) == \
                [i * i for i in range(20)]
            assert backend.map(_square, []) == []

    def test_config_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            PlacementConfig(num_workers=-1)


class TestSeedDerivation:
    def test_matches_spawn_protocol(self):
        parent = np.random.SeedSequence(42)
        children = parent.spawn(8)
        for key in range(8):
            derived = task_seed_sequence(42, key)
            assert np.array_equal(derived.generate_state(4),
                                  children[key].generate_state(4))

    def test_random_access_is_order_independent(self):
        forward = [task_seed(7, k) for k in range(6)]
        backward = [task_seed(7, k) for k in reversed(range(6))]
        assert forward == list(reversed(backward))

    def test_streams_distinct_across_keys_and_seeds(self):
        seeds = {task_seed(0, k) for k in range(64)}
        assert len(seeds) == 64
        assert task_seed(0, 1) != task_seed(1, 1)

    def test_seed_fits_31_bits(self):
        for key in range(32):
            assert 0 <= task_seed(123, key) < 2 ** 31

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            task_seed_sequence(0, -1)


class TestSpanStatsMerge:
    @staticmethod
    def _tree() -> SpanStats:
        root = SpanStats("")
        a = root.child("global")
        a.calls, a.seconds = 2, 1.5
        b = a.child("bisect")
        b.calls, b.seconds = 4, 0.75
        return root

    def test_dict_round_trip(self):
        root = self._tree()
        clone = SpanStats.from_dict(root.as_dict())
        assert clone.as_dict() == root.as_dict()

    def test_merge_adds_at_matching_paths(self):
        left, right = self._tree(), self._tree()
        left.merge(right)
        assert left.child("global").calls == 4
        assert left.child("global").seconds == pytest.approx(3.0)
        assert left.child("global").child("bisect").calls == 8

    def test_merge_grafts_unique_subtrees(self):
        left = self._tree()
        right = SpanStats("")
        extra = right.child("weights")
        extra.calls, extra.seconds = 1, 0.25
        left.merge(right)
        assert left.child("weights").calls == 1
        assert list(left.children) == ["global", "weights"]

    def test_merge_order_independent_totals(self):
        a, b = self._tree(), self._tree()
        ab = self._tree()
        ab.merge(a)
        ab.merge(b)
        ba = self._tree()
        ba.merge(b)
        ba.merge(a)
        assert ab.as_dict() == ba.as_dict()


class TestRecorderMerge:
    def test_counters_add_and_series_extend(self):
        child = Recorder()
        child.count("fm/passes", 3)
        child.gauge("depth", 2.0)
        child.record("probe", value=1.0)
        parent = Recorder()
        parent.count("fm/passes", 1)
        parent.merge(child.snapshot())
        assert parent.counters["fm/passes"] == 4
        assert parent.gauges["depth"] == 2.0
        assert len(parent.series["probe"]) == 1

    def test_spans_anchor_under_open_span(self):
        child = Recorder()
        with child.span("solve"):
            pass
        parent = Recorder()
        with parent.span("level0/bisect"):
            parent.merge(child.snapshot())
        node = parent.tracer.root.child("level0").child("bisect")
        assert node.child("solve").calls == 1

    def test_merge_into_null_recorder_is_noop(self):
        from repro.obs import NULL_RECORDER
        NULL_RECORDER.merge(Telemetry(counters={"x": 1.0}))
        assert NULL_RECORDER.counters == {}


class TestBisectionTask:
    @staticmethod
    def _task(seed: int = 5) -> BisectionTask:
        nets = [[0, 1], [1, 2, 3], [2, 4]]
        return BisectionTask.from_nets(
            nets, [1.0, 2.0, 1.0], [1.0] * 5, [-1] * 5,
            target=0.5, tolerance=0.1, num_starts=2, max_passes=3,
            seed=seed, key=9)

    def test_round_trips_through_csr(self):
        task = self._task()
        graph = task.hypergraph()
        assert graph.num_vertices == 5
        assert graph.nets == [[0, 1], [1, 2, 3], [2, 4]]

    def test_handles_zero_nets(self):
        task = BisectionTask.from_nets(
            [], [], [1.0, 1.0], [-1, -1], target=0.5, tolerance=0.1,
            num_starts=1, max_passes=1, seed=0)
        assert task.num_nets == 0
        assert task.hypergraph().nets == []
        parts = solve(task)
        assert sorted(np.asarray(parts).tolist()) == [0, 1]

    def test_solve_is_pure(self):
        a = solve(self._task())
        b = solve(self._task())
        assert np.array_equal(a, b)

    def test_solve_recorded_matches_solve(self):
        parts_plain = solve(self._task())
        parts_rec, telemetry = solve_recorded(self._task())
        assert np.array_equal(parts_plain, parts_rec)
        assert isinstance(telemetry, Telemetry)
        assert telemetry.counters  # fm emits pass counters


class TestRegionPaths:
    @staticmethod
    def _placer(num_layers: int = 2) -> GlobalPlacer:
        spec = GeneratorSpec(name="paths", num_cells=40,
                             total_area=40 * 5e-12, seed=2)
        netlist = generate_netlist(spec)
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=num_layers,
                                 seed=1)
        chip = make_chip(netlist, num_layers=num_layers)
        placement = Placement.at_center(netlist, chip)
        return GlobalPlacer(placement, config)

    def test_root_defaults_to_one(self):
        region = Region([0], 0.0, 1.0, 0.0, 1.0, 0, 0)
        assert region.path == 1

    def test_children_get_heap_numbering(self):
        placer = self._placer()
        root = Region(list(range(40)), 0.0, placer.chip.width, 0.0,
                      placer.chip.height, 0, placer.chip.num_layers - 1,
                      path=3)
        children = placer._split(root)
        assert [c.path for c in children] == [6, 7]

    def test_task_seed_derives_from_path(self):
        placer = self._placer()
        width, height = placer.chip.width, placer.chip.height
        layers = placer.chip.num_layers - 1
        cells = list(range(40))
        a = placer._build_task(Region(cells, 0.0, width, 0.0, height,
                                      0, layers, path=5))
        b = placer._build_task(Region(cells, 0.0, width, 0.0, height,
                                      0, layers, path=6))
        assert a.seed == task_seed(placer.config.seed, 5)
        assert b.seed == task_seed(placer.config.seed, 6)
        assert a.seed != b.seed


def _run_pipeline(tmp_path, workers: int, tag: str):
    spec = GeneratorSpec(name="par", num_cells=120,
                         total_area=120 * 5e-12, seed=9)
    netlist = generate_netlist(spec)
    config = PlacementConfig(alpha_ilv=1e-5, num_layers=3, seed=4,
                             num_workers=workers)
    recorder = Recorder()
    result = Placer3D(netlist, config, recorder=recorder).run()
    path = tmp_path / f"{tag}.pl"
    write_pl(str(path), netlist, result.placement)
    return path.read_bytes(), result, recorder.snapshot()


class TestSerialParallelBitIdentity:
    def test_worker_counts_are_bit_identical(self, tmp_path):
        serial_pl, serial_res, serial_tele = _run_pipeline(
            tmp_path, 1, "w1")
        for workers in (2, 4):
            pl, res, tele = _run_pipeline(tmp_path, workers,
                                          f"w{workers}")
            assert pl == serial_pl, f"workers={workers} diverged"
            assert np.array_equal(res.placement.x,
                                  serial_res.placement.x)
            assert np.array_equal(res.placement.y,
                                  serial_res.placement.y)
            assert np.array_equal(res.placement.z,
                                  serial_res.placement.z)
            # telemetry totals are distribution-independent
            for key in ("global/bisections", "fm/passes"):
                assert tele.counters.get(key) == \
                    serial_tele.counters.get(key), key

    def test_num_workers_excluded_from_config_hash(self):
        one = PlacementConfig(seed=4, num_workers=1)
        four = PlacementConfig(seed=4, num_workers=4)
        assert config_hash(one) == config_hash(four)
        other_seed = PlacementConfig(seed=5, num_workers=1)
        assert config_hash(one) != config_hash(other_seed)


class TestSharedMemoryDispatch:
    """The zero-copy batch arena: pack/resolve round-trip, payload
    size, instrumentation counters, and the no-shm fallback."""

    @staticmethod
    def _task(seed: int = 5) -> BisectionTask:
        nets = [[0, 1], [1, 2, 3], [2, 4]]
        return BisectionTask.from_nets(
            nets, [1.0, 2.0, 1.0], [1.0] * 5, [-1] * 5,
            target=0.5, tolerance=0.1, num_starts=2, max_passes=3,
            seed=seed, key=9)

    def test_pack_resolve_round_trip(self):
        from repro.parallel import SharedArrayPool, resolve_packed
        from repro.partition.subproblem import (task_from_payload,
                                                task_payload)
        if not pytest.importorskip("repro.parallel.shared").available():
            pytest.skip("shared memory unavailable")
        pool = SharedArrayPool()
        try:
            tasks = [self._task(seed) for seed in (1, 2, 3)]
            batch = pool.pack([task_payload(t) for t in tasks])
            try:
                for ref, task in zip(batch.refs, tasks):
                    back = task_from_payload(resolve_packed(ref))
                    assert back.key == task.key
                    assert back.seed == task.seed
                    np.testing.assert_array_equal(back.net_ptr,
                                                  task.net_ptr)
                    np.testing.assert_array_equal(back.pin_vertices,
                                                  task.pin_vertices)
                    np.testing.assert_array_equal(back.fixed,
                                                  task.fixed)
            finally:
                batch.close()
        finally:
            pool.close()

    def test_resolved_views_are_read_only(self):
        from repro.parallel import SharedArrayPool, resolve_packed
        from repro.partition.subproblem import task_payload
        if not pytest.importorskip("repro.parallel.shared").available():
            pytest.skip("shared memory unavailable")
        pool = SharedArrayPool()
        try:
            batch = pool.pack([task_payload(self._task())])
            try:
                payload = resolve_packed(batch.refs[0])
                with pytest.raises(ValueError):
                    payload["net_ptr"][0] = 99
            finally:
                batch.close()
        finally:
            pool.close()

    def test_refs_are_tiny_vs_pickled_tasks(self):
        import pickle

        from repro.parallel import SharedArrayPool
        from repro.partition.subproblem import task_payload
        if not pytest.importorskip("repro.parallel.shared").available():
            pytest.skip("shared memory unavailable")
        pool = SharedArrayPool()
        try:
            tasks = [self._task(seed) for seed in range(8)]
            batch = pool.pack([task_payload(t) for t in tasks])
            try:
                # A ref is ~94 B regardless of task size; the toy
                # tasks here are small, so gate on the absolute
                # descriptor size (the 10x ratio on realistic tasks
                # is gated by the dispatch-counter test and bench).
                for ref in batch.refs:
                    assert len(pickle.dumps(ref)) < 150
                dense_bytes = sum(len(pickle.dumps(t)) for t in tasks)
                assert sum(len(pickle.dumps(r))
                           for r in batch.refs) < dense_bytes
            finally:
                batch.close()
        finally:
            pool.close()

    def test_solve_packed_matches_solve(self):
        from repro.parallel import SharedArrayPool
        from repro.partition.subproblem import (solve_packed_recorded,
                                                task_payload)
        if not pytest.importorskip("repro.parallel.shared").available():
            pytest.skip("shared memory unavailable")
        task = self._task()
        expected = solve(self._task())
        pool = SharedArrayPool()
        try:
            batch = pool.pack([task_payload(task)])
            try:
                parts, _telemetry = solve_packed_recorded(batch.refs[0])
            finally:
                batch.close()
        finally:
            pool.close()
        np.testing.assert_array_equal(parts, expected)

    def test_dispatch_counters_recorded(self, tmp_path):
        spec = GeneratorSpec(name="shm", num_cells=96,
                             total_area=96 * 4e-12, seed=11)
        netlist = generate_netlist(spec)
        config = PlacementConfig(num_workers=2, num_layers=2)
        recorder = Recorder()
        Placer3D(netlist, config, recorder=recorder).run()
        counters = recorder.counters
        assert counters.get("parallel/tasks", 0) > 0
        assert counters.get("parallel/dispatch_bytes", 0) > 0
        assert counters.get("parallel/dense_task_bytes", 0) > 0
        from repro.parallel import shared_memory_available
        if shared_memory_available():
            assert counters["parallel/dispatch_bytes"] * 10 \
                <= counters["parallel/dense_task_bytes"]

    def test_serial_run_records_no_dispatch(self):
        spec = GeneratorSpec(name="shm-serial", num_cells=96,
                             total_area=96 * 4e-12, seed=11)
        netlist = generate_netlist(spec)
        config = PlacementConfig(num_workers=1, num_layers=2)
        recorder = Recorder()
        Placer3D(netlist, config, recorder=recorder).run()
        assert "parallel/dispatch_bytes" not in recorder.counters
