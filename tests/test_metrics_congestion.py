"""Tests for the congestion estimator."""

import numpy as np
import pytest

from repro.metrics.congestion import CongestionMap, estimate_congestion
from repro.netlist.net import PinRole
from repro.netlist.placement import Placement
from tests.conftest import make_chip


class TestEstimate:
    def test_demand_conserved_per_net(self, small_netlist):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=2)
        cmap = estimate_congestion(pl, nx=8)
        multi_pin = sum(1 for n in small_netlist.signal_nets()
                        if len(n.unique_cell_ids) >= 2)
        assert cmap.horizontal.sum() == pytest.approx(multi_pin)
        assert cmap.vertical.sum() == pytest.approx(multi_pin)

    def test_via_demand_matches_total_ilv(self, small_netlist):
        from repro.metrics.wirelength import total_ilv
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=2)
        cmap = estimate_congestion(pl, nx=8)
        assert cmap.via.sum() == pytest.approx(total_ilv(pl))

    def test_point_net_deposits_one_bin(self, tiny_netlist, chip4):
        pl = Placement.at_center(tiny_netlist, chip4)
        cmap = estimate_congestion(pl, nx=4)
        assert (cmap.total > 0).sum() == 1

    def test_clustered_worse_than_spread(self, small_netlist):
        chip = make_chip(small_netlist)
        spread = Placement.random(small_netlist, chip, seed=2)
        clustered = spread.copy()
        clustered.x[:] = 0.1 * clustered.x
        clustered.y[:] = 0.1 * clustered.y
        a = estimate_congestion(spread, nx=8)
        b = estimate_congestion(clustered, nx=8)
        assert b.peak_to_average > a.peak_to_average

    def test_trr_nets_ignored(self, small_netlist):
        from repro.core.trrnets import add_trr_nets
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=2)
        before = estimate_congestion(pl, nx=8).total.sum()
        add_trr_nets(small_netlist)
        after = estimate_congestion(pl, nx=8).total.sum()
        assert after == pytest.approx(before)

    def test_empty_peak_to_average(self):
        cmap = CongestionMap(horizontal=np.zeros((2, 2)),
                             vertical=np.zeros((2, 2)),
                             via=np.zeros((2, 2)), nx=2, ny=2)
        assert cmap.peak_to_average == 1.0
