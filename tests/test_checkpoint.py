"""Checkpoint/resume: bit-identical continuation from any boundary.

The acceptance contract: interrupt a run after *any* stage boundary of
the default pipeline, resume from the checkpoint directory, and the
final ``.pl`` coordinates are bit-identical to the uninterrupted run —
for every boundary, including mid-round, round-end bookkeeping and the
best-snapshot restore.  Also covers the checkpoint file format, schema
validation, torn-write detection and resume-against-wrong-run refusal.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.checkpoint import (CheckpointError, checkpoint_paths,
                                   has_checkpoint, load_checkpoint,
                                   save_checkpoint, verify_matches)
from repro.core.config import PlacementConfig
from repro.core.context import PlacementContext
from repro.core.pipeline import PipelineHalted, default_pipeline_spec
from repro.core.placer import Placer3D
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.obs.manifest import validate_checkpoint_meta


def _netlist(num_cells: int = 50, seed: int = 17):
    return generate_netlist(GeneratorSpec(
        name="ckpt", num_cells=num_cells,
        total_area=num_cells * 5e-12, seed=seed))


def _config(**overrides) -> PlacementConfig:
    base = dict(alpha_ilv=1e-5, num_layers=2, seed=5,
                legalization_rounds=2, refine_passes=1)
    base.update(overrides)
    return PlacementConfig(**base)


def _final_arrays(result):
    pl = result.placement
    return pl.x.copy(), pl.y.copy(), pl.z.copy()


class TestResumeBitIdentical:
    def test_every_default_boundary_resumes_bit_identically(self,
                                                            tmp_path):
        """Interrupt after EACH unit of the default spec and resume."""
        config = _config()
        reference = Placer3D(_netlist(), config).run()
        ref_x, ref_y, ref_z = _final_arrays(reference)
        units = default_pipeline_spec(config).units()
        assert len(units) == 12  # global + 2*(4 stages + end) + end
        for unit in units:
            ckpt_dir = tmp_path / unit.replace("/", "_").replace(":", "-")
            with pytest.raises(PipelineHalted):
                Placer3D(_netlist(), config).run(
                    checkpoint_dir=ckpt_dir, halt_after=unit)
            assert has_checkpoint(ckpt_dir)
            resumed = Placer3D(_netlist(), config).run(
                checkpoint_dir=ckpt_dir, resume=True)
            assert np.array_equal(resumed.placement.x, ref_x), unit
            assert np.array_equal(resumed.placement.y, ref_y), unit
            assert np.array_equal(resumed.placement.z, ref_z), unit
            assert resumed.objective == reference.objective, unit

    def test_thermal_run_resumes_bit_identically(self, tmp_path):
        config = _config(alpha_temp=1e-5, legalization_rounds=1,
                         refine_passes=0)
        reference = Placer3D(_netlist(40), config).run()
        ref_x, ref_y, ref_z = _final_arrays(reference)
        ckpt_dir = tmp_path / "thermal"
        with pytest.raises(PipelineHalted):
            Placer3D(_netlist(40), config).run(
                checkpoint_dir=ckpt_dir, halt_after="round1/cellshift")
        resumed = Placer3D(_netlist(40), config).run(
            checkpoint_dir=ckpt_dir, resume=True)
        assert np.array_equal(resumed.placement.x, ref_x)
        assert np.array_equal(resumed.placement.y, ref_y)
        assert np.array_equal(resumed.placement.z, ref_z)

    def test_resume_after_final_unit_returns_reference_result(self,
                                                              tmp_path):
        config = _config(legalization_rounds=1)
        reference = Placer3D(_netlist(40), config).run()
        ckpt_dir = tmp_path / "done"
        last = default_pipeline_spec(config).units()[-1]
        with pytest.raises(PipelineHalted):
            Placer3D(_netlist(40), config).run(
                checkpoint_dir=ckpt_dir, halt_after=last)
        resumed = Placer3D(_netlist(40), config).run(
            checkpoint_dir=ckpt_dir, resume=True)
        assert np.array_equal(resumed.placement.x,
                              reference.placement.x)
        assert resumed.objective == reference.objective


class TestCheckpointFormat:
    def _halted_checkpoint(self, tmp_path):
        config = _config(legalization_rounds=1, refine_passes=0)
        ckpt_dir = tmp_path / "fmt"
        with pytest.raises(PipelineHalted):
            Placer3D(_netlist(40), config).run(
                checkpoint_dir=ckpt_dir, halt_after="round1/moves")
        return ckpt_dir, config

    def test_metadata_passes_schema_validation(self, tmp_path):
        ckpt_dir, _ = self._halted_checkpoint(tmp_path)
        meta_path, _ = checkpoint_paths(ckpt_dir)
        meta = json.loads(meta_path.read_text())
        assert validate_checkpoint_meta(meta) == []
        assert meta["kind"] == "repro.placement.checkpoint"
        assert meta["completed"] == ["0:global", "1:round1/moves"]
        assert meta["objective_built"] is True

    def test_created_unix_comes_from_obs_wall_time(self, tmp_path,
                                                   monkeypatch):
        # pins the RPL013 fix: checkpoint timestamps route through the
        # observability layer's single wall-clock touchpoint
        import repro.core.checkpoint as ckpt_mod
        monkeypatch.setattr(ckpt_mod, "wall_time",
                            lambda: 1181260800.0)
        ckpt_dir, _ = self._halted_checkpoint(tmp_path)
        meta_path, _ = checkpoint_paths(ckpt_dir)
        meta = json.loads(meta_path.read_text())
        assert meta["created_unix"] == 1181260800.0

    def test_loaded_checkpoint_matches_run(self, tmp_path):
        ckpt_dir, config = self._halted_checkpoint(tmp_path)
        data = load_checkpoint(ckpt_dir)
        ctx = PlacementContext.create(_netlist(40), config)
        spec_dict = default_pipeline_spec(config).to_dict()
        verify_matches(data, ctx, spec_dict)  # must not raise
        assert data.power is not None
        assert data.x.shape == ctx.placement.x.shape

    def test_missing_arrays_detected_as_torn_write(self, tmp_path):
        ckpt_dir, _ = self._halted_checkpoint(tmp_path)
        _, npz_path = checkpoint_paths(ckpt_dir)
        npz_path.unlink()
        assert not has_checkpoint(ckpt_dir)
        with pytest.raises(CheckpointError, match="torn write"):
            load_checkpoint(ckpt_dir)

    def test_corrupt_metadata_rejected(self, tmp_path):
        ckpt_dir, _ = self._halted_checkpoint(tmp_path)
        meta_path, _ = checkpoint_paths(ckpt_dir)
        meta = json.loads(meta_path.read_text())
        del meta["rng_state"]
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="schema validation"):
            load_checkpoint(ckpt_dir)

    def test_missing_checkpoint_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nothing")


class TestResumeRefusals:
    def _checkpoint(self, tmp_path, config):
        ckpt_dir = tmp_path / "refuse"
        with pytest.raises(PipelineHalted):
            Placer3D(_netlist(40), config).run(
                checkpoint_dir=ckpt_dir, halt_after="0:global")
        return ckpt_dir

    def test_different_config_refused(self, tmp_path):
        config = _config(legalization_rounds=1)
        ckpt_dir = self._checkpoint(tmp_path, config)
        other = _config(legalization_rounds=1, seed=99)
        with pytest.raises(CheckpointError, match="config hash"):
            Placer3D(_netlist(40), other).run(
                checkpoint_dir=ckpt_dir, resume=True)

    def test_different_spec_refused(self, tmp_path):
        config = _config(legalization_rounds=1)
        ckpt_dir = self._checkpoint(tmp_path, config)
        from repro.core.pipeline import (PipelineSpec, RepeatEntry,
                                         StageEntry)
        other_spec = PipelineSpec(entries=(
            StageEntry("global"),
            RepeatEntry(stages=(StageEntry("detailed"),)),
        ))
        with pytest.raises(CheckpointError, match="spec hash"):
            Placer3D(_netlist(40), config, spec=other_spec).run(
                checkpoint_dir=ckpt_dir, resume=True)

    def test_different_netlist_refused(self, tmp_path):
        config = _config(legalization_rounds=1)
        ckpt_dir = self._checkpoint(tmp_path, config)
        with pytest.raises(CheckpointError, match="netlist"):
            Placer3D(_netlist(60), config).run(
                checkpoint_dir=ckpt_dir, resume=True)

    def test_resume_without_directory_refused(self):
        config = _config(legalization_rounds=1)
        with pytest.raises(CheckpointError,
                           match="without a checkpoint directory"):
            Placer3D(_netlist(40), config).run(resume=True)


class TestSaveCheckpointValidation:
    def test_save_before_objective_build_round_trips(self, tmp_path):
        config = _config(legalization_rounds=1)
        ctx = PlacementContext.create(_netlist(40), config)
        spec_dict = default_pipeline_spec(config).to_dict()
        save_checkpoint(tmp_path, ctx, spec_dict, completed=[])
        data = load_checkpoint(tmp_path)
        assert data.meta["objective_built"] is False
        assert data.power is None
        assert data.best is None
        verify_matches(data, ctx, spec_dict)

    def test_best_snapshot_round_trips(self, tmp_path):
        config = _config(legalization_rounds=1)
        ctx = PlacementContext.create(_netlist(40), config)
        spec_dict = default_pipeline_spec(config).to_dict()
        best = (1.25, ctx.placement.x.copy(), ctx.placement.y.copy(),
                ctx.placement.z.copy())
        save_checkpoint(tmp_path, ctx, spec_dict, completed=["0:global"],
                        best=best)
        data = load_checkpoint(tmp_path)
        assert data.best is not None
        assert data.best[0] == 1.25
        assert np.array_equal(data.best[1], ctx.placement.x)
