"""Edge cases and failure injection across the library."""

import numpy as np
import pytest

from repro import Placer3D, PlacementConfig, evaluate_placement
from repro.core.detailed import DetailedLegalizer, check_legal
from repro.core.objective import ObjectiveState
from repro.geometry.chip import ChipGeometry
from repro.netlist import bookshelf
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.partition import BisectionConfig, Hypergraph, bisect
from tests.conftest import make_chip


class TestTinyDesigns:
    def test_two_cell_netlist_places(self):
        nl = Netlist("pair")
        nl.add_cell("a", 2e-6, 1e-6)
        nl.add_cell("b", 2e-6, 1e-6)
        nl.add_net("n", [(0, PinRole.DRIVER), (1, PinRole.SINK)])
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        result = Placer3D(nl, config).run(check=True)
        assert result.wirelength >= 0

    def test_netlist_without_nets(self):
        nl = Netlist("disconnected")
        for i in range(16):
            nl.add_cell(f"c{i}", 2e-6, 1e-6)
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        result = Placer3D(nl, config).run(check=True)
        assert result.wirelength == 0.0
        assert result.ilv == 0

    def test_single_huge_net(self):
        nl = Netlist("bus")
        for i in range(24):
            nl.add_cell(f"c{i}", 2e-6, 1e-6)
        pins = [(0, PinRole.DRIVER)] + [(i, PinRole.SINK)
                                        for i in range(1, 24)]
        nl.add_net("bus", pins)
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        result = Placer3D(nl, config).run(check=True)
        assert result.wirelength > 0

    def test_cells_with_identical_everything(self):
        """Fully symmetric input must still legalize (tie-breaks)."""
        nl = Netlist("sym")
        for i in range(32):
            nl.add_cell(f"c{i}", 2e-6, 1e-6)
        for i in range(0, 32, 2):
            nl.add_net(f"n{i}", [(i, PinRole.DRIVER),
                                 (i + 1, PinRole.SINK)], activity=0.2)
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=4, seed=0)
        Placer3D(nl, config).run(check=True)


class TestOverfullDesign:
    def test_design_that_cannot_fit_raises(self):
        nl = Netlist("fat")
        for i in range(10):
            nl.add_cell(f"c{i}", 10e-6, 1e-6)
        nl.add_net("n", [(0, PinRole.DRIVER), (1, PinRole.SINK)])
        # chip with half the required capacity
        chip = ChipGeometry(width=25e-6, height=1.25e-6, num_layers=2,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=0)
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        obj = ObjectiveState(pl, config)
        with pytest.raises(RuntimeError, match="does not fit"):
            DetailedLegalizer(obj, config).run()

    def test_exactly_full_design_fits(self):
        nl = Netlist("tight")
        for i in range(10):
            nl.add_cell(f"c{i}", 10e-6, 1e-6)
        chip = ChipGeometry(width=50e-6, height=2.5e-6, num_layers=2,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=0)
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        obj = ObjectiveState(pl, config)
        DetailedLegalizer(obj, config).run()
        check_legal(pl)


class TestMalformedBookshelf:
    def test_node_without_dimensions(self, tmp_path):
        bad = tmp_path / "x.nodes"
        bad.write_text("UCLA nodes 1.0\n  a\n")
        nl = Netlist("x")
        with pytest.raises(ValueError):
            bookshelf.read_nodes(str(bad), nl)

    def test_net_with_unknown_cell(self, tmp_path):
        (tmp_path / "x.nodes").write_text(
            "UCLA nodes 1.0\n  a 1 1\n")
        (tmp_path / "x.nets").write_text(
            "UCLA nets 1.0\nNetDegree : 2 n\n  a O\n  ghost I\n")
        nl = Netlist("x")
        bookshelf.read_nodes(str(tmp_path / "x.nodes"), nl)
        with pytest.raises(KeyError):
            bookshelf.read_nets(str(tmp_path / "x.nets"), nl)

    def test_missing_netdegree_header(self, tmp_path):
        (tmp_path / "x.nodes").write_text("UCLA nodes 1.0\n  a 1 1\n")
        (tmp_path / "x.nets").write_text("UCLA nets 1.0\n  a O\n")
        nl = Netlist("x")
        bookshelf.read_nodes(str(tmp_path / "x.nodes"), nl)
        with pytest.raises(ValueError):
            bookshelf.read_nets(str(tmp_path / "x.nets"), nl)


class TestPartitionEdges:
    def test_no_nets(self):
        g = Hypergraph(8, [])
        parts, cut = bisect(g, BisectionConfig(seed=0))
        assert cut == 0.0
        assert 0 < parts.sum() < 8  # still balanced

    def test_two_vertices(self):
        g = Hypergraph(2, [[0, 1]])
        parts, cut = bisect(g, BisectionConfig(seed=0))
        assert parts[0] != parts[1]
        assert cut == 1.0

    def test_all_vertices_in_one_net(self):
        g = Hypergraph(10, [list(range(10))])
        parts, cut = bisect(g, BisectionConfig(seed=0))
        assert cut == 1.0  # unavoidable

    def test_zero_weight_vertices(self):
        g = Hypergraph(6, [[0, 1], [2, 3], [4, 5]],
                       vertex_weights=[0, 0, 1, 1, 1, 1])
        parts, cut = bisect(g, BisectionConfig(seed=0))
        assert set(np.unique(parts)) <= {0, 1}


class TestGeneratorExtremes:
    def test_minimum_size(self):
        nl = generate_netlist(GeneratorSpec("t", 2, 2 * 5e-12, seed=0))
        assert nl.num_cells == 2
        nl.validate()

    def test_full_global_wiring(self):
        nl = generate_netlist(GeneratorSpec(
            "g", 50, 50 * 5e-12, global_fraction=1.0, seed=0))
        nl.validate()

    def test_degree_capped_at_cell_count(self):
        spec = GeneratorSpec("c", 5, 5 * 5e-12, seed=0,
                             degree_weights={20: 1.0})
        nl = generate_netlist(spec)
        for net in nl.nets:
            assert net.degree <= 5


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(alpha_ilv=0.0),
        dict(alpha_ilv=-1e-5),
        dict(alpha_temp=-1.0),
        dict(num_layers=0),
        dict(min_region_cells=0),
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlacementConfig(**kwargs)

    def test_thermal_enabled_logic(self):
        assert not PlacementConfig(alpha_temp=0.0).thermal_enabled
        assert PlacementConfig(alpha_temp=1e-5).thermal_enabled
        assert not PlacementConfig(
            alpha_temp=1e-5, use_trr_nets=False,
            use_thermal_net_weights=False).thermal_enabled


class TestLeakagePower:
    def test_leakage_flows_into_thermal_term(self, small_netlist):
        import dataclasses
        from repro.technology import TechnologyConfig
        tech = TechnologyConfig(leakage_power_density=1e4)  # 1 W/cm^2
        config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=4e-5,
                                 num_layers=4, seed=0, tech=tech)
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=0)
        obj = ObjectiveState(pl, config)
        leakage = tech.leakage_power_density * small_netlist.areas
        for cid in range(small_netlist.num_cells):
            assert obj.cell_power(cid) >= leakage[cid] - 1e-18

    def test_leakage_raises_temperature(self, small_placement):
        from repro.technology import TechnologyConfig
        from repro.thermal.analysis import analyze_placement
        base = analyze_placement(small_placement)
        hot_tech = TechnologyConfig(leakage_power_density=1e4)
        hot = analyze_placement(small_placement, hot_tech)
        assert hot.total_power > base.total_power
        assert hot.average_temperature > base.average_temperature
