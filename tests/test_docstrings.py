"""Documentation contract: every public item carries a docstring.

"Public" = importable module under ``repro`` plus every class, function
and method not prefixed with an underscore defined in those modules.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MEMBER_NAMES = {"__init__"}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(obj):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield f"{module.__name__}.{name}", obj
            if inspect.isclass(obj):
                for m_name, member in vars(obj).items():
                    if m_name.startswith("_"):
                        continue
                    if inspect.isfunction(member) or isinstance(
                            member, property):
                        yield (f"{module.__name__}.{name}.{m_name}",
                               member)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_item_has_docstring():
    missing = []
    for module in _iter_modules():
        for qualname, obj in _public_members(module):
            target = obj.fget if isinstance(obj, property) else obj
            if not inspect.getdoc(target):
                missing.append(qualname)
    assert not missing, \
        f"{len(missing)} public items without docstrings: {missing[:20]}"
