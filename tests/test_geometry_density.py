"""Unit tests for repro.geometry.density."""

import numpy as np
import pytest

from repro.geometry.chip import ChipGeometry
from repro.geometry.density import DensityMesh


@pytest.fixture
def chip():
    return ChipGeometry(width=80e-6, height=40e-6, num_layers=2,
                        row_height=2e-6, row_pitch=2.5e-6)


@pytest.fixture
def mesh(chip):
    return DensityMesh(chip, nx=8, ny=4)


class TestGeometry:
    def test_bin_dimensions(self, mesh):
        assert mesh.bin_width == pytest.approx(10e-6)
        assert mesh.bin_height == pytest.approx(10e-6)
        assert mesh.bin_capacity == pytest.approx(1e-10)

    def test_bin_of_interior(self, mesh):
        assert mesh.bin_of(15e-6, 5e-6, 1) == (1, 0, 1)

    def test_bin_of_clamps_out_of_range(self, mesh):
        assert mesh.bin_of(-1e-6, 100e-6, 5) == (0, 3, 1)

    def test_bin_bounds_roundtrip(self, mesh):
        xlo, xhi, ylo, yhi = mesh.bin_bounds((2, 1, 0))
        assert xlo == pytest.approx(20e-6)
        assert xhi == pytest.approx(30e-6)
        assert ylo == pytest.approx(10e-6)
        assert yhi == pytest.approx(20e-6)

    def test_bin_center_maps_back(self, mesh):
        for index in [(0, 0, 0), (7, 3, 1), (4, 2, 0)]:
            x, y, z = mesh.bin_center(index)
            assert mesh.bin_of(x, y, z) == index

    def test_invalid_index_raises(self, mesh):
        with pytest.raises(IndexError):
            mesh.bin_bounds((8, 0, 0))

    def test_invalid_mesh_size(self, chip):
        with pytest.raises(ValueError):
            DensityMesh(chip, nx=0, ny=1)


class TestNeighbors:
    def test_interior_bin_has_six_neighbors(self, mesh):
        assert len(mesh.neighbors((4, 2, 0))) == 5  # only 2 layers: 1 up
        assert len(mesh.neighbors((4, 2, 1))) == 5

    def test_corner_bin(self, mesh):
        n = mesh.neighbors((0, 0, 0))
        assert set(n) == {(1, 0, 0), (0, 1, 0), (0, 0, 1)}

    def test_no_vertical(self, mesh):
        n = mesh.neighbors((4, 2, 0), include_vertical=False)
        assert all(k == 0 for _, _, k in n)

    def test_bins_within_radius_zero(self, mesh):
        assert mesh.bins_within((3, 2, 1), 0) == [(3, 2, 1)]

    def test_bins_within_radius_one_interior(self, mesh):
        bins = mesh.bins_within((3, 2, 0), 1)
        assert len(bins) == 3 * 3 * 2  # z clipped to 2 layers
        assert (3, 2, 0) in bins

    def test_bins_within_clips_at_edges(self, mesh):
        bins = mesh.bins_within((0, 0, 0), 1)
        assert len(bins) == 2 * 2 * 2


class TestOccupancy:
    def test_add_and_density(self, mesh):
        mesh.add_cell(0, 5e-6, 5e-6, 0, 5e-11)
        assert mesh.density_of((0, 0, 0)) == pytest.approx(0.5)
        assert mesh.max_density == pytest.approx(0.5)

    def test_remove_cell(self, mesh):
        idx = mesh.add_cell(1, 5e-6, 5e-6, 0, 5e-11)
        mesh.remove_cell(1, idx, 5e-11)
        assert mesh.density_of(idx) == pytest.approx(0.0)
        assert mesh.members(idx) == []

    def test_remove_missing_cell_raises(self, mesh):
        with pytest.raises(KeyError):
            mesh.remove_cell(42, (0, 0, 0), 1e-12)

    def test_members_tracks_ids(self, mesh):
        mesh.add_cell(3, 5e-6, 5e-6, 0, 1e-12)
        mesh.add_cell(9, 6e-6, 6e-6, 0, 1e-12)
        assert sorted(mesh.members((0, 0, 0))) == [3, 9]

    def test_build_resets(self, mesh):
        mesh.add_cell(0, 5e-6, 5e-6, 0, 1e-12)
        mesh.build([(1, 15e-6, 5e-6, 1, 2e-12)])
        assert mesh.members((0, 0, 0)) == []
        assert mesh.members((1, 0, 1)) == [1]
        assert mesh.area_in((1, 0, 1)) == pytest.approx(2e-12)

    def test_overflow(self, mesh):
        mesh.add_cell(0, 5e-6, 5e-6, 0, 1.5e-10)  # density 1.5
        assert mesh.overflow(1.0) == pytest.approx(5e-11)
        assert mesh.overflow(2.0) == 0.0

    def test_densities_shape(self, mesh):
        assert mesh.densities.shape == (8, 4, 2)


class TestRowDensities:
    def test_row_x(self, mesh):
        mesh.add_cell(0, 25e-6, 15e-6, 1, 1e-10)
        row = mesh.row_densities("x", 1, 1)
        assert row.shape == (8,)
        assert row[2] == pytest.approx(1.0)
        assert row.sum() == pytest.approx(1.0)

    def test_row_y(self, mesh):
        mesh.add_cell(0, 25e-6, 15e-6, 0, 1e-10)
        row = mesh.row_densities("y", 2, 0)
        assert row.shape == (4,)
        assert row[1] == pytest.approx(1.0)

    def test_row_z(self, mesh):
        mesh.add_cell(0, 25e-6, 15e-6, 1, 1e-10)
        row = mesh.row_densities("z", 2, 1)
        assert row.shape == (2,)
        assert row[1] == pytest.approx(1.0)

    def test_unknown_axis(self, mesh):
        with pytest.raises(ValueError):
            mesh.row_densities("w", 0, 0)


class TestFactories:
    def test_coarse_mesh_bin_size(self, chip):
        mesh = DensityMesh.coarse_for(chip, avg_cell_width=5e-6,
                                      avg_cell_height=2e-6)
        assert mesh.bin_width == pytest.approx(10e-6)
        assert mesh.bin_height == pytest.approx(4e-6)

    def test_fine_mesh_smaller_bins(self, chip):
        coarse = DensityMesh.coarse_for(chip, 5e-6, 2e-6)
        fine = DensityMesh.fine_for(chip, 5e-6, 2e-6)
        assert fine.nx >= coarse.nx
        assert fine.ny >= coarse.ny
