"""Internal-mechanism tests for global placement: subgraph building,
balance targets, tolerance derivation and weight refresh."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.globalplace import GlobalPlacer, Region
from repro.core.trrnets import add_trr_nets
from repro.netlist.placement import Placement
from tests.conftest import make_chip


@pytest.fixture
def placer(small_netlist, thermal_config):
    add_trr_nets(small_netlist)
    chip = make_chip(small_netlist,
                     num_layers=thermal_config.num_layers)
    pl = Placement.at_center(small_netlist, chip)
    return GlobalPlacer(pl, thermal_config)


class TestWeightRefresh:
    def test_weights_populated_when_thermal(self, placer):
        placer._refresh_weights()
        assert placer._lateral_w.max() > 1.0
        assert placer._trr_w.max() > 0.0

    def test_weights_stay_ones_when_cold(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.at_center(small_netlist, chip)
        cold = GlobalPlacer(pl, config)
        cold._refresh_weights()
        assert np.all(cold._lateral_w == 1.0)
        assert np.all(cold._trr_w == 0.0)


class TestSplitMechanics:
    def test_split_partitions_all_cells(self, placer):
        movable = [c.id for c in placer.netlist.cells if c.movable]
        chip = placer.chip
        region = Region(movable, 0.0, chip.width, 0.0, chip.height,
                        0, chip.num_layers - 1)
        children = placer._split(region)
        assert len(children) == 2
        union = sorted(children[0].cell_ids + children[1].cell_ids)
        assert union == sorted(movable)

    def test_lateral_children_tile_region(self, placer):
        movable = [c.id for c in placer.netlist.cells if c.movable]
        chip = placer.chip
        # force a lateral cut: single layer
        region = Region(movable, 0.0, chip.width, 0.0, chip.height,
                        0, 0)
        a, b = placer._split(region)
        assert a.xhi == pytest.approx(b.xlo) or \
            a.yhi == pytest.approx(b.ylo)
        assert a.zlo == a.zhi == 0

    def test_z_children_split_layers(self, placer):
        movable = [c.id for c in placer.netlist.cells if c.movable]
        chip = placer.chip
        # force a z cut with a deep, narrow region
        region = Region(movable, 0.0, 1e-9, 0.0, 1e-9,
                        0, chip.num_layers - 1)
        assert placer._choose_axis(region) == "z"
        a, b = placer._split(region)
        assert a.zhi + 1 == b.zlo
        assert a.zlo == 0 and b.zhi == chip.num_layers - 1

    def test_area_balanced_cutline(self, placer):
        """The cut line must land near the area split, not the middle,
        when the partition is uneven."""
        movable = [c.id for c in placer.netlist.cells if c.movable]
        chip = placer.chip
        region = Region(movable, 0.0, chip.width, 0.0, chip.height,
                        0, 0)
        a, b = placer._split(region)
        areas = placer.netlist.areas
        area_a = float(sum(areas[c] for c in a.cell_ids))
        area_b = float(sum(areas[c] for c in b.cell_ids))
        if a.xhi == pytest.approx(b.xlo):
            frac_geo = a.width / region.width
        else:
            frac_geo = a.height / region.height
        frac_area = area_a / (area_a + area_b)
        assert frac_geo == pytest.approx(frac_area, abs=1e-6)


class TestFinalize:
    def test_single_layer_terminal(self, placer):
        region = Region([0, 1], 0.0, 1e-5, 0.0, 1e-5, 2, 2)
        placer._finalize(region)
        pl = placer.placement
        assert pl.z[0] == 2 and pl.z[1] == 2
        assert pl.x[0] == pytest.approx(0.5e-5)

    def test_multi_layer_terminal_balances_area(self, placer):
        ids = list(range(8))
        region = Region(ids, 0.0, 1e-5, 0.0, 1e-5, 0, 3)
        placer._finalize(region)
        pl = placer.placement
        areas = placer.netlist.areas
        per_layer = np.zeros(4)
        for c in ids:
            per_layer[int(pl.z[c])] += areas[c]
        # greedy largest-first balancing: spread within one max cell
        assert per_layer.max() - per_layer.min() <= \
            float(areas[ids].max()) + 1e-18
        assert (per_layer > 0).sum() >= 3  # actually uses the layers
