"""Property-style tests for the vectorized placement kernels.

Three families of invariants guard the array-backed fast paths:

- **Incremental == recompute**: random eval/apply sequences must leave
  the objective's caches within 1e-9 of a from-scratch ``rebuild()``,
  with and without TRR nets and the thermal term.
- **Batch == scalar**: the batched evaluators
  (:meth:`ObjectiveState.eval_moves_batch`,
  :meth:`ObjectiveState.eval_swaps_batch`,
  :meth:`ObjectiveState.optimal_region_centers`) must agree with their
  scalar counterparts candidate for candidate.
- **Cached factorization == fresh solve**: repeated
  :meth:`ThermalSolver.solve_powers` calls reuse a sparse LU; the
  temperatures must match a fresh ``spsolve`` of the same system.

A final end-to-end test drives the real legalization pipeline and
checks cache consistency after every stage.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_chip
from repro.core.cellshift import CellShifter
from repro.core.config import PlacementConfig
from repro.core.detailed import DetailedLegalizer, check_legal
from repro.core.globalplace import GlobalPlacer
from repro.core.moves import MoveOptimizer
from repro.core.objective import ObjectiveState
from repro.core.refine import LegalRefiner
from repro.core.trrnets import add_trr_nets
from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from repro.thermal.solver import ThermalSolver


def _objective(netlist, config, trr: bool, seed: int = 5):
    """A fresh ObjectiveState on a random placement."""
    if trr:
        add_trr_nets(netlist)
    chip = make_chip(netlist, config.num_layers)
    placement = Placement.random(netlist, chip, seed=seed)
    power = PowerModel(netlist, config.tech) if config.alpha_temp > 0 \
        else None
    return ObjectiveState(placement, config, power)


def _random_moves(objective, rng, count: int):
    """Random single-cell relocations within the chip volume."""
    placement = objective.placement
    chip = placement.chip
    movable = [c.id for c in placement.netlist.cells if c.movable]
    cells = rng.choice(movable, size=count, replace=False)
    return [(int(cid),
             float(rng.uniform(0.0, chip.width)),
             float(rng.uniform(0.0, chip.height)),
             int(rng.integers(0, chip.num_layers)))
            for cid in cells]


@pytest.mark.parametrize("alpha_temp,trr", [
    (0.0, False),
    (4e-5, False),
    (4e-5, True),
])
def test_random_apply_matches_rebuild(small_netlist, alpha_temp, trr):
    """Chained eval+apply stays within 1e-9 of a full recompute."""
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=alpha_temp,
                             num_layers=4, seed=0)
    objective = _objective(small_netlist, config, trr)
    rng = np.random.default_rng(17)
    running = objective.total
    for step in range(25):
        moves = _random_moves(objective, rng, int(rng.integers(1, 4)))
        delta = objective.eval_moves(moves)
        objective.apply_moves(moves)
        running += delta
        assert objective.total == pytest.approx(running, rel=1e-9,
                                                abs=1e-15)
    objective.check_consistency(tol=1e-9)


@pytest.mark.parametrize("alpha_temp", [0.0, 4e-5])
def test_batch_moves_match_scalar(small_netlist, alpha_temp):
    """eval_moves_batch equals per-candidate scalar eval_moves."""
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=alpha_temp,
                             num_layers=4, seed=0)
    objective = _objective(small_netlist, config, trr=False)
    rng = np.random.default_rng(23)
    moves = _random_moves(objective, rng, 40)
    batch = objective.eval_moves_batch(
        [m[0] for m in moves], [m[1] for m in moves],
        [m[2] for m in moves], [m[3] for m in moves])
    for move, delta in zip(moves, batch):
        assert delta == pytest.approx(objective.eval_moves([move]),
                                      rel=1e-9, abs=1e-15)


@pytest.mark.parametrize("alpha_temp", [0.0, 4e-5])
def test_batch_swaps_match_scalar(small_netlist, alpha_temp):
    """eval_swaps_batch equals the joint two-move scalar evaluation."""
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=alpha_temp,
                             num_layers=4, seed=0)
    objective = _objective(small_netlist, config, trr=False)
    placement = objective.placement
    rng = np.random.default_rng(29)
    movable = [c.id for c in small_netlist.cells if c.movable]
    pairs = rng.choice(movable, size=(30, 2), replace=False)
    a = [int(p) for p in pairs[:, 0]]
    b = [int(p) for p in pairs[:, 1]]
    batch = objective.eval_swaps_batch(a, b)
    for ca, cb, delta in zip(a, b, batch):
        joint = objective.eval_moves([
            (ca, float(placement.x[cb]), float(placement.y[cb]),
             int(placement.z[cb])),
            (cb, float(placement.x[ca]), float(placement.y[ca]),
             int(placement.z[ca]))])
        assert delta == pytest.approx(joint, rel=1e-9, abs=1e-15)


def test_batch_region_centers_match_scalar(small_netlist):
    """optimal_region_centers equals the scalar per-cell query."""
    config = PlacementConfig(alpha_ilv=1e-5, num_layers=4, seed=0)
    objective = _objective(small_netlist, config, trr=False)
    movable = [c.id for c in small_netlist.cells if c.movable]
    centers = objective.optimal_region_centers(movable)
    assert centers.shape == (3, len(movable))
    for i, cid in enumerate(movable):
        expected = objective.optimal_region_center(cid)
        for axis in range(3):
            assert centers[axis, i] == pytest.approx(expected[axis],
                                                     abs=1e-12)
    assert objective.optimal_region_centers([]).shape == (3, 0)


def test_solve_powers_cached_factorization_matches_spsolve():
    """Warm solves reuse the LU yet match a fresh direct solve."""
    from scipy.sparse.linalg import spsolve

    chip = ChipGeometry.for_cell_area(1e-6, 4, 1e-5)
    solver = ThermalSolver(chip, nx=6, ny=5)
    rng = np.random.default_rng(3)
    power = rng.random((6, 5, 4)) * 1e4
    first = solver.solve_powers(power)
    assert solver._factor is not None  # LU cached after first call
    warm = solver.solve_powers(power * 2.0)  # different rhs, same LU
    fresh = ThermalSolver(chip, nx=6, ny=5).solve_powers(power * 2.0)
    np.testing.assert_allclose(warm.active, fresh.active, rtol=1e-9)
    # cross-check one solve against scipy's one-shot direct solver
    matrix = solver._assemble().tocsc()
    rhs = np.zeros((solver._nz, solver.ny, solver.nx))
    rhs[solver.n_substrate:] = power.transpose(2, 1, 0)
    direct = spsolve(matrix, rhs.ravel())
    grid = direct.reshape(solver._nz, solver.ny,
                          solver.nx).transpose(2, 1, 0)
    np.testing.assert_allclose(
        first.active, grid[:, :, solver.n_substrate:], rtol=1e-8)


@pytest.mark.parametrize("alpha_temp", [0.0, 4e-5])
def test_pipeline_stages_preserve_consistency(small_netlist, alpha_temp):
    """check_consistency passes after every legalization stage."""
    config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=alpha_temp,
                             num_layers=4, seed=0)
    if config.thermal_enabled and config.use_trr_nets:
        add_trr_nets(small_netlist)
    chip = make_chip(small_netlist, config.num_layers)
    placement = Placement.at_center(small_netlist, chip)
    power_model = PowerModel(small_netlist, config.tech)
    GlobalPlacer(placement, config, power_model).run()
    objective = ObjectiveState(placement, config, power_model)
    objective.check_consistency(tol=1e-9)

    mover = MoveOptimizer(objective, config)
    mover.global_pass()
    mover.local_pass()
    objective.check_consistency(tol=1e-9)

    CellShifter(objective, config).run()
    objective.check_consistency(tol=1e-9)

    DetailedLegalizer(objective, config).run()
    objective.check_consistency(tol=1e-9)

    LegalRefiner(objective, config).run(config.refine_passes)
    objective.check_consistency(tol=1e-9)
    check_legal(placement)
