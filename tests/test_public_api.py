"""Public-API surface tests: names, stability and basic contracts."""

import pytest

import repro
import repro.core as core
import repro.metrics as metrics
import repro.netlist as netlist_pkg
import repro.partition as partition
import repro.thermal as thermal


class TestTopLevel:
    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_names(self):
        # the names the README quickstart uses must stay available
        for name in ("Placer3D", "PlacementConfig", "load_benchmark",
                     "evaluate_placement", "TechnologyConfig"):
            assert hasattr(repro, name)


@pytest.mark.parametrize("module", [core, metrics, netlist_pkg,
                                    partition, thermal])
def test_subpackage_all_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name}"


class TestContracts:
    def test_benchmark_names_stable(self):
        names = repro.benchmark_names()
        assert names == [f"ibm{i:02d}" for i in range(1, 19)]

    def test_config_defaults_are_papers_midpoint(self):
        config = repro.PlacementConfig()
        assert config.alpha_ilv == pytest.approx(1e-5)
        assert config.num_layers == 4
        assert config.alpha_temp == 0.0  # thermal off by default

    def test_placement_report_header_stable_columns(self):
        header = repro.PlacementReport.header().split()
        assert header[0] == "circuit"
        assert "ILVs" in header
        assert "avgT" in header
