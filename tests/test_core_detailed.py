"""Unit tests for detailed legalization (Section 5)."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.detailed import (
    DetailedLegalizer,
    RowSegments,
    check_legal,
)
from repro.core.objective import ObjectiveState
from repro.netlist.placement import Placement
from tests.conftest import make_chip


@pytest.fixture
def segments(small_netlist):
    chip = make_chip(small_netlist)
    pl = Placement.at_center(small_netlist, chip)
    return RowSegments(pl), chip


class TestRowSegments:
    def test_insert_and_occupants(self, segments):
        segs, chip = segments
        segs.insert(0, 0, 7, 5e-6, 2e-6)
        segs.insert(0, 0, 9, 1e-6, 1e-6)
        assert segs.occupants(0, 0) == [9, 7]

    def test_overlap_rejected(self, segments):
        segs, chip = segments
        segs.insert(0, 0, 1, 5e-6, 2e-6)
        with pytest.raises(ValueError):
            segs.insert(0, 0, 2, 5.5e-6, 2e-6)

    def test_touching_allowed(self, segments):
        segs, chip = segments
        segs.insert(0, 0, 1, 5e-6, 2e-6)
        segs.insert(0, 0, 2, 7e-6, 2e-6)  # starts exactly where 1 ends

    def test_nearest_slot_empty_row(self, segments):
        segs, chip = segments
        slot = segs.nearest_slot(0, 0, 5e-6, 2e-6)
        assert slot == pytest.approx(5e-6)

    def test_nearest_slot_clamps_to_row(self, segments):
        segs, chip = segments
        slot = segs.nearest_slot(0, 0, 0.0, 2e-6)
        assert slot == pytest.approx(1e-6)  # half the width from edge

    def test_nearest_slot_avoids_occupied(self, segments):
        segs, chip = segments
        segs.insert(0, 0, 1, 5e-6, 4e-6)  # occupies [3,7]um
        slot = segs.nearest_slot(0, 0, 5e-6, 2e-6)
        assert slot is not None
        lo, hi = slot - 1e-6, slot + 1e-6
        assert hi <= 3e-6 + 1e-12 or lo >= 7e-6 - 1e-12

    def test_no_slot_when_too_wide(self, segments):
        segs, chip = segments
        assert segs.nearest_slot(0, 0, 0.0, 2 * chip.width) is None

    def test_free_width(self, segments):
        segs, chip = segments
        assert segs.free_width(0, 0) == pytest.approx(chip.width)
        segs.insert(0, 0, 1, 5e-6, 2e-6)
        assert segs.free_width(0, 0) == pytest.approx(chip.width - 2e-6)


class TestPushPlan:
    def test_push_when_no_gap(self, segments):
        segs, chip = segments
        w = chip.width
        # fill the middle of the row with back-to-back cells
        segs.insert(0, 0, 1, 0.3 * w, 0.2 * w)
        segs.insert(0, 0, 2, 0.5 * w, 0.2 * w)
        plan = segs.push_plan(0, 0, 0.4 * w, 0.2 * w)
        assert plan is not None
        center, displaced = plan
        assert displaced  # someone must move

    def test_push_apply_keeps_legal(self, segments):
        segs, chip = segments
        w = chip.width
        segs.insert(0, 0, 1, 0.3 * w, 0.2 * w)
        segs.insert(0, 0, 2, 0.5 * w, 0.2 * w)
        plan = segs.push_plan(0, 0, 0.4 * w, 0.2 * w)
        center, displaced = plan
        segs.apply_push(0, 0, 3, center, 0.2 * w, displaced, None)
        starts = segs._starts[(0, 0)]
        ends = segs._ends[(0, 0)]
        for (s1, e1), (s2, e2) in zip(zip(starts, ends),
                                      zip(starts[1:], ends[1:])):
            assert e1 <= s2 + 1e-12
        assert starts[0] >= -1e-12
        assert ends[-1] <= w + 1e-12

    def test_push_refused_when_row_full(self, segments):
        segs, chip = segments
        w = chip.width
        segs.insert(0, 0, 1, 0.5 * w, 0.95 * w)
        assert segs.push_plan(0, 0, 0.5 * w, 0.1 * w) is None


class TestLegalizer:
    def run_legalizer(self, netlist, config, seed=5):
        chip = make_chip(netlist, num_layers=config.num_layers)
        pl = Placement.random(netlist, chip, seed=seed)
        obj = ObjectiveState(pl, config)
        DetailedLegalizer(obj, config).run()
        return pl, obj

    def test_result_is_legal(self, small_netlist, config):
        pl, _ = self.run_legalizer(small_netlist, config)
        check_legal(pl)

    def test_objective_consistent(self, small_netlist, config):
        _, obj = self.run_legalizer(small_netlist, config)
        obj.check_consistency()

    def test_legal_under_thermal_objective(self, small_netlist,
                                           thermal_config):
        pl, _ = self.run_legalizer(small_netlist, thermal_config)
        check_legal(pl)

    def test_medium_netlist_legalizes(self, medium_netlist, config):
        pl, _ = self.run_legalizer(medium_netlist, config)
        check_legal(pl)

    def test_displacement_is_bounded(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=6)
        before = pl.copy()
        obj = ObjectiveState(pl, config)
        DetailedLegalizer(obj, config).run()
        disp = np.hypot(pl.x - before.x, pl.y - before.y)
        assert np.median(disp) < 0.3 * chip.width

    def test_processing_order_covers_all_movable(self, small_netlist,
                                                 config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=5)
        obj = ObjectiveState(pl, config)
        legalizer = DetailedLegalizer(obj, config)
        order = legalizer._processing_order()
        assert sorted(order) == [c.id for c in small_netlist.cells
                                 if c.movable]

    def test_wide_cells_processed_first(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=5)
        obj = ObjectiveState(pl, config)
        legalizer = DetailedLegalizer(obj, config)
        order = legalizer._processing_order()
        widths = small_netlist.widths
        cutoff = 3.0 * small_netlist.average_cell_width
        wide = [c for c in order if widths[c] > cutoff]
        if wide:
            k = len(wide)
            assert order[:k] == wide


class TestCheckLegal:
    def test_detects_overlap(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.at_center(small_netlist, chip)
        pl.y[:] = 0.5 * chip.row_height
        pl.z[:] = 0
        with pytest.raises(AssertionError):
            check_legal(pl)

    def test_detects_off_row(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=1)
        obj = ObjectiveState(pl, config)
        DetailedLegalizer(obj, config).run()
        pl.y[0] += 0.3 * chip.row_height
        with pytest.raises(AssertionError):
            check_legal(pl)

    def test_detects_outside_die(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=1)
        obj = ObjectiveState(pl, config)
        DetailedLegalizer(obj, config).run()
        pl.x[0] = -1e-6
        with pytest.raises(AssertionError):
            check_legal(pl)
