"""Unit tests for wirelength/via metrics and the placement report."""

import numpy as np
import pytest

from repro.geometry.chip import ChipGeometry
from repro.metrics.report import PlacementReport, evaluate_placement
from repro.metrics.wirelength import (
    compute_net_metrics,
    ilv_density_per_interlayer,
    net_bbox,
    total_hpwl,
    total_ilv,
)
from repro.netlist.net import PinRole
from repro.netlist.placement import Placement


@pytest.fixture
def placed_tiny(tiny_netlist, chip4):
    pl = Placement.at_center(tiny_netlist, chip4)
    # deterministic hand layout
    pl.x[:] = [1e-6, 3e-6, 5e-6, 7e-6, 9e-6, 11e-6]
    pl.y[:] = [1e-6, 1e-6, 2e-6, 2e-6, 3e-6, 3e-6]
    pl.z[:] = [0, 0, 1, 1, 2, 3]
    return pl


class TestNetBBox:
    def test_bbox_of_net(self, placed_tiny, tiny_netlist):
        box = net_bbox(placed_tiny, tiny_netlist.nets[0])  # c0,c1,c2
        assert box.xlo == pytest.approx(1e-6)
        assert box.xhi == pytest.approx(5e-6)
        assert box.zlo == 0
        assert box.zhi == 1


class TestComputeNetMetrics:
    def test_values(self, placed_tiny):
        m = compute_net_metrics(placed_tiny)
        # n0 spans x [1,5]um, y [1,2]um, z [0,1]
        assert m.wl_x[0] == pytest.approx(4e-6)
        assert m.wl_y[0] == pytest.approx(1e-6)
        assert m.ilv[0] == 1
        # n3: c4-c5 spans z [2,3]
        assert m.ilv[3] == 1

    def test_totals(self, placed_tiny):
        m = compute_net_metrics(placed_tiny)
        assert m.total_wl == pytest.approx(float(m.wl.sum()))
        assert total_hpwl(placed_tiny) == pytest.approx(m.total_wl)
        assert total_ilv(placed_tiny) == m.total_ilv

    def test_trr_nets_excluded(self, placed_tiny, tiny_netlist):
        before = compute_net_metrics(placed_tiny).total_wl
        tiny_netlist.add_net("__trr__c0", [(0, PinRole.SINK)],
                             activity=0.0, is_trr=True)
        after = compute_net_metrics(placed_tiny)
        assert after.total_wl == pytest.approx(before)
        assert after.wl_x[-1] == 0.0
        assert after.ilv[-1] == 0

    def test_single_cell_net_zero(self, tiny_netlist, chip4):
        tiny_netlist.add_net("loop", [(0, PinRole.DRIVER)])
        pl = Placement.random(tiny_netlist, chip4, seed=0)
        m = compute_net_metrics(pl)
        assert m.wl[-1] == 0.0
        assert m.ilv[-1] == 0


class TestIlvDensity:
    def test_density_formula(self, placed_tiny):
        d = ilv_density_per_interlayer(placed_tiny)
        chip = placed_tiny.chip
        expected = (total_ilv(placed_tiny) / (chip.num_layers - 1)
                    / chip.footprint_area)
        assert d == pytest.approx(expected)

    def test_single_layer_zero(self, tiny_netlist):
        chip = ChipGeometry(width=40e-6, height=20e-6, num_layers=1,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.at_center(tiny_netlist, chip)
        assert ilv_density_per_interlayer(pl) == 0.0

    def test_explicit_total(self, placed_tiny):
        d = ilv_density_per_interlayer(placed_tiny, total_vias=30)
        chip = placed_tiny.chip
        assert d == pytest.approx(30 / 3 / chip.footprint_area)


class TestReport:
    def test_fast_report_skips_thermal(self, small_placement, tech):
        rep = evaluate_placement(small_placement, tech, thermal=False)
        assert rep.total_power == 0.0
        assert rep.average_temperature == 0.0
        assert rep.wirelength > 0

    def test_full_report(self, small_placement, tech):
        rep = evaluate_placement(small_placement, tech, thermal=True,
                                 runtime_seconds=1.5)
        assert rep.total_power > 0
        assert rep.max_temperature >= rep.average_temperature
        assert rep.runtime_seconds == 1.5
        assert rep.num_cells == small_placement.netlist.num_movable

    def test_row_and_header_align(self, small_placement, tech):
        rep = evaluate_placement(small_placement, tech, thermal=False)
        header = PlacementReport.header()
        row = rep.row()
        assert len(header.split()) == len(row.split())
