"""Runtime shape/dtype contracts (``repro.analysis.contracts``).

Covers the decorator's enabled/disabled behaviour, symbol unification
across arguments, the ``expect``/``validate_arrays`` primitives, and the
tolerance helpers that replace raw float ``==`` in the kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (ContractViolation, contract, contracts_enabled,
                            exact_eq, exact_nonzero, exact_zero, expect,
                            hot_path, is_zero, near, set_contracts,
                            validate_arrays)


@pytest.fixture
def contracts_on():
    previous = set_contracts(True)
    yield
    set_contracts(previous)


@pytest.fixture
def contracts_off():
    previous = set_contracts(False)
    yield
    set_contracts(previous)


@contract(shapes={"xs": ("n",), "ys": ("n",)},
          dtypes={"xs": np.floating, "ys": np.floating})
def _paired_sum(xs, ys) -> float:
    return float(xs.sum() + ys.sum())


class TestContractDecorator:
    def test_valid_call_passes(self, contracts_on):
        xs = np.zeros(4, dtype=np.float64)
        assert _paired_sum(xs, xs) == 0.0

    def test_dtype_violation_raises(self, contracts_on):
        xs = np.zeros(4, dtype=np.float64)
        bad = np.zeros(4, dtype=np.int64)
        with pytest.raises(ContractViolation, match="ys"):
            _paired_sum(xs, bad)

    def test_symbol_unification_across_args(self, contracts_on):
        xs = np.zeros(4, dtype=np.float64)
        ys = np.zeros(5, dtype=np.float64)
        with pytest.raises(ContractViolation, match="already bound"):
            _paired_sum(xs, ys)

    def test_error_names_the_entry_point(self, contracts_on):
        with pytest.raises(ContractViolation, match="_paired_sum"):
            _paired_sum(np.zeros(2, dtype=np.int64),
                        np.zeros(2, dtype=np.float64))

    def test_disabled_is_passthrough(self, contracts_off):
        # Wrong dtype AND mismatched lengths: must not raise when off.
        out = _paired_sum(np.zeros(2, dtype=np.int64),
                          np.ones(3, dtype=np.float64))
        assert out == 3.0
        assert not contracts_enabled()

    def test_set_contracts_returns_previous(self):
        previous = set_contracts(True)
        try:
            assert contracts_enabled()
            assert set_contracts(previous) is True
        finally:
            set_contracts(previous)

    def test_none_arguments_skipped(self, contracts_on):
        @contract(shapes={"opt": ("n",)})
        def f(opt=None) -> int:
            return 0 if opt is None else len(opt)

        assert f(None) == 0
        assert f() == 0

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="unknown"):
            @contract(shapes={"nope": ("n",)})
            def f(x) -> None:
                pass

    def test_spec_is_introspectable(self):
        spec = _paired_sum.__repro_contract__
        assert spec["shapes"]["xs"] == ("n",)
        assert np.floating is spec["dtypes"]["ys"]


class TestExpect:
    def test_fixed_dimension_mismatch(self, contracts_on):
        with pytest.raises(ContractViolation, match="axis 0 is 3"):
            expect("a", np.zeros(3, dtype=np.float64), shape=(4,))

    def test_rank_mismatch(self, contracts_on):
        with pytest.raises(ContractViolation, match="expected 1-D"):
            expect("a", np.zeros((2, 2), dtype=np.float64), shape=("n",))

    def test_plain_sequence_length_checked(self, contracts_on):
        expect("a", [1, 2, 3], shape=(3,))
        with pytest.raises(ContractViolation):
            expect("a", [1, 2, 3], shape=(4,))

    def test_non_arraylike_rejected(self, contracts_on):
        with pytest.raises(ContractViolation, match="array-like"):
            expect("a", 7, shape=("n",))

    def test_concrete_dtype_spec(self, contracts_on):
        expect("a", np.zeros(2, dtype=np.int64), dtype=np.int64)
        with pytest.raises(ContractViolation):
            expect("a", np.zeros(2, dtype=np.int32), dtype=np.int64)


class TestValidateArrays:
    def test_consistent_bag_passes(self, contracts_on):
        validate_arrays(
            "Owner",
            a=(np.zeros(3, dtype=np.float64), np.float64, ("n",)),
            b=(np.zeros(3, dtype=np.int64), np.int64, ("n",)),
        )

    def test_cross_field_shape_drift_caught(self, contracts_on):
        with pytest.raises(ContractViolation, match="Owner.b"):
            validate_arrays(
                "Owner",
                a=(np.zeros(3, dtype=np.float64), np.float64, ("n",)),
                b=(np.zeros(4, dtype=np.float64), np.float64, ("n",)),
            )

    def test_noop_when_disabled(self, contracts_off):
        validate_arrays(
            "Owner",
            a=(np.zeros(3, dtype=np.int32), np.float64, (99,)),
        )


class TestHotPathMarker:
    def test_function_returned_unchanged_and_marked(self):
        def f() -> int:
            return 1

        marked = hot_path(f)
        assert marked is f
        assert marked.__repro_hot_path__ is True


class TestToleranceHelpers:
    def test_near_and_is_zero(self):
        assert near(1.0, 1.0 + 1e-12)
        assert not near(1.0, 1.1)
        assert is_zero(1e-15)
        assert not is_zero(1e-3)

    def test_exact_helpers_are_bit_exact(self):
        assert exact_eq(0.1 + 0.2, 0.1 + 0.2)
        assert not exact_eq(0.1 + 0.2, 0.3)
        assert exact_zero(0.0)
        assert exact_zero(-0.0)
        assert not exact_zero(5e-324)
        assert exact_nonzero(5e-324)


class TestKernelIntegration:
    def test_check_consistency_validates_state(self, contracts_on,
                                               small_netlist, config):
        from repro.core.objective import ObjectiveState
        from repro.netlist.placement import Placement
        from tests.conftest import make_chip

        placement = Placement.random(
            small_netlist, make_chip(small_netlist), seed=0)
        state = ObjectiveState(placement, config)
        state.check_consistency()  # healthy state passes
        good = state._wl
        state._wl = state._wl.astype(np.float32)
        try:
            with pytest.raises(ContractViolation, match="_wl"):
                state.check_consistency()
        finally:
            state._wl = good
