"""Property-based tests (hypothesis) for core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cellshift import shifted_widths
from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState, _median_interval_point
from repro.geometry.bbox import BBox3D
from repro.geometry.chip import ChipGeometry
from repro.geometry.density import DensityMesh
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.placement import Placement
from repro.partition.fm import FMRefiner, cut_cost
from repro.partition.hypergraph import Hypergraph
from repro.partition.multilevel import BisectionConfig, bisect

# ----------------------------------------------------------------------
# geometry
# ----------------------------------------------------------------------
coords = st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False,
                   allow_infinity=False)
layers = st.integers(min_value=0, max_value=7)
points = st.tuples(coords, coords, layers)


@given(st.lists(points, min_size=1, max_size=20))
def test_bbox_of_points_contains_all(pts):
    box = BBox3D.of_points(pts)
    for x, y, z in pts:
        assert box.contains_point(x, y, z)


@given(st.lists(points, min_size=1, max_size=12),
       st.lists(points, min_size=1, max_size=12))
def test_bbox_union_is_commutative_and_covering(pa, pb):
    a = BBox3D.of_points(pa)
    b = BBox3D.of_points(pb)
    u1 = a.union(b)
    u2 = b.union(a)
    assert u1 == u2
    assert u1.intersects(a) and u1.intersects(b)
    assert u1.half_perimeter >= max(a.half_perimeter, b.half_perimeter)


@given(points, st.lists(points, min_size=1, max_size=10))
def test_bbox_clamp_point_is_inside(p, pts):
    box = BBox3D.of_points(pts)
    x, y, z = box.clamp_point(*p)
    assert box.xlo <= x <= box.xhi
    assert box.ylo <= y <= box.yhi
    assert box.zlo <= z <= box.zhi


# ----------------------------------------------------------------------
# cell shifting widths (Eq. 16 invariants)
# ----------------------------------------------------------------------
densities = st.lists(st.floats(min_value=0.0, max_value=8.0,
                               allow_nan=False),
                     min_size=2, max_size=24)


@given(densities)
def test_shifted_widths_conserve_row_width(d):
    w = shifted_widths(d, 1.0, a_lower=0.5, a_upper=1.0, b=1.0)
    assert w.sum() == pytest.approx(len(d))


@given(densities)
def test_shifted_widths_positive_no_crossover(d):
    w = shifted_widths(d, 1.0, a_lower=0.5, a_upper=1.0, b=1.0)
    assert np.all(w > 0)
    bounds = np.cumsum(w)
    assert np.all(np.diff(bounds) > 0)


@given(densities)
def test_shifted_widths_noop_without_congestion(d):
    if max(d) <= 1.0:
        w = shifted_widths(d, 1.0, a_lower=0.5, a_upper=1.0, b=1.0)
        assert np.allclose(w, 1.0)


@given(densities)
def test_shifted_widths_congested_never_shrink(d):
    w = shifted_widths(d, 1.0, a_lower=0.5, a_upper=1.0, b=1.0)
    for di, wi in zip(d, w):
        if di > 1.0:
            assert wi >= 1.0 - 1e-12


# ----------------------------------------------------------------------
# median interval (optimal region)
# ----------------------------------------------------------------------
intervals = st.lists(
    st.tuples(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
              st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    min_size=1, max_size=15)


@given(intervals)
def test_median_interval_minimizes_total_distance(raw):
    los = [a for a, _ in raw]
    his = [a + b for a, b in raw]
    m = _median_interval_point(los, his)

    def cost(x):
        return sum(max(lo - x, 0.0, x - hi)
                   for lo, hi in zip(los, his))

    base = cost(m)
    for probe in np.linspace(min(los) - 0.5, max(his) + 0.5, 21):
        assert base <= cost(float(probe)) + 1e-9


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@st.composite
def hypergraphs(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    m = draw(st.integers(min_value=1, max_value=40))
    nets = []
    for _ in range(m):
        size = draw(st.integers(min_value=2, max_value=min(5, n)))
        pins = draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                             min_size=size, max_size=size, unique=True))
        nets.append(pins)
    return Hypergraph(n, nets)


@given(hypergraphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_fm_refine_invariants(graph, seed):
    """FM never worsens a balanced start; an unbalanced start may trade
    cut for feasibility but must land inside the balance window."""
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, 2, graph.num_vertices)
    before = cut_cost(graph, parts)
    refiner = FMRefiner(graph, rng=np.random.default_rng(seed))
    w0_before = float(graph.vertex_weights[parts == 0].sum())
    started_feasible = refiner.lo <= w0_before <= refiner.hi
    after = refiner.refine(parts)
    assert after == pytest.approx(cut_cost(graph, parts))
    w0_after = float(graph.vertex_weights[parts == 0].sum())
    if started_feasible:
        assert after <= before + 1e-9
        assert refiner.lo - 1e-9 <= w0_after <= refiner.hi + 1e-9
    else:
        # feasibility outranks cut: the violation must not grow
        viol_before = max(refiner.lo - w0_before,
                          w0_before - refiner.hi)
        viol_after = max(0.0, refiner.lo - w0_after,
                         w0_after - refiner.hi)
        assert viol_after <= viol_before + 1e-9


@given(hypergraphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_bisect_cut_is_reported_correctly(graph, seed):
    parts, cut = bisect(graph, BisectionConfig(seed=seed))
    assert set(np.unique(parts)) <= {0, 1}
    assert cut == pytest.approx(cut_cost(graph, parts))


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_contract_preserves_total_vertex_weight(graph):
    rng = np.random.default_rng(0)
    match = np.arange(graph.num_vertices)
    # random pairing
    perm = rng.permutation(graph.num_vertices)
    for i in range(0, len(perm) - 1, 2):
        match[perm[i + 1]] = perm[i]
    coarse, vmap = graph.contract(match)
    assert coarse.vertex_weights.sum() == pytest.approx(
        graph.vertex_weights.sum())
    assert len(vmap) == graph.num_vertices
    assert vmap.max() == coarse.num_vertices - 1


# ----------------------------------------------------------------------
# objective incremental consistency under random move sequences
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=1000),
       st.booleans())
@settings(max_examples=15, deadline=None)
def test_objective_incremental_equals_rebuild(seed, thermal):
    netlist = generate_netlist(GeneratorSpec(
        name="prop", num_cells=60, total_area=60 * 5e-12, seed=13))
    config = PlacementConfig(alpha_ilv=1e-5,
                             alpha_temp=4e-5 if thermal else 0.0,
                             num_layers=4, seed=0)
    chip = ChipGeometry.for_cell_area(
        netlist.total_cell_area, 4, netlist.average_cell_height,
        min_row_width=24 * netlist.average_cell_width)
    pl = Placement.random(netlist, chip, seed=seed)
    state = ObjectiveState(pl, config)
    rng = np.random.default_rng(seed)
    for _ in range(30):
        cid = int(rng.integers(0, netlist.num_cells))
        move = (cid, float(rng.uniform(0, chip.width)),
                float(rng.uniform(0, chip.height)),
                int(rng.integers(0, 4)))
        state.apply_moves([move])
    state.check_consistency()


# ----------------------------------------------------------------------
# density mesh bookkeeping
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(coords, coords, layers), min_size=1,
                max_size=40))
@settings(max_examples=40, deadline=None)
def test_density_mesh_area_conserved(cells):
    chip = ChipGeometry(width=2e-3, height=2e-3, num_layers=8,
                        row_height=2e-6, row_pitch=2.5e-6)
    mesh = DensityMesh(chip, nx=5, ny=5)
    area = 3e-12
    for i, (x, y, z) in enumerate(cells):
        mesh.add_cell(i, abs(x), abs(y), z, area)
    total = mesh.densities.sum() * mesh.bin_capacity
    assert total == pytest.approx(len(cells) * area)
