"""Unit tests for resource tracking and its Recorder integration.

Covers the RSS helpers, ``ResourceTracker`` lifecycle (including
tracemalloc ownership), the opt-in attach paths on ``Recorder``, and
the ``Recorder.merge`` edge cases the parallel backend relies on:
peak gauges merging by max, empty telemetry, and nested-span
anchoring of worker resource telemetry.
"""

from __future__ import annotations

import tracemalloc

from repro.obs import NullRecorder, Recorder, Telemetry
from repro.obs.resources import (PEAK_RSS_GAUGE, ResourceTracker,
                                 alloc_enabled, peak_rss_bytes,
                                 resources_enabled, rss_bytes)


class TestRssHelpers:
    def test_rss_is_positive_here(self):
        # /proc is available on the CI platform; degrade-to-zero is
        # exercised implicitly by the "0 unknown" contract
        assert rss_bytes() > 0

    def test_peak_is_at_least_current_magnitude(self):
        assert peak_rss_bytes() > 0

    def test_resources_enabled_follows_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert resources_enabled() is True
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert resources_enabled() is False

    def test_alloc_tracing_is_a_separate_opt_in(self, monkeypatch):
        # REPRO_PROFILE alone must NOT start tracemalloc (~8x cost)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.delenv("REPRO_PROFILE_ALLOC", raising=False)
        assert alloc_enabled() is False
        rec = Recorder(track_resources=False)
        tracker = ResourceTracker(rec)  # default defers to env
        assert tracker.tracing is False
        monkeypatch.setenv("REPRO_PROFILE_ALLOC", "1")
        assert alloc_enabled() is True
        tracker = ResourceTracker(rec)
        assert tracker.tracing is True
        tracker.finish()  # stops the tracemalloc it started


class TestResourceTracker:
    def test_sample_writes_gauges_and_counter(self):
        rec = Recorder(track_resources=False)
        tracker = ResourceTracker(rec, trace_allocations=False)
        tracker.sample("global")
        tracker.sample("round1/moves")
        assert rec.gauges["resources/rss/global"] > 0
        assert rec.gauges["resources/rss/round1/moves"] > 0
        assert rec.gauges[PEAK_RSS_GAUGE] > 0
        assert rec.counters["resources/samples"] == 2
        assert tracker.samples == 2

    def test_finish_document_shape(self):
        rec = Recorder(track_resources=False)
        tracker = ResourceTracker(rec, trace_allocations=True,
                                  top_allocations=3)
        blob = [bytes(1000) for _ in range(50)]  # traced allocations
        doc = tracker.finish()
        assert blob  # keep alive through the snapshot
        assert doc["peak_rss_bytes"] > 0
        assert doc["baseline_rss_bytes"] > 0
        assert doc["tracemalloc"]["enabled"] is True
        assert len(doc["tracemalloc"]["top_allocations"]) <= 3
        for row in doc["tracemalloc"]["top_allocations"]:
            assert set(row) == {"site", "size_bytes", "count"}
            assert ":" in row["site"]
        # finish stopped the tracemalloc this tracker started
        assert not tracemalloc.is_tracing()

    def test_does_not_stop_foreign_tracemalloc(self):
        tracemalloc.start()
        try:
            rec = Recorder(track_resources=False)
            tracker = ResourceTracker(rec, trace_allocations=True)
            assert tracker._owns_tracemalloc is False
            tracker.finish()
            assert tracemalloc.is_tracing()  # left running
        finally:
            tracemalloc.stop()

    def test_disabled_tracing_reports_empty_allocations(self):
        rec = Recorder(track_resources=False)
        tracker = ResourceTracker(rec, trace_allocations=False)
        doc = tracker.finish()
        assert doc["tracemalloc"]["enabled"] is False
        assert doc["tracemalloc"]["top_allocations"] == []


class TestRecorderAttach:
    def test_explicit_opt_in_attaches_tracker(self):
        rec = Recorder(track_resources=True)
        assert rec.resources is not None
        rec.sample_resources("x")
        assert rec.counters["resources/samples"] == 1
        doc = rec.finish_resources()
        assert doc is not None and doc["samples"] == 1

    def test_default_follows_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert Recorder().resources is not None
        monkeypatch.delenv("REPRO_PROFILE")
        assert Recorder().resources is None

    def test_disabled_recorder_resource_calls_are_noops(self):
        rec = Recorder(track_resources=False)
        rec.sample_resources("x")
        assert rec.counters == {}
        assert rec.finish_resources() is None

    def test_null_recorder_never_attaches(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        null = NullRecorder()
        assert null.resources is None
        null.gauge_max("resources/peak_rss_bytes", 1.0)
        assert null.gauges == {}

    def test_gauge_max_keeps_maximum(self):
        rec = Recorder(track_resources=False)
        rec.gauge_max("resources/peak_rss_bytes", 10.0)
        rec.gauge_max("resources/peak_rss_bytes", 5.0)
        assert rec.gauges["resources/peak_rss_bytes"] == 10.0
        rec.gauge_max("resources/peak_rss_bytes", 20.0)
        assert rec.gauges["resources/peak_rss_bytes"] == 20.0


class TestMergeEdgeCases:
    """``Recorder.merge`` semantics the parallel dispatch depends on."""

    def test_empty_telemetry_merge_is_identity(self):
        rec = Recorder(track_resources=False)
        rec.count("fm/passes", 3)
        rec.gauge("x", 1.0)
        rec.merge(Telemetry())
        assert rec.counters == {"fm/passes": 3.0}
        assert rec.gauges == {"x": 1.0}
        assert rec.tracer.root.as_dict().get("children", []) == []

    def test_peak_gauges_merge_by_max_others_last_write(self):
        rec = Recorder(track_resources=False)
        rec.gauge("resources/peak_rss_bytes", 100.0)
        rec.gauge("resources/tracemalloc_peak_bytes", 10.0)
        rec.gauge("plain", 1.0)
        rec.merge(Telemetry(gauges={
            "resources/peak_rss_bytes": 50.0,          # smaller: kept
            "resources/tracemalloc_peak_bytes": 99.0,  # larger: wins
            "plain": 2.0,                              # LWW
        }))
        assert rec.gauges["resources/peak_rss_bytes"] == 100.0
        assert rec.gauges["resources/tracemalloc_peak_bytes"] == 99.0
        assert rec.gauges["plain"] == 2.0

    def test_peak_gauge_order_independent(self):
        snapshots = [Telemetry(gauges={PEAK_RSS_GAUGE: v})
                     for v in (30.0, 80.0, 50.0)]
        forward = Recorder(track_resources=False)
        backward = Recorder(track_resources=False)
        for snap in snapshots:
            forward.merge(snap)
        for snap in reversed(snapshots):
            backward.merge(snap)
        assert forward.gauges[PEAK_RSS_GAUGE] == 80.0
        assert backward.gauges[PEAK_RSS_GAUGE] == 80.0

    def test_merge_anchors_worker_spans_under_open_span(self):
        worker = Recorder(track_resources=False)
        with worker.span("fm"):
            pass
        worker.count("resources/samples", 1)
        worker.gauge(PEAK_RSS_GAUGE, 123.0)
        snapshot = worker.snapshot()

        main = Recorder(track_resources=False)
        with main.span("global/level2/bisect"):
            main.merge(snapshot)
        paths = {p for p, _ in main.tracer.root.walk()}
        assert "global/level2/bisect/fm" in paths
        assert main.counters["resources/samples"] == 1
        assert main.gauges[PEAK_RSS_GAUGE] == 123.0

    def test_merge_counters_add_across_workers(self):
        main = Recorder(track_resources=False)
        for _ in range(4):
            main.merge(Telemetry(counters={"resources/samples": 1.0}))
        assert main.counters["resources/samples"] == 4.0


class TestWorkerRoundTrip:
    """solve_recorded ships one resource sample per task when opted in."""

    @staticmethod
    def _tiny_task():
        from repro.partition.subproblem import BisectionTask
        return BisectionTask.from_nets(
            nets=[[0, 1], [2, 3]], net_weights=[1.0, 1.0],
            vertex_weights=[1.0, 1.0, 1.0, 1.0], fixed=[-1, -1, -1, -1],
            target=0.5, tolerance=0.1, num_starts=1, max_passes=2,
            seed=0)

    def test_solve_recorded_samples_resources(self, monkeypatch):
        from repro.partition.subproblem import solve_recorded

        monkeypatch.setenv("REPRO_PROFILE", "1")
        _, telemetry = solve_recorded(self._tiny_task())
        assert telemetry.counters.get("resources/samples") == 1.0
        assert telemetry.gauges.get(PEAK_RSS_GAUGE, 0.0) > 0

    def test_solve_recorded_clean_without_opt_in(self, monkeypatch):
        from repro.partition.subproblem import solve_recorded

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        _, telemetry = solve_recorded(self._tiny_task())
        assert "resources/samples" not in telemetry.counters
