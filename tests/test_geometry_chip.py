"""Unit tests for repro.geometry.chip."""

import math

import pytest

from repro.geometry.chip import ChipGeometry


def simple_chip(**overrides) -> ChipGeometry:
    params = dict(width=100e-6, height=50e-6, num_layers=4,
                  row_height=2e-6, row_pitch=2.5e-6)
    params.update(overrides)
    return ChipGeometry(**params)


class TestConstruction:
    def test_rows_per_layer(self):
        chip = simple_chip()
        assert chip.rows_per_layer == 20  # 50um / 2.5um

    def test_bounds(self):
        chip = simple_chip()
        b = chip.bounds
        assert (b.xlo, b.xhi) == (0.0, 100e-6)
        assert (b.zlo, b.zhi) == (0, 3)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            simple_chip(width=-1.0)
        with pytest.raises(ValueError):
            simple_chip(num_layers=0)
        with pytest.raises(ValueError):
            simple_chip(row_pitch=1e-6)  # pitch < row height

    def test_areas(self):
        chip = simple_chip()
        assert chip.footprint_area == pytest.approx(5e-9)
        assert chip.placement_area == pytest.approx(2e-8)


class TestVerticalStack:
    def test_layer_pitch(self):
        chip = simple_chip()
        assert chip.layer_pitch == pytest.approx(6.4e-6)

    def test_stack_height(self):
        chip = simple_chip()
        # 4 layers of 5.7um + 3 gaps of 0.7um
        assert chip.stack_height == pytest.approx(4 * 5.7e-6 + 3 * 0.7e-6)

    def test_layer_center_heights_increase(self):
        chip = simple_chip()
        heights = [chip.layer_center_height(z) for z in range(4)]
        assert heights == sorted(heights)
        assert heights[0] == pytest.approx(0.5 * 5.7e-6)
        assert heights[1] - heights[0] == pytest.approx(chip.layer_pitch)

    def test_distance_to_heat_sink_includes_substrate(self):
        chip = simple_chip()
        d0 = chip.distance_to_heat_sink(0)
        assert d0 == pytest.approx(500e-6 + 0.5 * 5.7e-6)

    def test_layer_out_of_range(self):
        chip = simple_chip()
        with pytest.raises(IndexError):
            chip.layer_base_height(4)
        with pytest.raises(IndexError):
            chip.layer_base_height(-1)


class TestRows:
    def test_row_lookup_by_y(self):
        chip = simple_chip()
        row = chip.row_of_y(6e-6)
        assert row.index == 2
        assert row.y == pytest.approx(5e-6)

    def test_row_of_y_clamps(self):
        chip = simple_chip()
        assert chip.row_of_y(-5e-6).index == 0
        assert chip.row_of_y(1.0).index == chip.rows_per_layer - 1

    def test_rows_on_layer_count(self):
        chip = simple_chip()
        rows = chip.rows_on_layer(2)
        assert len(rows) == chip.rows_per_layer
        assert all(r.layer == 2 for r in rows)

    def test_row_index_out_of_range(self):
        chip = simple_chip()
        with pytest.raises(IndexError):
            chip.row(0, chip.rows_per_layer)

    def test_snap_y_to_row(self):
        chip = simple_chip()
        assert chip.snap_y_to_row(6.1e-6) == pytest.approx(5e-6)
        assert chip.snap_y_to_row(6.4e-6) == pytest.approx(7.5e-6)

    def test_clamp_layer(self):
        chip = simple_chip()
        assert chip.clamp_layer(-0.6) == 0
        assert chip.clamp_layer(1.4) == 1
        assert chip.clamp_layer(9.0) == 3


class TestForCellArea:
    def test_capacity_exceeds_demand(self):
        area = 1000 * 5e-12
        chip = ChipGeometry.for_cell_area(area, num_layers=4,
                                          row_height=2e-6)
        row_capacity = (chip.rows_per_layer * chip.width * chip.row_height
                        * chip.num_layers)
        assert row_capacity >= area

    def test_whitespace_respected(self):
        area = 1000 * 5e-12
        chip = ChipGeometry.for_cell_area(area, num_layers=2,
                                          row_height=2e-6,
                                          whitespace=0.10)
        row_capacity = (chip.rows_per_layer * chip.width * chip.row_height
                        * chip.num_layers)
        # utilization should be <= 90% (plus row rounding slack)
        assert area / row_capacity <= 0.90 + 1e-9

    def test_height_is_whole_rows(self):
        chip = ChipGeometry.for_cell_area(1e-9, num_layers=4,
                                          row_height=2e-6)
        n = chip.height / chip.row_pitch
        assert abs(n - round(n)) < 1e-6

    def test_min_row_width_widens_die(self):
        area = 100 * 5e-12
        narrow = ChipGeometry.for_cell_area(area, 4, 2e-6)
        wide = ChipGeometry.for_cell_area(area, 4, 2e-6,
                                          min_row_width=50e-6)
        assert wide.width >= 50e-6 * (1 - 1e-9)
        assert wide.width > narrow.width

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ChipGeometry.for_cell_area(-1.0, 4, 2e-6)
        with pytest.raises(ValueError):
            ChipGeometry.for_cell_area(1e-9, 4, 2e-6, whitespace=1.0)
