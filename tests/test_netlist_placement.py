"""Unit tests for repro.netlist.placement."""

import numpy as np
import pytest

from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement


@pytest.fixture
def chip():
    return ChipGeometry(width=40e-6, height=20e-6, num_layers=4,
                        row_height=1e-6, row_pitch=1.25e-6)


class TestConstructors:
    def test_at_center(self, tiny_netlist, chip):
        pl = Placement.at_center(tiny_netlist, chip)
        assert np.allclose(pl.x, 20e-6)
        assert np.allclose(pl.y, 10e-6)
        assert np.all(pl.z == 1)  # (4-1)//2

    def test_random_inside_chip(self, tiny_netlist, chip):
        pl = Placement.random(tiny_netlist, chip, seed=1)
        assert np.all((pl.x >= 0) & (pl.x <= chip.width))
        assert np.all((pl.z >= 0) & (pl.z < 4))

    def test_random_deterministic(self, tiny_netlist, chip):
        a = Placement.random(tiny_netlist, chip, seed=5)
        b = Placement.random(tiny_netlist, chip, seed=5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.z, b.z)

    def test_shape_mismatch_rejected(self, tiny_netlist, chip):
        with pytest.raises(ValueError):
            Placement(tiny_netlist, chip, x=np.zeros(3), y=np.zeros(6),
                      z=np.zeros(6))

    def test_fixed_cells_pinned(self, tiny_netlist, chip):
        tiny_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                              fixed_position=(1e-6, 2e-6, 3))
        pl = Placement.at_center(tiny_netlist, chip)
        pad = tiny_netlist.cell("pad")
        assert pl.position(pad.id) == (1e-6, 2e-6, 3)


class TestMutation:
    def test_move(self, tiny_netlist, chip):
        pl = Placement.at_center(tiny_netlist, chip)
        pl.move(0, 1e-6, 2e-6, 3)
        assert pl.position(0) == (1e-6, 2e-6, 3)

    def test_move_fixed_rejected(self, tiny_netlist, chip):
        tiny_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                              fixed_position=(0.0, 0.0, 0))
        pl = Placement.at_center(tiny_netlist, chip)
        with pytest.raises(ValueError):
            pl.move(tiny_netlist.cell("pad").id, 1e-6, 1e-6, 0)

    def test_clamp_to_chip(self, tiny_netlist, chip):
        pl = Placement.at_center(tiny_netlist, chip)
        pl.x[0] = -5e-6
        pl.y[1] = 100e-6
        pl.z[2] = 9
        pl.clamp_to_chip()
        assert pl.x[0] >= 0
        assert pl.y[1] <= chip.height
        assert pl.z[2] == 3

    def test_copy_is_independent(self, tiny_netlist, chip):
        pl = Placement.at_center(tiny_netlist, chip)
        cp = pl.copy()
        cp.x[0] = 1e-6
        assert pl.x[0] != 1e-6


class TestQueries:
    def test_layer_populations(self, tiny_netlist, chip):
        pl = Placement.at_center(tiny_netlist, chip)
        pl.z[:] = [0, 0, 1, 2, 2, 2]
        assert list(pl.layer_populations()) == [2, 1, 3, 0]

    def test_layer_areas(self, tiny_netlist, chip):
        pl = Placement.at_center(tiny_netlist, chip)
        pl.z[:] = [0, 0, 0, 3, 3, 3]
        areas = pl.layer_areas()
        assert areas[0] == pytest.approx(3 * 2e-12)
        assert areas[3] == pytest.approx(3 * 2e-12)
        assert areas[1] == 0.0

    def test_iter_movable_skips_fixed(self, tiny_netlist, chip):
        tiny_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                              fixed_position=(0.0, 0.0, 0))
        pl = Placement.at_center(tiny_netlist, chip)
        ids = [cid for cid, *_ in pl.iter_movable()]
        assert tiny_netlist.cell("pad").id not in ids
        assert len(ids) == 6
