"""Service layer: job store, result cache, engine and RPC.

Covers the job state machine (legal/illegal transitions, atomic
document writes, schema validation), the content-addressed result
cache (hit/miss, atomic publish, publish races), the placement engine
(submit/wait, duplicate coalescing to cache hits, cancel/resume,
telemetry counters), the config-key classification audit that keeps
the cache key honest, and the unix-socket JSON-RPC server/client.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.placer import Placer3D
from repro.netlist.bookshelf import read_bookshelf, write_bookshelf
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.obs.manifest import (EXECUTION_ONLY_KEYS, HASHED_CONFIG_KEYS,
                                config_hash)
from repro.service import (JOB_STATES, TERMINAL_STATES, JobError,
                           JobRequest, JobStateError, JobStore,
                           PlacementEngine, ResultCache, RpcError,
                           RpcServer, ServiceClient, cache_key,
                           netlist_hash)
from repro.service.jobstore import validate_job


def _netlist(num_cells: int = 40, seed: int = 17):
    return generate_netlist(GeneratorSpec(
        name="svc", num_cells=num_cells,
        total_area=num_cells * 5e-12, seed=seed))


def _bookshelf(tmp_path, num_cells: int = 40, seed: int = 17) -> str:
    prefix = str(tmp_path / "svc")
    write_bookshelf(prefix, _netlist(num_cells, seed))
    return prefix


def _config(**overrides) -> PlacementConfig:
    base = dict(alpha_ilv=1e-5, num_layers=2, seed=5,
                legalization_rounds=1, refine_passes=0)
    base.update(overrides)
    return PlacementConfig(**base)


def _request(prefix: str, **overrides) -> JobRequest:
    base = dict(config=_config().to_dict(), bookshelf=prefix)
    base.update(overrides)
    return JobRequest(**base)


class TestJobRequest:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobRequest(config={})
        with pytest.raises(ValueError, match="exactly one"):
            JobRequest(config={}, circuit="ibm01", bookshelf="x")

    def test_round_trips_through_dict(self):
        request = JobRequest(config=_config().to_dict(),
                             circuit="ibm01", scale=0.02,
                             label="point 3", want_telemetry=True,
                             check=True)
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown job-request"):
            JobRequest.from_dict({"config": {}, "circuit": "ibm01",
                                  "surprise": 1})

    def test_from_dict_needs_config_object(self):
        with pytest.raises(ValueError, match="'config' object"):
            JobRequest.from_dict({"circuit": "ibm01"})

    def test_source_names_the_netlist(self):
        assert JobRequest(config={}, circuit="ibm01",
                          scale=0.02).source == "ibm01@0.02"
        assert JobRequest(config={},
                          bookshelf="/x/y").source == "/x/y"


class TestJobStore:
    def _store(self, tmp_path) -> JobStore:
        return JobStore(tmp_path / "jobs")

    def _hashes(self):
        return {"config": "sha256:c", "spec": "sha256:s",
                "netlist": "sha256:n", "cache_key": "k" * 64}

    def test_create_spools_a_valid_queued_document(self, tmp_path):
        store = self._store(tmp_path)
        request = JobRequest(config=_config().to_dict(),
                             circuit="ibm01", scale=0.01)
        document = store.create(request, self._hashes())
        assert document["id"] == "job-000001"
        assert document["state"] == "queued"
        assert document["cache"] == "miss"
        assert document["label"] == "ibm01@0.01"
        assert validate_job(document) == []
        on_disk = json.loads(
            (store.job_dir("job-000001") / "job.json").read_text())
        assert on_disk == document

    def test_ids_are_sequential(self, tmp_path):
        store = self._store(tmp_path)
        request = JobRequest(config={}, circuit="ibm01")
        ids = [store.create(request, self._hashes())["id"]
               for _ in range(3)]
        assert ids == ["job-000001", "job-000002", "job-000003"]
        assert [d["id"] for d in store.list_jobs()] == ids

    def test_load_missing_job_raises(self, tmp_path):
        with pytest.raises(JobError, match="no such job"):
            self._store(tmp_path).load("job-999999")

    def test_update_refuses_state_changes(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        with pytest.raises(JobStateError, match="transition"):
            store.update(job_id, state="done")

    def test_legal_lifecycle_transitions(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        assert store.transition(job_id, "running")["state"] == "running"
        done = store.transition(
            job_id, "done",
            result={"objective": 1.0, "wirelength": 2.0, "ilv": 3,
                    "ilv_density": 0.1, "wall_seconds": 0.5})
        assert done["state"] == "done"
        assert validate_job(done) == []

    @pytest.mark.parametrize("from_state,to_state", [
        ("queued", "failed"),    # only running jobs fail
        ("done", "queued"),      # done is forever
        ("done", "running"),
        ("queued", "queued"),
    ])
    def test_illegal_transitions_refused(self, tmp_path, from_state,
                                         to_state):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        if from_state == "done":
            store.transition(job_id, "running")
            store.transition(job_id, "done")
        with pytest.raises(JobStateError, match="illegal transition"):
            store.transition(job_id, to_state)

    def test_expect_guard(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        with pytest.raises(JobStateError, match="expected one of"):
            store.transition(job_id, "done", expect=("running",))

    def test_unknown_state_refused(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        with pytest.raises(JobStateError, match="unknown job state"):
            store.transition(job_id, "paused")

    def test_cancel_and_requeue_round_trip(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        document = store.request_cancel(job_id)
        assert document["cancel_requested"] is True
        assert store.cancel_requested(job_id)
        store.transition(job_id, "cancelled")
        requeued = store.requeue(job_id)
        assert requeued["state"] == "queued"
        assert requeued["cancel_requested"] is False
        assert not store.cancel_requested(job_id)

    def test_requeue_refused_for_done_job(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        store.transition(job_id, "running")
        store.transition(job_id, "done")
        with pytest.raises(JobStateError):
            store.requeue(job_id)

    def test_invalid_document_refused_on_write(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.create(JobRequest(config={}, circuit="ibm01"),
                              self._hashes())["id"]
        with pytest.raises(JobError, match="invalid job document"):
            store.update(job_id, preemptions="three")

    def test_state_constants_are_consistent(self):
        assert set(TERMINAL_STATES) <= set(JOB_STATES)
        assert "queued" not in TERMINAL_STATES
        assert "running" not in TERMINAL_STATES


class TestResultCache:
    def _summary(self):
        return {"objective": 1.5, "wirelength": 2.0, "ilv": 4,
                "ilv_density": 0.2, "wall_seconds": 0.1}

    def _placement(self, tmp_path, value=1.0):
        path = tmp_path / "placement.npz"
        np.savez_compressed(path, x=np.full(3, value),
                            y=np.zeros(3), z=np.zeros(3, dtype=int))
        return path

    def test_fetch_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path / "cache").fetch("ab" * 32) is None

    def test_store_then_fetch_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        stored = cache.store(key, self._placement(tmp_path),
                             {"kind": "m"}, self._summary())
        fetched = cache.fetch(key)
        assert fetched is not None
        assert fetched.summary == self._summary()
        assert fetched.placement_path == stored.placement_path
        arrays = np.load(fetched.placement_path)
        assert np.array_equal(arrays["x"], np.full(3, 1.0))
        assert json.loads(
            fetched.manifest_path.read_text()) == {"kind": "m"}
        assert cache.keys() == [key]

    def test_publish_race_keeps_incumbent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "cd" * 32
        cache.store(key, self._placement(tmp_path, 1.0), {},
                    self._summary())
        cache.store(key, self._placement(tmp_path, 9.0), {},
                    dict(self._summary(), objective=9.9))
        entry = cache.fetch(key)
        assert entry is not None
        assert entry.summary["objective"] == 1.5
        arrays = np.load(entry.placement_path)
        assert np.array_equal(arrays["x"], np.full(3, 1.0))

    def test_fan_out_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ef" * 32
        assert cache.entry_dir(key) == tmp_path / "cache" / "ef" / key


class TestCacheKeying:
    def test_cache_key_depends_on_every_component(self):
        base = cache_key("c", "s", "n")
        assert base == cache_key("c", "s", "n")
        assert len(base) == 64
        assert base != cache_key("C", "s", "n")
        assert base != cache_key("c", "S", "n")
        assert base != cache_key("c", "s", "N")

    def test_netlist_hash_is_stable_across_loads(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        first = netlist_hash(read_bookshelf(prefix))
        second = netlist_hash(read_bookshelf(prefix))
        assert first == second

    def test_netlist_hash_sees_structure(self):
        assert netlist_hash(_netlist(seed=17)) \
            != netlist_hash(_netlist(seed=18))
        assert netlist_hash(_netlist(num_cells=40)) \
            != netlist_hash(_netlist(num_cells=41))


class TestConfigKeyClassification:
    """Satellite audit: the cache key is only as honest as the
    hashed-vs-execution-only split of ``PlacementConfig``."""

    def test_every_field_is_classified_exactly_once(self):
        fields = {f.name for f in dataclasses.fields(PlacementConfig)}
        hashed = set(HASHED_CONFIG_KEYS)
        execution = set(EXECUTION_ONLY_KEYS)
        assert hashed | execution == fields, (
            "every PlacementConfig field must be classified as hashed "
            "or execution-only in repro.obs.manifest")
        assert hashed & execution == set(), (
            "a config key cannot be both hashed and execution-only")

    def test_unclassified_key_fails_loudly(self):
        document_keys = set(_config().to_dict())
        assert document_keys == set(HASHED_CONFIG_KEYS) \
            | set(EXECUTION_ONLY_KEYS)

        @dataclasses.dataclass
        class Widened(PlacementConfig):
            """A config with a field the classification never saw."""

            mystery_knob: int = 3

        with pytest.raises(ValueError, match="mystery_knob"):
            config_hash(Widened())

    def test_execution_only_keys_do_not_move_the_hash(self):
        base = _config()
        assert config_hash(base) == config_hash(
            _config(num_workers=4, thermal_fidelity="exact",
                    thermal_drift_tolerance=0.5))
        assert config_hash(base) != config_hash(_config(seed=6))


class TestPlacementEngine:
    def test_duplicate_submission_is_a_cache_hit(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            first = engine.submit(_request(prefix))
            second = engine.submit(_request(prefix))
            documents = engine.wait([first, second], timeout=120)
            assert [d["state"] for d in documents] == ["done", "done"]
            assert documents[0]["cache"] == "miss"
            assert documents[1]["cache"] == "hit"
            assert documents[0]["result"] == documents[1]["result"]
            counters = engine.counters()
            assert counters["jobs/submitted"] == 2
            assert counters["cache/miss"] == 1
            assert counters["cache/hit"] == 1
            assert counters["jobs/done"] == 1
            for document in documents:
                assert validate_job(document) == []
                result_dir = engine.store.result_dir(document["id"])
                assert (result_dir / "placement.npz").is_file()
                manifest = json.loads(
                    (result_dir / "manifest.json").read_text())
                assert manifest["job"]["id"] == document["id"]
                assert manifest["job"]["cache"] == document["cache"]
            first_npz = np.load(
                engine.store.result_dir(first) / "placement.npz")
            second_npz = np.load(
                engine.store.result_dir(second) / "placement.npz")
            for axis in ("x", "y", "z"):
                assert np.array_equal(first_npz[axis],
                                      second_npz[axis])

    def test_cache_survives_engine_restart(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        cache_dir = tmp_path / "shared-cache"
        with PlacementEngine(tmp_path / "jobs-a",
                             cache_dir=cache_dir,
                             workers=1) as engine:
            engine.wait([engine.submit(_request(prefix))], timeout=120)
        with PlacementEngine(tmp_path / "jobs-b",
                             cache_dir=cache_dir,
                             workers=1) as engine:
            job_id = engine.submit(_request(prefix))
            assert engine.try_cache(job_id) is not None
            document = engine.status(job_id)
            assert document["state"] == "done"
            assert document["cache"] == "hit"
            assert engine.counters()["cache/hit"] == 1

    def test_different_config_misses(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            a = engine.submit(_request(prefix))
            b = engine.submit(_request(
                prefix, config=_config(seed=6).to_dict()))
            documents = engine.wait([a, b], timeout=240)
            assert [d["cache"] for d in documents] == ["miss", "miss"]
            assert engine.counters()["cache/miss"] == 2

    def test_cancel_queued_then_resume(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            job_id = engine.submit(_request(prefix))
            cancelled = engine.cancel(job_id)
            assert cancelled["state"] == "cancelled"
            assert engine.resume(job_id)["state"] == "queued"
            (document,) = engine.wait([job_id], timeout=120)
            assert document["state"] == "done"

    def test_wait_timeout_names_the_stragglers(self, tmp_path):
        # a duplicate submission coalesces behind its in-flight leader,
        # so one pump leaves both jobs active: a zero deadline expires
        prefix = _bookshelf(tmp_path)
        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            first = engine.submit(_request(prefix))
            second = engine.submit(_request(prefix))
            with pytest.raises(TimeoutError, match=second):
                engine.wait([first, second], timeout=0.0)
            documents = engine.wait([first, second], timeout=120)
            assert [d["state"] for d in documents] == ["done", "done"]

    def test_failed_job_parks_with_error(self, tmp_path):
        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            job_id = engine.submit(
                JobRequest(config=_config().to_dict(),
                           bookshelf=str(tmp_path / "missing")),
                netlist_digest="sha256:doesnotmatter")
            (document,) = engine.wait([job_id], timeout=60)
            assert document["state"] == "failed"
            assert document["error"]
            assert engine.counters()["jobs/failed"] == 1


class TestRpcDispatch:
    def _engine(self, tmp_path) -> PlacementEngine:
        return PlacementEngine(tmp_path / "jobs", workers=1)

    def test_unknown_method(self, tmp_path):
        with self._engine(tmp_path) as engine:
            server = RpcServer(engine, tmp_path / "s.sock")
            with pytest.raises(RpcError) as excinfo:
                server.handle("frobnicate", {})
            assert excinfo.value.code == -32601

    def test_missing_job_id_is_invalid_params(self, tmp_path):
        with self._engine(tmp_path) as engine:
            server = RpcServer(engine, tmp_path / "s.sock")
            with pytest.raises(RpcError) as excinfo:
                server.handle("status", {})
            assert excinfo.value.code == -32602

    def test_job_errors_map_to_job_error_code(self, tmp_path):
        with self._engine(tmp_path) as engine:
            server = RpcServer(engine, tmp_path / "s.sock")
            with pytest.raises(RpcError) as excinfo:
                server.handle("status", {"job_id": "job-999999"})
            assert excinfo.value.code == -32000

    def test_result_of_unfinished_job_errors(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        with self._engine(tmp_path) as engine:
            server = RpcServer(engine, tmp_path / "s.sock")
            job_id = engine.submit(_request(prefix))
            with pytest.raises(RpcError, match="not done"):
                server.handle("result", {"job_id": job_id})

    def test_malformed_wire_requests(self, tmp_path):
        with self._engine(tmp_path) as engine:
            server = RpcServer(engine, tmp_path / "s.sock")
            response = server._respond(b"{broken")
            assert response["error"]["code"] == -32600
            response = server._respond(b'["not", "an", "object"]')
            assert response["error"]["code"] == -32600
            response = server._respond(b'{"id": 7, "params": {}}')
            assert response["id"] == 7
            assert response["error"]["code"] == -32600
            response = server._respond(
                b'{"id": 8, "method": "list", "params": [1]}')
            assert response["error"]["code"] == -32602

    def test_stats_reports_counters_and_liveness(self, tmp_path):
        with self._engine(tmp_path) as engine:
            server = RpcServer(engine, tmp_path / "s.sock")
            stats = server.handle("stats", {})
            assert "counters" in stats
            assert "liveness" in stats


class TestRpcSocket:
    def test_end_to_end_over_unix_socket(self, tmp_path):
        prefix = _bookshelf(tmp_path)
        socket_path = tmp_path / "repro.sock"
        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            engine.scheduler.start()
            server = RpcServer(engine, socket_path)
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            deadline = time.monotonic() + 30
            while not socket_path.exists():
                assert time.monotonic() < deadline, "socket never bound"
                time.sleep(0.02)
            try:
                with ServiceClient(socket_path) as client:
                    request = _request(prefix).to_dict()
                    first = client.submit(request)["job_id"]
                    second = client.submit(request)["job_id"]
                    deadline = time.monotonic() + 120
                    while True:
                        states = {client.status(j)["state"]
                                  for j in (first, second)}
                        if states <= {"done", "failed", "cancelled"}:
                            break
                        assert time.monotonic() < deadline
                        time.sleep(0.05)
                    assert client.status(first)["cache"] == "miss"
                    assert client.status(second)["cache"] == "hit"
                    result = client.result(second)
                    assert result["cache"] == "hit"
                    assert result["result"]["wirelength"] > 0
                    jobs = client.list_jobs()
                    assert [j["id"] for j in jobs] == [first, second]
                    stats = client.stats()
                    assert stats["counters"]["cache/hit"] == 1
                    with pytest.raises(RpcError) as excinfo:
                        client.call("status", job_id=42)
                    assert excinfo.value.code == -32602
                    assert client.shutdown() == {"ok": True}
            finally:
                thread.join(timeout=30)
            assert not thread.is_alive()
            assert not socket_path.exists()
