"""Unit tests for recursive-bisection global placement."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.globalplace import GlobalPlacer, Region
from repro.core.trrnets import add_trr_nets
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.placement import Placement
from tests.conftest import make_chip


def place(netlist, config):
    chip = make_chip(netlist, num_layers=config.num_layers)
    pl = Placement.at_center(netlist, chip)
    GlobalPlacer(pl, config).run()
    return pl


class TestRegion:
    def test_properties(self):
        r = Region([1, 2], 0.0, 4e-6, 0.0, 2e-6, 1, 3)
        assert r.width == pytest.approx(4e-6)
        assert r.height == pytest.approx(2e-6)
        assert r.layers == 3
        assert r.center == (2e-6, 1e-6, 2)


class TestCutDirection:
    def make_placer(self, small_netlist, config):
        chip = make_chip(small_netlist)
        pl = Placement.at_center(small_netlist, chip)
        return GlobalPlacer(pl, config)

    def test_widest_dimension_cut(self, small_netlist, config):
        placer = self.make_placer(small_netlist, config)
        wide = Region([], 0.0, 10e-6, 0.0, 2e-6, 0, 0)
        assert placer._choose_axis(wide) == "x"
        tall = Region([], 0.0, 2e-6, 0.0, 10e-6, 0, 0)
        assert placer._choose_axis(tall) == "y"

    def test_weighted_depth_wins_for_costly_vias(self, small_netlist):
        config = PlacementConfig(alpha_ilv=5e-3, num_layers=4)
        placer = self.make_placer(small_netlist, config)
        region = Region([], 0.0, 10e-6, 0.0, 10e-6, 0, 3)
        # weighted depth = 4 * 5e-3 >> 10um
        assert placer._choose_axis(region) == "z"

    def test_cheap_vias_defer_z_cut(self, small_netlist):
        config = PlacementConfig(alpha_ilv=5e-9, num_layers=4)
        placer = self.make_placer(small_netlist, config)
        region = Region([], 0.0, 10e-6, 0.0, 10e-6, 0, 3)
        assert placer._choose_axis(region) in ("x", "y")

    def test_single_layer_never_z(self, small_netlist, config):
        placer = self.make_placer(small_netlist, config)
        region = Region([], 0.0, 1e-9, 0.0, 1e-9, 2, 2)
        assert placer._choose_axis(region) != "z"


class TestPlacementOutcome:
    def test_cells_inside_chip(self, small_netlist, config):
        pl = place(small_netlist, config)
        chip = pl.chip
        assert np.all((pl.x >= 0) & (pl.x <= chip.width))
        assert np.all((pl.y >= 0) & (pl.y <= chip.height))
        assert np.all((pl.z >= 0) & (pl.z < chip.num_layers))

    def test_cells_spread_after_placement(self, small_netlist, config):
        pl = place(small_netlist, config)
        assert len(set(zip(pl.x.tolist(), pl.y.tolist()))) > 20

    def test_layer_areas_balanced(self, medium_netlist, config):
        pl = place(medium_netlist, config)
        areas = pl.layer_areas()
        frac = areas / areas.sum()
        assert frac.max() < 0.45
        assert frac.min() > 0.10

    def test_beats_random_wirelength(self, medium_netlist, config):
        pl = place(medium_netlist, config)
        placed_wl = compute_net_metrics(pl).total_wl
        rand = Placement.random(medium_netlist, pl.chip, seed=0)
        random_wl = compute_net_metrics(rand).total_wl
        assert placed_wl < 0.8 * random_wl

    def test_ilv_tradeoff_direction(self, medium_netlist):
        cheap = place(medium_netlist,
                      PlacementConfig(alpha_ilv=5e-9, seed=0))
        costly = place(medium_netlist,
                       PlacementConfig(alpha_ilv=5e-3, seed=0))
        m_cheap = compute_net_metrics(cheap)
        m_costly = compute_net_metrics(costly)
        assert m_costly.total_ilv < m_cheap.total_ilv
        assert m_costly.total_wl > 0.9 * m_cheap.total_wl

    def test_deterministic(self, small_netlist, config):
        a = place(small_netlist, config)
        b = place(small_netlist, config)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.z, b.z)

    def test_single_layer_chip(self, small_netlist):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=1, seed=0)
        pl = place(small_netlist, config)
        assert np.all(pl.z == 0)
        assert compute_net_metrics(pl).total_ilv == 0

    def test_fixed_cells_untouched(self, small_netlist, config):
        small_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                               fixed_position=(1e-6, 1e-6, 0))
        pl = place(small_netlist, config)
        pad = small_netlist.cell("pad")
        assert pl.position(pad.id) == (1e-6, 1e-6, 0)

    def test_thermal_placement_shifts_power_down(self, medium_netlist,
                                                 thermal_config):
        from repro.thermal.power import PowerModel
        cold_cfg = PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                                   num_layers=4, seed=0)
        hot_cfg = PlacementConfig(alpha_ilv=1e-5, alpha_temp=6e-4,
                                  num_layers=4, seed=0)
        add_trr_nets(medium_netlist)
        base = place(medium_netlist, cold_cfg)
        thermal = place(medium_netlist, hot_cfg)
        pm = PowerModel(medium_netlist, hot_cfg.tech)

        def bottom_power_fraction(pl):
            cp = pm.cell_powers(compute_net_metrics(pl))
            per_layer = np.zeros(4)
            for cid in range(medium_netlist.num_cells):
                per_layer[int(pl.z[cid])] += cp[cid]
            return per_layer[0] / per_layer.sum()

        assert bottom_power_fraction(thermal) > \
            bottom_power_fraction(base)
