"""Unit tests for repro.netlist.cell / net / netlist."""

import numpy as np
import pytest

from repro.netlist.cell import Cell
from repro.netlist.net import Net, PinRole
from repro.netlist.netlist import Netlist


class TestCell:
    def test_area(self):
        cell = Cell(0, "a", 2e-6, 3e-6)
        assert cell.area == pytest.approx(6e-12)
        assert cell.movable

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Cell(0, "a", -1e-6, 1e-6)

    def test_fixed_needs_position(self):
        with pytest.raises(ValueError):
            Cell(0, "pad", 1e-6, 1e-6, fixed=True)
        cell = Cell(0, "pad", 1e-6, 1e-6, fixed=True,
                    fixed_position=(0.0, 0.0, 0))
        assert not cell.movable


class TestNet:
    def test_pin_roles(self):
        net = Net(0, "n", [(0, PinRole.DRIVER), (1, PinRole.SINK),
                           (2, PinRole.SINK)])
        assert net.degree == 3
        assert net.driver_ids == [0]
        assert net.sink_ids == [1, 2]
        assert net.num_output_pins == 1
        assert net.num_input_pins == 2

    def test_unique_cell_ids_preserves_order(self):
        net = Net(0, "n", [(3, PinRole.DRIVER), (1, PinRole.SINK),
                           (3, PinRole.SINK), (2, PinRole.SINK)])
        assert net.unique_cell_ids == [3, 1, 2]
        assert net.cell_ids == [3, 1, 3, 2]

    def test_activity_bounds(self):
        with pytest.raises(ValueError):
            Net(0, "n", [(0, PinRole.DRIVER)], activity=1.5)

    def test_multi_driver(self):
        net = Net(0, "n", [(0, PinRole.DRIVER), (1, PinRole.DRIVER),
                           (2, PinRole.SINK)])
        assert net.num_output_pins == 2


class TestNetlistConstruction:
    def test_dense_ids(self, tiny_netlist):
        for i, cell in enumerate(tiny_netlist.cells):
            assert cell.id == i
        for i, net in enumerate(tiny_netlist.nets):
            assert net.id == i

    def test_duplicate_cell_name(self, tiny_netlist):
        with pytest.raises(ValueError):
            tiny_netlist.add_cell("c0", 1e-6, 1e-6)

    def test_duplicate_net_name(self, tiny_netlist):
        with pytest.raises(ValueError):
            tiny_netlist.add_net("n0", [(0, PinRole.DRIVER)])

    def test_net_with_unknown_cell(self, tiny_netlist):
        with pytest.raises(ValueError):
            tiny_netlist.add_net("bad", [(99, PinRole.DRIVER)])

    def test_empty_net_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            tiny_netlist.add_net("empty", [])

    def test_lookup_by_name(self, tiny_netlist):
        assert tiny_netlist.cell("c3").id == 3
        assert tiny_netlist.net("n2").id == 2


class TestNetlistQueries:
    def test_counts(self, tiny_netlist):
        assert tiny_netlist.num_cells == 6
        assert tiny_netlist.num_nets == 5
        assert tiny_netlist.num_movable == 6

    def test_incidence(self, tiny_netlist):
        assert sorted(tiny_netlist.nets_of_cell(2)) == [0, 1, 4]
        assert sorted(tiny_netlist.nets_of_cell(5)) == [3]

    def test_driven_nets(self, tiny_netlist):
        assert tiny_netlist.driven_nets_of_cell(0) == [0]
        assert tiny_netlist.driven_nets_of_cell(2) == [4]
        assert tiny_netlist.driven_nets_of_cell(5) == []

    def test_signal_vs_trr_nets(self, tiny_netlist):
        tiny_netlist.add_net("__trr__c0", [(0, PinRole.SINK)],
                             activity=0.0, is_trr=True)
        assert len(tiny_netlist.signal_nets()) == 5
        assert len(tiny_netlist.trr_nets()) == 1

    def test_degree_histogram(self, tiny_netlist):
        hist = tiny_netlist.degree_histogram()
        assert hist == {3: 1, 2: 4}

    def test_num_pins(self, tiny_netlist):
        assert tiny_netlist.num_pins() == 3 + 2 * 4


class TestNetlistArrays:
    def test_widths_heights_areas(self, tiny_netlist):
        assert tiny_netlist.widths.shape == (6,)
        assert np.allclose(tiny_netlist.widths, 2e-6)
        assert np.allclose(tiny_netlist.areas, 2e-12)

    def test_total_cell_area_excludes_fixed(self, tiny_netlist):
        before = tiny_netlist.total_cell_area
        tiny_netlist.add_cell("pad", 10e-6, 10e-6, fixed=True,
                              fixed_position=(0.0, 0.0, 0))
        assert tiny_netlist.total_cell_area == pytest.approx(before)

    def test_average_dimensions(self, tiny_netlist):
        assert tiny_netlist.average_cell_width == pytest.approx(2e-6)
        assert tiny_netlist.average_cell_height == pytest.approx(1e-6)

    def test_arrays_refresh_after_adding_cells(self, tiny_netlist):
        _ = tiny_netlist.widths
        tiny_netlist.add_cell("extra", 4e-6, 1e-6)
        assert tiny_netlist.widths.shape == (7,)
        assert tiny_netlist.widths[-1] == pytest.approx(4e-6)

    def test_average_of_empty_netlist_raises(self):
        nl = Netlist("empty")
        with pytest.raises(ValueError):
            _ = nl.average_cell_width


class TestValidation:
    def test_valid_netlist_passes(self, tiny_netlist):
        tiny_netlist.validate()

    def test_trr_net_with_extra_pins_fails(self, tiny_netlist):
        tiny_netlist.add_net("__trr__bad",
                             [(0, PinRole.SINK), (1, PinRole.SINK)],
                             activity=0.0, is_trr=True)
        with pytest.raises(ValueError):
            tiny_netlist.validate()
