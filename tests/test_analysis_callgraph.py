"""Symbol-table and call-graph construction tests (``tools.analysis``).

Fixture packages are written to ``tmp_path`` so each test controls the
full module layout: the loader derives the package name from the root
directory's basename, so a tree written under ``tmp_path/app`` becomes
the ``app.*`` module namespace.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path
from typing import Dict

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis import build_callgraph, load_program
from tools.analysis.passes import build_context, enclosing_symbol


def write_package(root: Path, files: Dict[str, str]) -> Path:
    """Write ``files`` (relative paths -> source) under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


@pytest.fixture()
def app(tmp_path: Path) -> Path:
    return tmp_path / "app"


class TestSymbolTable:
    def test_functions_classes_and_methods_indexed(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                class Greeter:
                    def hello(self) -> str:
                        return "hi"

                def top() -> None:
                    def inner() -> None:
                        pass
                    inner()
            """,
        })
        program = load_program([str(app)])
        assert "app.mod.Greeter.hello" in program.functions
        assert "app.mod.top" in program.functions
        assert "app.mod.top.<locals>.inner" in program.functions
        assert "app.mod.Greeter" in program.classes

    def test_same_module_base_classes_resolve(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                class Base:
                    def run(self) -> None: ...

                class Child(Base):
                    def run(self) -> None: ...
            """,
        })
        program = load_program([str(app)])
        assert program.subclasses["app.mod.Base"] == {"app.mod.Child"}
        overrides = program.overrides("app.mod.Base", "run")
        assert [f.qualname for f in overrides] \
            == ["app.mod.Child.run"]

    def test_attr_types_from_init_params(self, app):
        write_package(app, {
            "__init__.py": "",
            "a.py": """
                class Engine:
                    def spin(self) -> None: ...
            """,
            "b.py": """
                from app.a import Engine

                class Car:
                    def __init__(self, engine: Engine) -> None:
                        self.engine = engine
            """,
        })
        program = load_program([str(app)])
        cls = program.lookup_class("app.b.Car")
        assert cls.attr_types["engine"] == "Engine"
        assert program.resolve_type("app.b", "Engine") == "app.a.Engine"

    def test_mutable_globals_detected(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                CACHE = {}
                NAMES = []
                LIMIT = 8
            """,
        })
        program = load_program([str(app)])
        mod = program.modules["app.mod"]
        assert "CACHE" in mod.mutable_globals
        assert "NAMES" in mod.mutable_globals
        assert "LIMIT" not in mod.mutable_globals


class TestCallGraph:
    def test_direct_and_method_edges(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                class Worker:
                    def step(self) -> None:
                        self.cleanup()

                    def cleanup(self) -> None: ...

                def drive(w: Worker) -> None:
                    w.step()
            """,
        })
        program = load_program([str(app)])
        graph = build_callgraph(program)
        drive_callees = {s.callee for s in graph.callees("app.mod.drive")}
        assert "app.mod.Worker.step" in drive_callees
        step_callees = {s.callee
                        for s in graph.callees("app.mod.Worker.step")}
        assert "app.mod.Worker.cleanup" in step_callees

    def test_virtual_expansion_over_factory_return(self, app):
        write_package(app, {
            "__init__.py": "",
            "stages.py": """
                class Stage:
                    def run(self) -> None:
                        raise NotImplementedError

                class AStage(Stage):
                    def run(self) -> None: ...

                class BStage(Stage):
                    def run(self) -> None: ...

                def create(name: str) -> Stage:
                    raise KeyError(name)
            """,
            "pipe.py": """
                from app.stages import create

                def main() -> None:
                    create("a").run()
            """,
        })
        program = load_program([str(app)])
        graph = build_callgraph(program)
        callees = {s.callee for s in graph.callees("app.pipe.main")}
        # the factory's return annotation types the receiver, and the
        # base-class call fans out to every override
        assert "app.stages.AStage.run" in callees
        assert "app.stages.BStage.run" in callees

    def test_function_reference_edges(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                def worker(item: int) -> int:
                    return item + 1

                def dispatch(items) -> list:
                    return list(map(worker, items))
            """,
        })
        program = load_program([str(app)])
        graph = build_callgraph(program)
        refs = [s for s in graph.callees("app.mod.dispatch")
                if s.is_reference]
        assert any(s.callee == "app.mod.worker" for s in refs)

    def test_reachability_and_stop_modules(self, app):
        write_package(app, {
            "__init__.py": "",
            "obs/__init__.py": "",
            "obs/log.py": """
                def emit() -> None:
                    fmt()

                def fmt() -> str:
                    return ""
            """,
            "mod.py": """
                from app.obs.log import emit

                def top() -> None:
                    mid()

                def mid() -> None:
                    emit()
            """,
        })
        program = load_program([str(app)])
        graph = build_callgraph(program)
        closure = graph.reachable(["app.mod.top"])
        assert "app.obs.log.fmt" in closure
        stopped = graph.reachable(["app.mod.top"],
                                  stop_modules=("app.obs",))
        # the stop module's entry is included but not descended into
        assert "app.obs.log.emit" in stopped
        assert "app.obs.log.fmt" not in stopped

    def test_nested_function_edge(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                def outer() -> None:
                    def helper() -> None:
                        leaf()
                    helper()

                def leaf() -> None: ...
            """,
        })
        program = load_program([str(app)])
        graph = build_callgraph(program)
        closure = graph.reachable(["app.mod.outer"])
        assert "app.mod.outer.<locals>.helper" in closure
        assert "app.mod.leaf" in closure


class TestEnclosingSymbol:
    def test_innermost_function_wins(self, app):
        write_package(app, {
            "__init__.py": "",
            "mod.py": """
                def outer() -> None:
                    def inner() -> None:
                        x = 1
                    inner()

                TOP = 1
            """,
        })
        program = load_program([str(app)])
        ctx = build_context(program)
        # line 3 is inside inner()
        assert enclosing_symbol(ctx, "app.mod", 3) \
            == "app.mod.outer.<locals>.inner"
        # the module-level assignment maps to the module itself
        assert enclosing_symbol(ctx, "app.mod", 6) == "app.mod"
