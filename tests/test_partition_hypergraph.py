"""Unit tests for repro.partition.hypergraph."""

import numpy as np
import pytest

from repro.partition.hypergraph import FREE, Hypergraph


class TestConstruction:
    def test_basic(self):
        g = Hypergraph(4, [[0, 1], [1, 2, 3]])
        assert g.num_vertices == 4
        assert g.num_nets == 2
        assert g.nets[1] == [1, 2, 3]

    def test_duplicate_pins_removed(self):
        g = Hypergraph(3, [[0, 1, 1, 0]])
        assert g.nets[0] == [0, 1]

    def test_pin_out_of_range(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 5]])

    def test_default_weights(self):
        g = Hypergraph(3, [[0, 1]])
        assert g.net_weights == [1.0]
        assert np.allclose(g.vertex_weights, 1.0)
        assert np.all(g.fixed == FREE)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], net_weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], vertex_weights=[1.0])

    def test_free_weight_excludes_fixed(self):
        g = Hypergraph(3, [[0, 1]], vertex_weights=[1.0, 2.0, 4.0],
                       fixed=[FREE, 0, FREE])
        assert g.free_weight == pytest.approx(5.0)


class TestIncidence:
    def test_vertex_nets(self):
        g = Hypergraph(4, [[0, 1], [1, 2], [2, 3]])
        assert g.vertex_nets(1) == [0, 1]
        assert g.vertex_nets(3) == [2]
        assert g.vertex_nets(0) == [0]

    def test_neighbors_scored_heavy_edge(self):
        # vertex 0 shares a 2-pin net with 1 (score 1) and a 3-pin net
        # with 1 and 2 (score 0.5 each)
        g = Hypergraph(3, [[0, 1], [0, 1, 2]])
        scores = g.neighbors_scored(0)
        assert scores[1] == pytest.approx(1.5)
        assert scores[2] == pytest.approx(0.5)

    def test_neighbors_scored_respects_weights(self):
        g = Hypergraph(2, [[0, 1]], net_weights=[3.0])
        assert g.neighbors_scored(0)[1] == pytest.approx(3.0)


class TestContract:
    def test_merge_two(self):
        g = Hypergraph(4, [[0, 1], [1, 2], [2, 3]],
                       vertex_weights=[1, 2, 3, 4])
        match = np.array([0, 0, 2, 3])
        coarse, vmap = g.contract(match)
        assert coarse.num_vertices == 3
        assert vmap[0] == vmap[1]
        merged = vmap[0]
        assert coarse.vertex_weights[merged] == pytest.approx(3.0)

    def test_internal_net_dropped(self):
        g = Hypergraph(2, [[0, 1]])
        coarse, _ = g.contract(np.array([0, 0]))
        assert coarse.num_nets == 0

    def test_parallel_nets_merged_with_summed_weight(self):
        g = Hypergraph(4, [[0, 2], [1, 3]], net_weights=[2.0, 5.0])
        # merge 0+1 and 2+3: both nets become the same coarse net
        coarse, _ = g.contract(np.array([0, 0, 2, 2]))
        assert coarse.num_nets == 1
        assert coarse.net_weights[0] == pytest.approx(7.0)

    def test_fixed_propagates(self):
        g = Hypergraph(3, [[0, 1, 2]], fixed=[0, FREE, FREE])
        coarse, vmap = g.contract(np.array([0, 1, 1]))
        assert coarse.fixed[vmap[0]] == 0
        assert coarse.fixed[vmap[1]] == FREE

    def test_conflicting_fixed_merge_rejected(self):
        g = Hypergraph(2, [[0, 1]], fixed=[0, 1])
        with pytest.raises(ValueError):
            g.contract(np.array([0, 0]))

    def test_pin_multiplicity_collapses(self):
        g = Hypergraph(4, [[0, 1, 2, 3]])
        coarse, vmap = g.contract(np.array([0, 0, 2, 2]))
        assert coarse.num_nets == 1
        assert len(coarse.nets[0]) == 2
