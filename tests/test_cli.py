"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestSuiteCommand:
    def test_lists_profiles(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "ibm01" in out
        assert "ibm18" in out
        assert "12282" in out


class TestPlaceCommand:
    def test_place_suite_circuit(self, capsys, tmp_path):
        out_prefix = str(tmp_path / "result")
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--out", out_prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "placing ibm01@0.01" in out
        assert os.path.exists(out_prefix + ".pl")
        assert os.path.exists(out_prefix + ".nodes")

    def test_place_with_maps(self, capsys):
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--maps"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cell density, layer 0" in out
        assert "area util" in out

    def test_place_bookshelf_input(self, capsys, tmp_path):
        from repro import load_benchmark
        from repro.netlist import bookshelf
        prefix = str(tmp_path / "circ")
        bookshelf.write_bookshelf(prefix, load_benchmark(
            "ibm01", scale=0.01))
        code = main(["place", "--bookshelf", prefix, "--layers", "2"])
        assert code == 0
        assert "placing circ" in capsys.readouterr().out

    def test_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["place"])

    def test_place_with_telemetry_out_and_trace(self, capsys, tmp_path):
        import json

        from repro.obs import read_events, validate_manifest
        prefix = str(tmp_path / "run")
        code = main(["-q", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2", "--trace",
                     "--telemetry-out", prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- spans --" in out
        assert "-- counters --" in out
        manifest = json.load(open(prefix + ".manifest.json"))
        assert validate_manifest(manifest) == []
        assert manifest["trace_path"] == prefix + ".trace.jsonl"
        events = read_events(prefix + ".trace.jsonl")
        assert any(e["type"] == "span" and e["path"] == "place"
                   for e in events)

    def test_place_with_profile(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.obs import validate_manifest
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        prefix = str(tmp_path / "run")
        code = main(["-q", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2", "--profile",
                     "--profile-interval", "0.002",
                     "--telemetry-out", prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- memory --" in out
        assert "-- hot functions --" in out
        # --profile sets the env for worker processes, then restores it
        assert "REPRO_PROFILE" not in os.environ
        manifest = json.load(open(prefix + ".manifest.json"))
        assert validate_manifest(manifest) == []
        resources = manifest["resources"]
        assert resources["peak_rss_bytes"] > 0
        assert resources["samples"] > 0
        # plain --profile keeps tracemalloc off (it costs ~8x; needs
        # the deeper --profile-alloc opt-in)
        assert resources["tracemalloc"]["enabled"] is False
        profile = manifest["profile"]
        assert profile["interval_seconds"] == 0.002
        assert profile["samples"] >= 0
        collapsed = prefix + ".collapsed.txt"
        assert os.path.exists(collapsed)
        # the collapsed file and the manifest agree on sample count
        from repro.obs import ProfileData
        with open(collapsed) as fh:
            data = ProfileData.from_collapsed(fh.read().splitlines())
        assert data.samples == profile["samples"]

    def test_place_with_profile_alloc(self, capsys, tmp_path,
                                      monkeypatch):
        import json

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_PROFILE_ALLOC", raising=False)
        prefix = str(tmp_path / "run")
        code = main(["-q", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2", "--profile",
                     "--profile-alloc", "--telemetry-out", prefix])
        assert code == 0
        assert "REPRO_PROFILE_ALLOC" not in os.environ  # restored
        manifest = json.load(open(prefix + ".manifest.json"))
        trace = manifest["resources"]["tracemalloc"]
        assert trace["enabled"] is True
        assert trace["peak_bytes"] > 0
        assert trace["top_allocations"]

    def test_obs_report_on_profiled_manifest(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        prefix = str(tmp_path / "run")
        assert main(["-q", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2", "--profile",
                     "--telemetry-out", prefix]) == 0
        capsys.readouterr()
        assert main(["obs", "report", prefix + ".manifest.json"]) == 0
        out = capsys.readouterr().out
        assert "== run report: ibm01@0.01 ==" in out
        assert "-- stages --" in out
        assert "-- memory --" in out
        assert "-- hot functions --" in out

    def test_verbose_flag_emits_progress_logs(self, capsys):
        code = main(["-v", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2"])
        assert code == 0
        err = capsys.readouterr().err
        assert "repro.core.placer" in err
        assert "objective state built" in err
        assert "round 1/" in err


class TestSweepCommand:
    def test_sweep_prints_curve(self, capsys):
        code = main(["sweep", "--circuit", "ibm01", "--scale", "0.01",
                     "--points", "3", "--layers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha_ILV" in out
        assert out.count("\n") > 5
        assert "o" in out  # the ascii tradeoff plot

    def test_sweep_per_point_manifests(self, capsys, tmp_path):
        import json

        from repro.obs import validate_manifest
        prefix = str(tmp_path / "sweep")
        code = main(["sweep", "--circuit", "ibm01", "--scale", "0.01",
                     "--points", "2", "--layers", "2",
                     "--telemetry-out", prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-point manifests" in out
        for point in range(2):
            manifest = json.load(
                open(f"{prefix}.point{point}.manifest.json"))
            assert validate_manifest(manifest) == []
            assert manifest["pipeline"] is not None
            assert manifest["trace_path"] == \
                f"{prefix}.point{point}.trace.jsonl"
            assert os.path.exists(manifest["trace_path"])


class TestConfigDumpCommand:
    def test_dump_round_trips(self, capsys, tmp_path):
        import json

        from repro.core.config import PlacementConfig
        out_file = str(tmp_path / "config.json")
        code = main(["config-dump", "--alpha-temp", "1e-5",
                     "--layers", "3", "--out", out_file])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.load(open(out_file))
        assert printed == written
        config = PlacementConfig.from_dict(written)
        assert config.alpha_temp == 1e-5
        assert config.num_layers == 3


class TestPipelineFlags:
    def test_custom_pipeline_spec(self, capsys, tmp_path):
        import json
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"pipeline": [
            {"stage": "quadratic", "options": {"iterations": 1}},
            {"repeat": {"rounds": 1, "stages": [
                {"stage": "moves"}, {"stage": "cellshift"},
                {"stage": "detailed"}]}},
        ]}))
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--pipeline", str(spec_path)])
        assert code == 0
        assert "placing ibm01@0.01" in capsys.readouterr().out

    def test_manifest_records_pipeline(self, capsys, tmp_path):
        import json
        prefix = str(tmp_path / "run")
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--telemetry-out", prefix])
        assert code == 0
        manifest = json.load(open(prefix + ".manifest.json"))
        stages = [e.get("stage") for e in manifest["pipeline"]["pipeline"]]
        assert "global" in stages

    def test_halt_resume_round_trip(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        out_a = str(tmp_path / "resumed")
        out_b = str(tmp_path / "straight")
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--checkpoint-dir", ckpt,
                     "--halt-after", "round1/moves"])
        assert code == 0
        assert "halted after 1:round1/moves" in capsys.readouterr().out
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--checkpoint-dir", ckpt,
                     "--resume", "--out", out_a])
        assert code == 0
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--out", out_b])
        assert code == 0
        with open(out_a + ".pl", "rb") as fa, \
                open(out_b + ".pl", "rb") as fb:
            assert fa.read() == fb.read()

    def test_resume_without_dir_is_usage_error(self, capsys):
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--resume"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_with_empty_dir_reports_checkpoint_error(
            self, capsys, tmp_path):
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--checkpoint-dir",
                     str(tmp_path / "empty"), "--resume"])
        assert code == 1
        assert "checkpoint error" in capsys.readouterr().err
