"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestSuiteCommand:
    def test_lists_profiles(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "ibm01" in out
        assert "ibm18" in out
        assert "12282" in out


class TestPlaceCommand:
    def test_place_suite_circuit(self, capsys, tmp_path):
        out_prefix = str(tmp_path / "result")
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--out", out_prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "placing ibm01@0.01" in out
        assert os.path.exists(out_prefix + ".pl")
        assert os.path.exists(out_prefix + ".nodes")

    def test_place_with_maps(self, capsys):
        code = main(["place", "--circuit", "ibm01", "--scale", "0.01",
                     "--layers", "2", "--maps"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cell density, layer 0" in out
        assert "area util" in out

    def test_place_bookshelf_input(self, capsys, tmp_path):
        from repro import load_benchmark
        from repro.netlist import bookshelf
        prefix = str(tmp_path / "circ")
        bookshelf.write_bookshelf(prefix, load_benchmark(
            "ibm01", scale=0.01))
        code = main(["place", "--bookshelf", prefix, "--layers", "2"])
        assert code == 0
        assert "placing circ" in capsys.readouterr().out

    def test_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["place"])

    def test_place_with_telemetry_out_and_trace(self, capsys, tmp_path):
        import json

        from repro.obs import read_events, validate_manifest
        prefix = str(tmp_path / "run")
        code = main(["-q", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2", "--trace",
                     "--telemetry-out", prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- spans --" in out
        assert "-- counters --" in out
        manifest = json.load(open(prefix + ".manifest.json"))
        assert validate_manifest(manifest) == []
        assert manifest["trace_path"] == prefix + ".trace.jsonl"
        events = read_events(prefix + ".trace.jsonl")
        assert any(e["type"] == "span" and e["path"] == "place"
                   for e in events)

    def test_verbose_flag_emits_progress_logs(self, capsys):
        code = main(["-v", "place", "--circuit", "ibm01", "--scale",
                     "0.01", "--layers", "2"])
        assert code == 0
        err = capsys.readouterr().err
        assert "repro.core.placer" in err
        assert "global placement done" in err


class TestSweepCommand:
    def test_sweep_prints_curve(self, capsys):
        code = main(["sweep", "--circuit", "ibm01", "--scale", "0.01",
                     "--points", "3", "--layers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha_ILV" in out
        assert out.count("\n") > 5
        assert "o" in out  # the ascii tradeoff plot
