"""Integration tests for the full Placer3D pipeline."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.detailed import check_legal
from repro.core.placer import Placer3D
from repro.geometry.chip import ChipGeometry
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.placement import Placement


class TestPipeline:
    def test_produces_legal_placement(self, small_netlist, config):
        result = Placer3D(small_netlist, config).run(check=True)
        check_legal(result.placement)

    def test_result_metrics_match_placement(self, small_netlist, config):
        result = Placer3D(small_netlist, config).run()
        m = compute_net_metrics(result.placement)
        assert result.wirelength == pytest.approx(m.total_wl, rel=1e-9)
        assert result.ilv == m.total_ilv

    def test_beats_random_placement(self, medium_netlist, config):
        result = Placer3D(medium_netlist, config).run()
        rand = Placement.random(medium_netlist, result.placement.chip,
                                seed=0)
        rand_wl = compute_net_metrics(rand).total_wl
        assert result.wirelength < 0.75 * rand_wl

    def test_stage_timings_recorded(self, small_netlist, config):
        result = Placer3D(small_netlist, config).run()
        for stage in ("global", "moves", "cellshift", "detailed"):
            assert stage in result.stage_seconds
        assert result.runtime_seconds > 0

    def test_deterministic(self, small_netlist, config):
        a = Placer3D(small_netlist, config).run()
        b = Placer3D(small_netlist, config).run()
        assert np.array_equal(a.placement.x, b.placement.x)
        assert np.array_equal(a.placement.z, b.placement.z)
        assert a.wirelength == b.wirelength

    def test_thermal_flow_runs_and_is_legal(self, small_netlist,
                                            thermal_config):
        result = Placer3D(small_netlist, thermal_config).run(check=True)
        assert result.ilv >= 0
        # TRR nets were added but are invisible to metrics
        trr = [n for n in small_netlist.nets if n.is_trr]
        assert len(trr) == small_netlist.num_movable

    def test_custom_chip_accepted(self, small_netlist, config):
        chip = ChipGeometry.for_cell_area(
            small_netlist.total_cell_area * 1.5, config.num_layers,
            small_netlist.average_cell_height,
            min_row_width=30 * small_netlist.average_cell_width)
        result = Placer3D(small_netlist, config, chip=chip).run(check=True)
        assert result.placement.chip is chip

    def test_chip_layer_mismatch_rejected(self, small_netlist, config):
        chip = ChipGeometry.for_cell_area(
            small_netlist.total_cell_area, 2,
            small_netlist.average_cell_height)
        with pytest.raises(ValueError):
            Placer3D(small_netlist, config, chip=chip)

    def test_single_layer_2d_mode(self, small_netlist):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=1, seed=0)
        result = Placer3D(small_netlist, config).run(check=True)
        assert result.ilv == 0
        assert np.all(result.placement.z == 0)

    def test_two_layers(self, small_netlist):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        result = Placer3D(small_netlist, config).run(check=True)
        assert set(result.placement.z.tolist()) <= {0, 1}

    def test_legalization_rounds_improve_or_hold(self, small_netlist):
        one = Placer3D(small_netlist,
                       PlacementConfig(alpha_ilv=1e-5, seed=0,
                                       legalization_rounds=1)).run()
        two = Placer3D(small_netlist,
                       PlacementConfig(alpha_ilv=1e-5, seed=0,
                                       legalization_rounds=2)
                       ).run(check=True)
        # round 1 of the 2-round run equals the 1-round run, and the
        # placer keeps the best round, so more rounds can only help
        assert two.objective <= one.objective + 1e-15


class TestTradeoffs:
    def test_ilv_coefficient_tradeoff(self, medium_netlist):
        """The paper's core tradeoff: raising alpha_ilv trades vias for
        wirelength (Figures 3-4)."""
        results = {}
        for alpha in (5e-9, 1e-5, 5e-3):
            cfg = PlacementConfig(alpha_ilv=alpha, num_layers=4, seed=0)
            results[alpha] = Placer3D(medium_netlist, cfg).run()
        assert results[5e-3].ilv < results[5e-9].ilv
        assert results[5e-3].wirelength > 0.85 * results[5e-9].wirelength

    def test_more_layers_shorter_wirelength(self, medium_netlist):
        """Figure 5: more layers shift the curve to shorter wirelength."""
        wl = {}
        for layers in (1, 4):
            cfg = PlacementConfig(alpha_ilv=1e-5, num_layers=layers,
                                  seed=0)
            wl[layers] = Placer3D(medium_netlist, cfg).run().wirelength
        assert wl[4] < wl[1]
