"""Tests for JSON checkpointing."""

import numpy as np
import pytest

from repro.core.trrnets import add_trr_nets
from repro.netlist.jsonio import (
    load_checkpoint,
    netlist_from_dict,
    netlist_to_dict,
    placement_from_dict,
    placement_to_dict,
    save_checkpoint,
)
from repro.netlist.placement import Placement
from tests.conftest import make_chip


class TestNetlistRoundTrip:
    def test_cells_and_nets_preserved(self, tiny_netlist):
        back = netlist_from_dict(netlist_to_dict(tiny_netlist))
        assert back.num_cells == tiny_netlist.num_cells
        assert back.num_nets == tiny_netlist.num_nets
        for a, b in zip(tiny_netlist.cells, back.cells):
            assert (a.name, a.width, a.height) == (b.name, b.width,
                                                   b.height)
        for a, b in zip(tiny_netlist.nets, back.nets):
            assert a.pins == b.pins
            assert a.activity == b.activity

    def test_trr_flags_survive(self, tiny_netlist):
        add_trr_nets(tiny_netlist)
        back = netlist_from_dict(netlist_to_dict(tiny_netlist))
        assert len(back.trr_nets()) == len(tiny_netlist.trr_nets())

    def test_fixed_cells_survive(self, tiny_netlist):
        tiny_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                              fixed_position=(1e-6, 2e-6, 3))
        back = netlist_from_dict(netlist_to_dict(tiny_netlist))
        pad = back.cell("pad")
        assert pad.fixed
        assert pad.fixed_position == (1e-6, 2e-6, 3)

    def test_version_checked(self, tiny_netlist):
        data = netlist_to_dict(tiny_netlist)
        data["version"] = 999
        with pytest.raises(ValueError):
            netlist_from_dict(data)


class TestPlacementRoundTrip:
    def test_coordinates_exact(self, small_netlist):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=5)
        back = placement_from_dict(placement_to_dict(pl), small_netlist)
        assert np.array_equal(back.x, pl.x)
        assert np.array_equal(back.y, pl.y)
        assert np.array_equal(back.z, pl.z)
        assert back.chip.num_layers == chip.num_layers
        assert back.chip.width == pytest.approx(chip.width)


class TestFileCheckpoint:
    def test_save_load_with_placement(self, small_netlist, tmp_path):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=1)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, small_netlist, pl)
        netlist, placement = load_checkpoint(path)
        assert netlist.num_cells == small_netlist.num_cells
        assert placement is not None
        assert np.array_equal(placement.z, pl.z)

    def test_save_load_netlist_only(self, tiny_netlist, tmp_path):
        path = str(tmp_path / "nl.json")
        save_checkpoint(path, tiny_netlist)
        netlist, placement = load_checkpoint(path)
        assert placement is None
        assert netlist.net("n0").degree == 3

    def test_checkpoint_is_placeable(self, small_netlist, tmp_path,
                                     config):
        """A reloaded design runs through the placer unchanged."""
        from repro.core.placer import Placer3D
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, small_netlist)
        netlist, _ = load_checkpoint(path)
        a = Placer3D(small_netlist, config).run()
        b = Placer3D(netlist, config).run()
        assert a.wirelength == pytest.approx(b.wirelength)
        assert a.ilv == b.ilv
