"""Unit tests for the dynamic power model (Eqs. 4-5, 10-15)."""

import numpy as np
import pytest

from repro.geometry.chip import ChipGeometry
from repro.metrics.wirelength import NetMetrics, compute_net_metrics
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig
from repro.thermal.power import PowerModel


@pytest.fixture
def model(tiny_netlist, tech):
    return PowerModel(tiny_netlist, tech)


def manual_metrics(netlist, wl=10e-6, ilv=2) -> NetMetrics:
    m = netlist.num_nets
    return NetMetrics(wl_x=np.full(m, 0.5 * wl), wl_y=np.full(m, 0.5 * wl),
                      ilv=np.full(m, ilv, dtype=np.int64))


class TestNetPower:
    def test_capacitance_formula(self, tiny_netlist, tech, model):
        metrics = manual_metrics(tiny_netlist)
        caps = model.net_capacitances(metrics)
        net = tiny_netlist.nets[0]  # 1 driver, 2 sinks
        expected = (tech.cap_per_wirelength * 10e-6
                    + tech.cap_per_via * 2
                    + tech.input_pin_cap * 2)
        assert caps[0] == pytest.approx(expected)

    def test_power_scales_with_activity(self, tiny_netlist, model):
        metrics = manual_metrics(tiny_netlist)
        powers = model.net_powers(metrics)
        # n3 has activity 0.4, n2 has 0.1, same structure (2-pin nets)
        assert powers[3] == pytest.approx(4 * powers[2])

    def test_power_eq4_prefactor(self, tiny_netlist, tech, model):
        metrics = manual_metrics(tiny_netlist)
        caps = model.net_capacitances(metrics)
        powers = model.net_powers(metrics)
        i = 1
        expected = (0.5 * tech.clock_frequency * tech.vdd ** 2
                    * tiny_netlist.nets[i].activity * caps[i])
        assert powers[i] == pytest.approx(expected)

    def test_zero_geometry_leaves_pin_power(self, tiny_netlist, model):
        metrics = manual_metrics(tiny_netlist, wl=0.0, ilv=0)
        powers = model.net_powers(metrics)
        assert np.all(powers > 0)  # input pin caps remain

    def test_trr_nets_have_zero_power(self, tiny_netlist, tech):
        tiny_netlist.add_net("__trr__c0", [(0, PinRole.SINK)],
                             activity=0.0, is_trr=True)
        model = PowerModel(tiny_netlist, tech)
        metrics = manual_metrics(tiny_netlist)
        assert model.net_powers(metrics)[-1] == 0.0

    def test_total_power_from_placement(self, tiny_netlist, tech, chip4):
        model = PowerModel(tiny_netlist, tech)
        pl = Placement.random(tiny_netlist, chip4, seed=0)
        total = model.total_power(pl)
        metrics = compute_net_metrics(pl)
        assert total == pytest.approx(model.net_powers(metrics).sum())


class TestCellPower:
    def test_attribution_to_drivers(self, tiny_netlist, model):
        metrics = manual_metrics(tiny_netlist)
        powers = model.cell_powers(metrics)
        # c5 drives nothing
        assert powers[5] == 0.0
        # c0 drives only n0
        share = (model.s_wl[0] * metrics.wl[0]
                 + model.s_ilv[0] * metrics.ilv[0]
                 + model.s_input_pins[0])
        assert powers[0] == pytest.approx(share)

    def test_sum_of_cell_powers_equals_total(self, tiny_netlist, model):
        metrics = manual_metrics(tiny_netlist)
        cell_total = model.cell_powers(metrics).sum()
        net_total = model.net_powers(metrics).sum()
        assert cell_total == pytest.approx(net_total)

    def test_floors_raise_small_geometry(self, tiny_netlist, model):
        metrics = manual_metrics(tiny_netlist, wl=0.0, ilv=0)
        floors = model.peko_optimal(alpha_ilv=1e-5)
        floored = model.cell_powers(metrics, floors=floors)
        plain = model.cell_powers(metrics)
        assert np.all(floored >= plain - 1e-30)
        assert floored.sum() > plain.sum()

    def test_floors_do_not_lower_large_geometry(self, tiny_netlist,
                                                model):
        metrics = manual_metrics(tiny_netlist, wl=1.0, ilv=100)
        floors = model.peko_optimal(alpha_ilv=1e-5)
        assert np.allclose(model.cell_powers(metrics, floors=floors),
                           model.cell_powers(metrics))


class TestPekoOptimal:
    def test_formulas(self, tiny_netlist, model):
        alpha = 1e-5
        opt = model.peko_optimal(alpha)
        w = tiny_netlist.average_cell_width
        h = tiny_netlist.average_cell_height
        net = tiny_netlist.nets[0]
        side = (alpha * w * h * net.degree) ** (1.0 / 3.0)
        assert opt.wl_x[0] == pytest.approx(max(side - w, 0.0))
        assert opt.wl_y[0] == pytest.approx(max(side - h, 0.0))
        assert opt.ilv[0] == pytest.approx(max(side / alpha - 1.0, 0.0))

    def test_monotone_in_alpha(self, model):
        lo = model.peko_optimal(1e-6)
        hi = model.peko_optimal(1e-4)
        # costlier vias: optimal uses fewer vias, more wirelength
        assert np.all(hi.ilv <= lo.ilv + 1e-9)
        assert np.all(hi.wl_x >= lo.wl_x - 1e-12)

    def test_non_negative(self, model):
        opt = model.peko_optimal(5e-3)
        for arr in (opt.wl_x, opt.wl_y, opt.ilv):
            assert np.all(arr >= 0)

    def test_invalid_alpha(self, model):
        with pytest.raises(ValueError):
            model.peko_optimal(0.0)
