"""Behavioural tests for terminal propagation in global placement.

Terminal propagation [11] makes each region's partition aware of where
the rest of the chip pulls its nets.  These tests build circuits with
strong external anchors (fixed pads) and check the placer actually
honours the pull — the observable contract of the mechanism.
"""

import numpy as np
import pytest

from repro import PlacementConfig
from repro.core.globalplace import GlobalPlacer
from repro.geometry.chip import ChipGeometry
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement


def anchored_netlist(cells_per_cluster: int = 12):
    """Two cliques, each wired to a pad at an opposite die corner."""
    nl = Netlist("anchored")
    n = 2 * cells_per_cluster
    for i in range(n):
        nl.add_cell(f"c{i}", 2e-6, 1e-6)
    # cliques (chains + extra edges for cohesion)
    for base in (0, cells_per_cluster):
        ids = list(range(base, base + cells_per_cluster))
        for a, b in zip(ids, ids[1:]):
            nl.add_net(f"ch{a}", [(a, PinRole.DRIVER), (b, PinRole.SINK)])
        for a, b in zip(ids, ids[2:]):
            nl.add_net(f"sk{a}", [(a, PinRole.DRIVER), (b, PinRole.SINK)])
    return nl


@pytest.fixture
def chip():
    return ChipGeometry(width=60e-6, height=60e-6, num_layers=2,
                        row_height=1e-6, row_pitch=1.25e-6)


class TestPadPull:
    def test_clusters_follow_their_pads(self, chip):
        nl = anchored_netlist()
        left = nl.add_cell("pad_left", 1e-6, 1e-6, fixed=True,
                           fixed_position=(0.0, 30e-6, 0))
        right = nl.add_cell("pad_right", 1e-6, 1e-6, fixed=True,
                            fixed_position=(60e-6, 30e-6, 0))
        # strongly wire cluster 0 to the left pad, cluster 1 to the right
        for i in range(0, 12, 2):
            nl.add_net(f"pl{i}", [(left.id, PinRole.DRIVER),
                                  (i, PinRole.SINK)])
        for i in range(12, 24, 2):
            nl.add_net(f"pr{i}", [(right.id, PinRole.DRIVER),
                                  (i, PinRole.SINK)])
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        pl = Placement.at_center(nl, chip)
        GlobalPlacer(pl, config).run()
        cluster0_x = float(pl.x[0:12].mean())
        cluster1_x = float(pl.x[12:24].mean())
        assert cluster0_x < cluster1_x
        assert cluster0_x < 0.5 * chip.width
        assert cluster1_x > 0.5 * chip.width

    def test_without_pads_clusters_still_separate(self, chip):
        """Partitioning works without IO information (the paper's §1
        argument for choosing it) — the two cliques must not be
        interleaved even with no anchors at all."""
        nl = anchored_netlist()
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=2, seed=0)
        pl = Placement.at_center(nl, chip)
        GlobalPlacer(pl, config).run()
        c0 = np.stack([pl.x[0:12], pl.y[0:12]])
        c1 = np.stack([pl.x[12:24], pl.y[12:24]])
        centroid_gap = np.linalg.norm(c0.mean(axis=1) - c1.mean(axis=1))
        spread0 = np.linalg.norm(c0 - c0.mean(axis=1, keepdims=True),
                                 axis=0).mean()
        assert centroid_gap > spread0

    def test_vertical_anchor_pulls_down(self, chip):
        """A bottom-layer pad should drag its net's cells toward
        layer 0 through z-direction terminal propagation."""
        nl = anchored_netlist()
        anchor = nl.add_cell("pad_bottom", 1e-6, 1e-6, fixed=True,
                             fixed_position=(30e-6, 30e-6, 0))
        for i in range(0, 12):
            nl.add_net(f"pb{i}", [(anchor.id, PinRole.DRIVER),
                                  (i, PinRole.SINK)])
        config = PlacementConfig(alpha_ilv=5e-3,  # costly vias: z first
                                 num_layers=2, seed=0)
        pl = Placement.at_center(nl, chip)
        GlobalPlacer(pl, config).run()
        anchored_mean_z = float(pl.z[0:12].mean())
        free_mean_z = float(pl.z[12:24].mean())
        assert anchored_mean_z <= free_mean_z
