"""Tests for run-to-run diffing (``repro.obs.diffing`` + CLI).

Covers metric extraction from every accepted document shape, the
per-family threshold gating, missing-metric ``n/a`` behaviour, a
golden render of the diff table, and the ``repro obs diff`` exit-code
contract (0 clean / 1 regression / 2 unreadable input).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.diffing import (DiffThresholds, MetricDelta,
                               diff_documents, diff_files,
                               extract_metrics, has_regressions,
                               render_diff)


def _manifest(wall=2.0, objective=100.0, rss=None, stages=None):
    doc = {
        "kind": "repro.placement.run",
        "result": {"wall_seconds": wall, "objective": objective,
                   "wirelength": 500.0, "ilv": 40,
                   "peak_temperature": 355.0},
    }
    if rss is not None:
        doc["resources"] = {"peak_rss_bytes": rss}
    if stages is not None:
        doc["stages"] = stages
    return doc


class TestExtractMetrics:
    def test_manifest_result_section(self):
        metrics = extract_metrics(_manifest())
        assert metrics["wall_seconds"] == 2.0
        assert metrics["objective"] == 100.0
        assert metrics["wirelength"] == 500.0
        assert metrics["ilv"] == 40.0
        assert metrics["peak_temperature"] == 355.0

    def test_raw_telemetry_snapshot(self):
        metrics = extract_metrics({
            "spans": {}, "wall_seconds": 1.5,
            "gauges": {"resources/peak_rss_bytes": 4096.0}})
        assert metrics == {"wall_seconds": 1.5,
                           "peak_rss_bytes": 4096.0}

    def test_resources_section_wins_over_gauges(self):
        doc = _manifest(rss=8192.0)
        doc["gauges"] = {"resources/peak_rss_bytes": 1.0}
        assert extract_metrics(doc)["peak_rss_bytes"] == 8192.0

    def test_zero_rss_is_skipped(self):
        # peak_rss_bytes == 0 means "platform could not measure"
        metrics = extract_metrics(_manifest(rss=0))
        assert "peak_rss_bytes" not in metrics

    def test_top_level_stage_rows_only(self):
        stages = [{"path": "global", "seconds": 1.2},
                  {"path": "global/level0", "seconds": 0.4},
                  {"path": "legalize", "seconds": 0.1},
                  "garbage"]
        metrics = extract_metrics(_manifest(stages=stages))
        assert metrics["stage/global"] == 1.2
        assert metrics["stage/legalize"] == 0.1
        assert "stage/global/level0" not in metrics

    def test_non_numeric_values_ignored(self):
        metrics = extract_metrics({"result": {"wall_seconds": "fast",
                                              "objective": True}})
        assert metrics == {}


class TestDiffDocuments:
    def test_within_budget_not_regressed(self):
        deltas = diff_documents(_manifest(wall=2.0),
                                _manifest(wall=2.1))
        wall = next(d for d in deltas if d.name == "wall_seconds")
        assert wall.pct == pytest.approx(5.0)
        assert wall.regressed is False
        assert not has_regressions(deltas)

    def test_wall_regression_over_budget(self):
        deltas = diff_documents(_manifest(wall=2.0),
                                _manifest(wall=2.5))
        wall = next(d for d in deltas if d.name == "wall_seconds")
        assert wall.pct == pytest.approx(25.0)
        assert wall.regressed is True
        assert has_regressions(deltas)

    def test_quality_budget_is_tight(self):
        deltas = diff_documents(_manifest(objective=100.0),
                                _manifest(objective=102.0))
        obj = next(d for d in deltas if d.name == "objective")
        assert obj.regressed is True  # +2% > 1% quality budget

    def test_improvement_never_regresses(self):
        deltas = diff_documents(_manifest(wall=3.0),
                                _manifest(wall=1.0))
        assert not has_regressions(deltas)

    def test_custom_thresholds(self):
        thresholds = DiffThresholds(wall_pct=50.0)
        deltas = diff_documents(_manifest(wall=2.0),
                                _manifest(wall=2.5), thresholds)
        assert not has_regressions(deltas)

    def test_missing_metric_is_na_not_regression(self):
        before = _manifest()          # no resources section
        after = _manifest(rss=4096.0)
        deltas = diff_documents(before, after)
        rss = next(d for d in deltas if d.name == "peak_rss_bytes")
        assert rss.before is None and rss.after == 4096.0
        assert rss.pct is None and rss.regressed is False

    def test_stage_rows_are_informational(self):
        stages = [{"path": "global", "seconds": 1.0}]
        before = _manifest(stages=stages)
        after = _manifest(stages=[{"path": "global", "seconds": 9.0}])
        deltas = diff_documents(before, after)
        stage = next(d for d in deltas if d.name == "stage/global")
        assert stage.threshold_pct is None
        assert stage.regressed is False  # 9x slower but not gated

    def test_gated_metrics_listed_first_no_duplicates(self):
        stages = [{"path": "anneal", "seconds": 0.3}]
        deltas = diff_documents(_manifest(stages=stages),
                                _manifest(stages=stages))
        names = [d.name for d in deltas]
        assert len(names) == len(set(names))
        assert names.index("wall_seconds") < names.index("stage/anneal")


class TestRenderDiff:
    def test_golden_table(self):
        deltas = [
            MetricDelta(name="wall_seconds", before=2.0, after=2.5,
                        pct=25.0, threshold_pct=10.0, regressed=True),
            MetricDelta(name="peak_rss_bytes", before=None,
                        after=4096.0, pct=None, threshold_pct=10.0,
                        regressed=False),
            MetricDelta(name="stage/global", before=1.0, after=1.0,
                        pct=0.0, threshold_pct=None, regressed=False),
        ]
        text = render_diff(deltas, label_a="a.json", label_b="b.json")
        assert text == "\n".join([
            "metric                          a.json        b.json"
            "     delta    budget  verdict",
            "wall_seconds                         2           2.5"
            "    +25.0%       10%  REGRESSED",
            "peak_rss_bytes                     n/a          4096"
            "       n/a       10%  ok",
            "stage/global                         1             1"
            "     +0.0%         -  info",
            "REGRESSION: wall_seconds exceeded budget",
        ])

    def test_clean_verdict_line(self):
        text = render_diff([])
        assert text.endswith("no regressions within budget")


class TestDiffFiles:
    def test_loads_and_compares(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_manifest(wall=1.0)))
        b.write_text(json.dumps(_manifest(wall=2.0)))
        deltas = diff_files(a, b)
        assert has_regressions(deltas)

    def test_rejects_non_object(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text("[1, 2]")
        with pytest.raises(ValueError):
            diff_files(a, a)


class TestObsDiffCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_diff_exits_zero(self, capsys, tmp_path):
        a = self._write(tmp_path, "a.json", _manifest())
        b = self._write(tmp_path, "b.json", _manifest())
        assert main(["obs", "diff", a, b]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, capsys, tmp_path):
        a = self._write(tmp_path, "a.json", _manifest(wall=2.0))
        b = self._write(tmp_path, "b.json", _manifest(wall=2.5))
        assert main(["obs", "diff", a, b]) == 1
        assert "REGRESSION: wall_seconds" in capsys.readouterr().out

    def test_custom_wall_budget_flag(self, tmp_path):
        a = self._write(tmp_path, "a.json", _manifest(wall=2.0))
        b = self._write(tmp_path, "b.json", _manifest(wall=2.5))
        assert main(["obs", "diff", "--wall-pct", "50", a, b]) == 0

    def test_unreadable_input_exits_two(self, capsys, tmp_path):
        a = self._write(tmp_path, "a.json", _manifest())
        assert main(["obs", "diff", a,
                     str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_object_input_exits_two(self, capsys, tmp_path):
        a = self._write(tmp_path, "a.json", _manifest())
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["obs", "diff", a, str(bad)]) == 2
        assert "expected a JSON object" in capsys.readouterr().err
