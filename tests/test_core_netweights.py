"""Unit tests for thermal net weighting (Eq. 8) and TRR nets (Eq. 12)."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.netweights import compute_net_weights
from repro.core.trrnets import TRR_PREFIX, add_trr_nets, compute_trr_weights
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from tests.conftest import make_chip


@pytest.fixture
def setup(small_netlist, thermal_config):
    chip = make_chip(small_netlist)
    pl = Placement.random(small_netlist, chip, seed=2)
    pm = PowerModel(small_netlist, thermal_config.tech)
    return pl, pm


class TestNetWeights:
    def test_all_ones_when_thermal_off(self, setup, config):
        pl, pm = setup
        w = compute_net_weights(pl, config, pm)
        assert np.all(w.lateral == 1.0)
        assert np.all(w.vertical == 1.0)

    def test_all_ones_when_mechanism_disabled(self, setup):
        pl, pm = setup
        cfg = PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-4,
                              use_thermal_net_weights=False)
        w = compute_net_weights(pl, cfg, pm)
        assert np.all(w.lateral == 1.0)

    def test_weights_at_least_one(self, setup, thermal_config):
        pl, pm = setup
        w = compute_net_weights(pl, thermal_config, pm)
        assert np.all(w.lateral >= 1.0)
        assert np.all(w.vertical >= 1.0)
        assert w.lateral.max() > 1.0

    def test_eq8_formula(self, setup, thermal_config):
        pl, pm = setup
        from repro.thermal.resistance import ResistanceModel
        rm = ResistanceModel(pl.chip, thermal_config.tech)
        w = compute_net_weights(pl, thermal_config, pm, rm)
        nl = pl.netlist
        net = nl.nets[0]
        r_net = sum(
            rm.cell_resistance(float(pl.x[d]), float(pl.y[d]),
                               int(pl.z[d]), float(nl.areas[d]))
            for d in net.driver_ids)
        at = thermal_config.alpha_temp
        assert w.lateral[0] == pytest.approx(
            1.0 + at * r_net * pm.s_wl[0])
        assert w.vertical[0] == pytest.approx(
            1.0 + at * r_net * pm.s_ilv[0] / thermal_config.alpha_ilv)

    def test_higher_driver_layer_higher_weight(self, setup,
                                               thermal_config):
        pl, pm = setup
        nl = pl.netlist
        net = nl.nets[0]
        driver = net.driver_ids[0]
        pl.z[driver] = 0
        low = compute_net_weights(pl, thermal_config, pm)
        pl.z[driver] = 3
        high = compute_net_weights(pl, thermal_config, pm)
        assert high.lateral[0] > low.lateral[0]

    def test_scales_with_alpha_temp(self, setup):
        pl, pm = setup
        w1 = compute_net_weights(
            pl, PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-5), pm)
        w2 = compute_net_weights(
            pl, PlacementConfig(alpha_ilv=1e-5, alpha_temp=2e-5), pm)
        excess1 = w1.lateral - 1.0
        excess2 = w2.lateral - 1.0
        assert np.allclose(excess2, 2 * excess1, rtol=1e-9)


class TestTrrNets:
    def test_one_per_movable_cell(self, small_netlist):
        mapping = add_trr_nets(small_netlist)
        assert len(mapping) == small_netlist.num_movable
        for cid, nid in mapping.items():
            net = small_netlist.nets[nid]
            assert net.is_trr
            assert net.pins[0][0] == cid
            assert net.name.startswith(TRR_PREFIX)

    def test_idempotent(self, small_netlist):
        first = add_trr_nets(small_netlist)
        count = small_netlist.num_nets
        second = add_trr_nets(small_netlist)
        assert small_netlist.num_nets == count
        assert first == second

    def test_fixed_cells_skipped(self, small_netlist):
        small_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                               fixed_position=(0.0, 0.0, 0))
        mapping = add_trr_nets(small_netlist)
        assert small_netlist.cell("pad").id not in mapping


class TestTrrWeights:
    def test_zero_when_disabled(self, setup, config):
        pl, pm = setup
        assert np.all(compute_trr_weights(pl, config, pm) == 0.0)
        cfg = PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-4,
                              use_trr_nets=False)
        assert np.all(compute_trr_weights(pl, cfg, pm) == 0.0)

    def test_positive_for_driving_cells(self, setup, thermal_config):
        pl, pm = setup
        w = compute_trr_weights(pl, thermal_config, pm)
        assert w.shape == (pl.netlist.num_cells,)
        assert w.max() > 0
        # cells that drive nothing have zero attributed power -> zero
        nondrivers = [c.id for c in pl.netlist.cells
                      if not pl.netlist.driven_nets_of_cell(c.id)]
        if nondrivers:
            assert np.all(w[nondrivers] == 0.0)

    def test_eq12_scaling(self, setup):
        pl, pm = setup
        w1 = compute_trr_weights(
            pl, PlacementConfig(alpha_ilv=1e-5, alpha_temp=1e-5), pm)
        w2 = compute_trr_weights(
            pl, PlacementConfig(alpha_ilv=1e-5, alpha_temp=3e-5), pm)
        assert np.allclose(w2, 3 * w1, rtol=1e-9)

    def test_floors_make_weights_nonzero_at_center(self, small_netlist,
                                                   thermal_config):
        """At the start of placement everything is at the chip centre
        (zero WL/ILV); the PEKO floors must still produce pull."""
        chip = make_chip(small_netlist)
        pl = Placement.at_center(small_netlist, chip)
        pm = PowerModel(small_netlist, thermal_config.tech)
        w = compute_trr_weights(pl, thermal_config, pm)
        assert w.max() > 0
