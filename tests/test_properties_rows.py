"""Property-based tests for the row-segment structure used by detailed
legalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detailed import RowSegments
from repro.geometry.chip import ChipGeometry
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement

WIDTH = 100e-6


def make_segments():
    nl = Netlist("rows")
    nl.add_cell("c0", 1e-6, 1e-6)
    chip = ChipGeometry(width=WIDTH, height=10e-6, num_layers=1,
                        row_height=1e-6, row_pitch=1.25e-6)
    return RowSegments(Placement.at_center(nl, chip))


# widths as fractions of the row, desired positions as fractions
cells = st.lists(
    st.tuples(st.floats(min_value=0.01, max_value=0.2),
              st.floats(min_value=0.0, max_value=1.0)),
    min_size=1, max_size=12)


@given(cells)
@settings(max_examples=60, deadline=None)
def test_greedy_insertion_never_overlaps(specs):
    """Inserting at nearest_slot positions always stays legal."""
    segs = make_segments()
    placed = 0
    for i, (w_frac, x_frac) in enumerate(specs):
        w = w_frac * WIDTH
        slot = segs.nearest_slot(0, 0, x_frac * WIDTH, w)
        if slot is None:
            continue
        segs.insert(0, 0, i, slot, w)
        placed += 1
    starts = segs._starts[(0, 0)]
    ends = segs._ends[(0, 0)]
    assert len(starts) == placed
    for (s1, e1), (s2, e2) in zip(zip(starts, ends),
                                  zip(starts[1:], ends[1:])):
        assert e1 <= s2 + 1e-12
    if starts:
        assert starts[0] >= -1e-12
        assert ends[-1] <= WIDTH + 1e-12


@given(cells, st.floats(min_value=0.01, max_value=0.2),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_push_plan_invariants(specs, new_w_frac, new_x_frac):
    """push_plan keeps order, bounds and disjointness whenever it
    reports success."""
    segs = make_segments()
    next_id = 0
    for w_frac, x_frac in specs:
        w = w_frac * WIDTH
        slot = segs.nearest_slot(0, 0, x_frac * WIDTH, w)
        if slot is not None:
            segs.insert(0, 0, next_id, slot, w)
            next_id += 1
    order_before = segs.occupants(0, 0)
    w_new = new_w_frac * WIDTH
    plan = segs.push_plan(0, 0, new_x_frac * WIDTH, w_new)
    if segs.free_width(0, 0) < w_new - 1e-15:
        assert plan is None
        return
    assert plan is not None
    center, displaced = plan
    segs.apply_push(0, 0, 999, center, w_new, displaced, None)
    starts = segs._starts[(0, 0)]
    ends = segs._ends[(0, 0)]
    # disjoint, in bounds
    for (s1, e1), (s2, e2) in zip(zip(starts, ends),
                                  zip(starts[1:], ends[1:])):
        assert e1 <= s2 + 1e-9
    assert starts[0] >= -1e-9
    assert ends[-1] <= WIDTH + 1e-9
    # relative order of pre-existing cells preserved
    order_after = [c for c in segs.occupants(0, 0) if c != 999]
    assert order_after == order_before


@given(cells)
@settings(max_examples=40, deadline=None)
def test_free_width_accounting(specs):
    segs = make_segments()
    used = 0.0
    for i, (w_frac, x_frac) in enumerate(specs):
        w = w_frac * WIDTH
        slot = segs.nearest_slot(0, 0, x_frac * WIDTH, w)
        if slot is not None:
            segs.insert(0, 0, i, slot, w)
            used += w
    assert segs.free_width(0, 0) == pytest.approx(WIDTH - used)
