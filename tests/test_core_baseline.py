"""Tests for the baseline placers (random and simulated annealing)."""

import numpy as np
import pytest

from repro.core.baseline import (
    AnnealingPlacer,
    AnnealingSchedule,
    random_baseline,
)
from repro.core.detailed import check_legal
from repro.core.placer import Placer3D
from repro.metrics.wirelength import compute_net_metrics


FAST = AnnealingSchedule(moves_per_cell=20, stages=10)


class TestRandomBaseline:
    def test_legal_result(self, small_netlist, config):
        result = random_baseline(small_netlist, config)
        check_legal(result.placement)

    def test_metrics_consistent(self, small_netlist, config):
        result = random_baseline(small_netlist, config)
        m = compute_net_metrics(result.placement)
        assert result.wirelength == pytest.approx(m.total_wl)
        assert result.ilv == m.total_ilv

    def test_deterministic(self, small_netlist, config):
        a = random_baseline(small_netlist, config)
        b = random_baseline(small_netlist, config)
        assert np.array_equal(a.placement.x, b.placement.x)


class TestAnnealingPlacer:
    def test_legal_result(self, small_netlist, config):
        result = AnnealingPlacer(small_netlist, config,
                                 schedule=FAST).run()
        check_legal(result.placement)

    def test_beats_random(self, small_netlist, config):
        rand = random_baseline(small_netlist, config)
        annealed = AnnealingPlacer(small_netlist, config,
                                   schedule=FAST).run()
        assert annealed.objective < rand.objective

    def test_main_placer_beats_annealer(self, medium_netlist, config):
        """The paper's partitioning approach must beat a quick SA."""
        annealed = AnnealingPlacer(medium_netlist, config,
                                   schedule=FAST).run()
        main = Placer3D(medium_netlist, config).run()
        assert main.objective < annealed.objective

    def test_deterministic(self, small_netlist, config):
        a = AnnealingPlacer(small_netlist, config, schedule=FAST).run()
        b = AnnealingPlacer(small_netlist, config, schedule=FAST).run()
        assert np.array_equal(a.placement.x, b.placement.x)

    def test_objective_consistency(self, small_netlist, config):
        placer = AnnealingPlacer(small_netlist, config, schedule=FAST)
        result = placer.run()
        # re-derive the objective from scratch
        from repro.core.objective import ObjectiveState
        fresh = ObjectiveState(result.placement, config)
        assert fresh.total == pytest.approx(result.objective, rel=1e-9)

    def test_thermal_objective_supported(self, small_netlist,
                                         thermal_config):
        result = AnnealingPlacer(small_netlist, thermal_config,
                                 schedule=FAST).run()
        check_legal(result.placement)
