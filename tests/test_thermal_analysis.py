"""Unit tests for placement-level thermal analysis."""

import numpy as np
import pytest

from repro.netlist.net import PinRole
from repro.netlist.placement import Placement
from repro.thermal.analysis import analyze_placement
from repro.thermal.power import PowerModel
from repro.thermal.solver import ThermalSolver
from tests.conftest import make_chip


class TestAnalyzePlacement:
    def test_summary_fields(self, small_placement, tech):
        summary = analyze_placement(small_placement, tech)
        assert summary.total_power > 0
        assert summary.average_temperature > 0
        assert summary.max_temperature >= summary.average_temperature
        assert summary.cell_temperatures.shape == (
            small_placement.netlist.num_cells,)

    def test_reuses_provided_models(self, small_placement, tech):
        pm = PowerModel(small_placement.netlist, tech)
        solver = ThermalSolver(small_placement.chip, tech)
        a = analyze_placement(small_placement, tech, power_model=pm,
                              solver=solver)
        b = analyze_placement(small_placement, tech)
        assert a.average_temperature == pytest.approx(
            b.average_temperature, rel=1e-6)

    def test_compact_placement_is_cooler_than_spread_vias(
            self, small_netlist, tech):
        """Same x/y, all cells on layer 0 vs random layers: the random-z
        placement has more vias (more power) and worse positions."""
        chip = make_chip(small_netlist)
        spread = Placement.random(small_netlist, chip, seed=0)
        stacked = spread.copy()
        stacked.z[:] = 0
        t_spread = analyze_placement(spread, tech).average_temperature
        t_stacked = analyze_placement(stacked, tech).average_temperature
        assert t_stacked < t_spread

    def test_average_excludes_fixed_cells(self, small_netlist, tech):
        small_netlist.add_cell("pad", 1e-6, 1e-6, fixed=True,
                               fixed_position=(0.0, 0.0, 0))
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=2)
        summary = analyze_placement(pl, tech)
        movable = [c.movable for c in small_netlist.cells]
        expected = summary.cell_temperatures[np.array(movable)].mean()
        assert summary.average_temperature == pytest.approx(expected)
