"""Shared fixtures for the test suite.

Everything here is deliberately tiny (tens to a few hundred cells) so
the whole suite stays fast; the benchmark harnesses in ``benchmarks/``
exercise realistic sizes.
"""

from __future__ import annotations

import pytest

from repro.core.config import PlacementConfig
from repro.geometry.chip import ChipGeometry
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig


@pytest.fixture
def tech() -> TechnologyConfig:
    """Default (Table 2) technology."""
    return TechnologyConfig()


@pytest.fixture
def tiny_netlist() -> Netlist:
    """A hand-built 6-cell, 5-net circuit with known structure.

    Nets:
        n0: c0 -> c1, c2     (driver c0)
        n1: c1 -> c2         (driver c1)
        n2: c3 -> c4         (driver c3)
        n3: c4 -> c5         (driver c4)
        n4: c2 -> c3         (driver c2, the only cross-cluster net)
    """
    nl = Netlist("tiny")
    for i in range(6):
        nl.add_cell(f"c{i}", width=2e-6, height=1e-6)
    d, s = PinRole.DRIVER, PinRole.SINK
    nl.add_net("n0", [(0, d), (1, s), (2, s)], activity=0.2)
    nl.add_net("n1", [(1, d), (2, s)], activity=0.3)
    nl.add_net("n2", [(3, d), (4, s)], activity=0.1)
    nl.add_net("n3", [(4, d), (5, s)], activity=0.4)
    nl.add_net("n4", [(2, d), (3, s)], activity=0.25)
    nl.validate()
    return nl


@pytest.fixture
def small_netlist() -> Netlist:
    """A generated ~120-cell netlist (deterministic)."""
    spec = GeneratorSpec(name="small", num_cells=120,
                         total_area=120 * 5e-12, seed=7)
    return generate_netlist(spec)


@pytest.fixture
def medium_netlist() -> Netlist:
    """A generated ~400-cell netlist (deterministic)."""
    spec = GeneratorSpec(name="medium", num_cells=400,
                         total_area=400 * 5e-12, seed=11)
    return generate_netlist(spec)


@pytest.fixture
def chip4(tiny_netlist) -> ChipGeometry:
    """A 4-layer chip sized for the tiny netlist."""
    return ChipGeometry.for_cell_area(
        tiny_netlist.total_cell_area, num_layers=4,
        row_height=tiny_netlist.average_cell_height)


def make_chip(netlist: Netlist, num_layers: int = 4,
              tech: TechnologyConfig = None) -> ChipGeometry:
    """Size a chip for a netlist the way the placer does."""
    tech = tech or TechnologyConfig()
    return ChipGeometry.for_cell_area(
        netlist.total_cell_area, num_layers,
        netlist.average_cell_height,
        whitespace=tech.whitespace,
        inter_row_space=tech.inter_row_space,
        min_row_width=24.0 * netlist.average_cell_width)


@pytest.fixture
def small_placement(small_netlist) -> Placement:
    """Random placement of the small netlist on a 4-layer chip."""
    chip = make_chip(small_netlist)
    return Placement.random(small_netlist, chip, seed=3)


@pytest.fixture
def config() -> PlacementConfig:
    """Default placement configuration with thermal off."""
    return PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0, num_layers=4,
                           seed=0)


@pytest.fixture
def thermal_config() -> PlacementConfig:
    """Placement configuration with thermal placement enabled."""
    return PlacementConfig(alpha_ilv=1e-5, alpha_temp=4e-5, num_layers=4,
                           seed=0)
