"""Unit tests for the finite-volume thermal solver."""

import dataclasses

import numpy as np
import pytest

from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig
from repro.thermal.solver import ThermalSolver


@pytest.fixture
def chip():
    return ChipGeometry(width=100e-6, height=100e-6, num_layers=4,
                        row_height=2e-6, row_pitch=2.5e-6)


@pytest.fixture
def solver(chip, tech):
    return ThermalSolver(chip, tech, nx=8, ny=8)


class TestBasicPhysics:
    def test_zero_power_zero_temperature(self, solver, chip):
        field = solver.solve_powers(np.zeros((8, 8, 4)))
        assert np.allclose(field.active, 0.0)

    def test_temperatures_positive_with_power(self, solver):
        p = np.zeros((8, 8, 4))
        p[4, 4, 2] = 1e-3
        field = solver.solve_powers(p)
        assert field.active.min() >= 0.0
        assert field.max_temperature > 0.0

    def test_linear_in_power(self, solver):
        p = np.zeros((8, 8, 4))
        p[3, 3, 1] = 1e-3
        f1 = solver.solve_powers(p)
        f2 = solver.solve_powers(2 * p)
        assert np.allclose(f2.active, 2 * f1.active, rtol=1e-9)

    def test_superposition(self, solver):
        a = np.zeros((8, 8, 4))
        b = np.zeros((8, 8, 4))
        a[1, 1, 0] = 5e-4
        b[6, 6, 3] = 7e-4
        fa = solver.solve_powers(a)
        fb = solver.solve_powers(b)
        fab = solver.solve_powers(a + b)
        assert np.allclose(fab.active, fa.active + fb.active, rtol=1e-9)

    def test_hotspot_peaks_at_source(self, solver):
        p = np.zeros((8, 8, 4))
        p[2, 5, 3] = 1e-3
        field = solver.solve_powers(p)
        i, j, k = np.unravel_index(field.active.argmax(),
                                   field.active.shape)
        assert (i, j, k) == (2, 5, 3)

    def test_power_near_sink_is_cooler(self, solver):
        """The paper's premise: the same power dissipated closer to the
        heat sink produces lower temperatures."""
        total = 1e-3
        bottom = np.zeros((8, 8, 4))
        bottom[:, :, 0] = total / 64
        top = np.zeros((8, 8, 4))
        top[:, :, 3] = total / 64
        f_bottom = solver.solve_powers(bottom)
        f_top = solver.solve_powers(top)
        assert f_bottom.mean_temperature < f_top.mean_temperature
        # gradient strong enough for the paper's reductions
        assert f_top.mean_temperature > 1.3 * f_bottom.mean_temperature

    def test_uniform_power_matches_1d_estimate(self, chip, tech):
        """Uniform heating on layer 0 ~ film + half-layer conduction."""
        solver = ThermalSolver(chip, tech, nx=4, ny=4)
        q = 1e6  # W/m^2
        p = np.zeros((4, 4, 4))
        p[:, :, 0] = q * chip.footprint_area / 16
        field = solver.solve_powers(p)
        r_area = (1.0 / tech.heat_sink_convection
                  + 0.5 * chip.layer_thickness
                  / tech.thermal_conductivity)
        expected = q * r_area
        assert field.active[:, :, 0].mean() == pytest.approx(expected,
                                                             rel=0.1)


class TestSubstrate:
    def test_substrate_planes_disabled_by_default(self, solver):
        assert solver.n_substrate == 0

    def test_substrate_raises_temperature(self, chip, tech):
        with_sub = dataclasses.replace(tech,
                                       substrate_in_thermal_path=True)
        p = np.zeros((8, 8, 4))
        p[:, :, 0] = 1e-5
        t_no = ThermalSolver(chip, tech, nx=8, ny=8).solve_powers(p)
        t_yes = ThermalSolver(chip, with_sub, nx=8, ny=8,
                              n_substrate=3).solve_powers(p)
        assert t_yes.mean_temperature > t_no.mean_temperature
        assert t_yes.substrate.shape == (8, 8, 3)


class TestPlacementInterface:
    def test_solve_placement(self, chip, tech, tiny_netlist, solver):
        pl = Placement.random(tiny_netlist, chip, seed=1)
        powers = np.full(tiny_netlist.num_cells, 1e-5)
        field = solver.solve_placement(pl, powers)
        temps = field.cell_temperatures(pl)
        assert temps.shape == (6,)
        assert np.all(temps > 0)

    def test_power_shape_checked(self, solver):
        with pytest.raises(ValueError):
            solver.solve_powers(np.zeros((4, 4, 4)))

    def test_cell_powers_shape_checked(self, chip, tech, tiny_netlist,
                                       solver):
        pl = Placement.random(tiny_netlist, chip, seed=1)
        with pytest.raises(ValueError):
            solver.solve_placement(pl, np.zeros(3))

    def test_field_at_clamps(self, solver, chip):
        p = np.zeros((8, 8, 4))
        p[0, 0, 0] = 1e-4
        field = solver.solve_powers(p)
        assert field.at(-1.0, -1.0, 0) == field.active[0, 0, 0]
        assert field.at(1.0, 1.0, 3) == field.active[7, 7, 3]

    def test_invalid_grid(self, chip, tech):
        with pytest.raises(ValueError):
            ThermalSolver(chip, tech, nx=0, ny=4)


class TestEnergyBalance:
    def test_heat_flux_out_equals_power_in(self, chip, tech):
        """Steady state: all injected power leaves through the films."""
        solver = ThermalSolver(chip, tech, nx=6, ny=6)
        p = np.zeros((6, 6, 4))
        p[2, 3, 1] = 2e-3
        field = solver.solve_powers(p)
        dx = chip.width / 6
        dy = chip.height / 6
        # bottom film flux (dominant by far)
        r_film = 1.0 / (tech.heat_sink_convection * dx * dy)
        r_half = (0.5 * chip.layer_thickness
                  / (tech.thermal_conductivity * dx * dy))
        g = 1.0 / (r_film + r_half)
        bottom_flux = float((field.active[:, :, 0] * g).sum())
        assert bottom_flux == pytest.approx(2e-3, rel=0.05)
