"""Preemption/resume: bit-identical placements around cancellation.

The service's cancellation contract: a running job stops cooperatively
at the next stage boundary (the preemption hook fires *after* that
boundary's checkpoint is saved), and a resumed job finishes
bit-identically to a never-interrupted run.  Covered at two levels:
the pipeline hook itself, preempted at every boundary of the default
spec, and the spooled job path, preempted via the ``CANCEL`` sentinel
and requeued through the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import has_checkpoint
from repro.core.config import PlacementConfig
from repro.core.pipeline import (PipelinePreempted,
                                 default_pipeline_spec)
from repro.core.placer import Placer3D
from repro.netlist.bookshelf import read_bookshelf, write_bookshelf
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.service import PlacementEngine
from repro.service.jobstore import JobRequest
from repro.service.worker import execute_job


def _netlist(num_cells: int = 50, seed: int = 17):
    return generate_netlist(GeneratorSpec(
        name="preempt", num_cells=num_cells,
        total_area=num_cells * 5e-12, seed=seed))


def _config(**overrides) -> PlacementConfig:
    base = dict(alpha_ilv=1e-5, num_layers=2, seed=5,
                legalization_rounds=2, refine_passes=1)
    base.update(overrides)
    return PlacementConfig(**base)


class _FireAt:
    """Preemption hook that fires on its n-th poll."""

    def __init__(self, fire_at: int) -> None:
        self.fire_at = fire_at
        self.calls = 0

    def __call__(self) -> bool:
        self.calls += 1
        return self.calls == self.fire_at


class TestPreemptEveryBoundary:
    def test_every_default_boundary_preempts_and_resumes(self,
                                                         tmp_path):
        """Preempt after EACH unit of the default spec and resume."""
        config = _config()
        reference = Placer3D(_netlist(), config).run()
        ref_x = reference.placement.x.copy()
        ref_y = reference.placement.y.copy()
        ref_z = reference.placement.z.copy()
        units = default_pipeline_spec(config).units()
        assert len(units) == 12
        for index, unit in enumerate(units):
            ckpt_dir = tmp_path / f"boundary-{index:02d}"
            hook = _FireAt(index + 1)
            with pytest.raises(PipelinePreempted) as excinfo:
                Placer3D(_netlist(), config).run(
                    checkpoint_dir=ckpt_dir, preempt=hook)
            # the hook fired right after this unit's checkpoint landed
            assert excinfo.value.unit == unit
            assert hook.calls == index + 1
            assert has_checkpoint(ckpt_dir)
            resumed = Placer3D(_netlist(), config).run(
                checkpoint_dir=ckpt_dir, resume=True)
            assert np.array_equal(resumed.placement.x, ref_x), unit
            assert np.array_equal(resumed.placement.y, ref_y), unit
            assert np.array_equal(resumed.placement.z, ref_z), unit
            assert resumed.objective == reference.objective, unit

    def test_preempted_resume_is_not_polled_for_done_units(self,
                                                           tmp_path):
        """A resumed run re-polls only the units it actually runs."""
        config = _config(legalization_rounds=1, refine_passes=0)
        units = default_pipeline_spec(config).units()
        ckpt_dir = tmp_path / "resume-polls"
        with pytest.raises(PipelinePreempted):
            Placer3D(_netlist(40), config).run(
                checkpoint_dir=ckpt_dir, preempt=_FireAt(1))
        hook = _FireAt(len(units) + 1)  # never fires
        Placer3D(_netlist(40), config).run(
            checkpoint_dir=ckpt_dir, resume=True, preempt=hook)
        assert hook.calls == len(units) - 1


class TestServiceJobPreemption:
    def test_cancelled_job_resumes_bit_identically(self, tmp_path):
        config = _config(legalization_rounds=1, refine_passes=0)
        prefix = str(tmp_path / "preempt")
        write_bookshelf(prefix, _netlist(40))
        reference = Placer3D(read_bookshelf(prefix), config).run()

        with PlacementEngine(tmp_path / "jobs", workers=1) as engine:
            request = JobRequest(config=config.to_dict(),
                                 bookshelf=prefix)
            job_id = engine.submit(request)
            # dispatch by hand with the cancel sentinel already up:
            # the worker preempts at the first stage boundary
            engine.store.transition(job_id, "running")
            engine.store.cancel_path(job_id).touch()
            outcome = execute_job(
                {"job_dir": str(engine.store.job_dir(job_id))})
            assert outcome["state"] == "preempted"
            assert has_checkpoint(engine.store.checkpoint_dir(job_id))
            engine.store.transition(job_id, "cancelled",
                                    preemptions=1)

            resumed = engine.resume(job_id)
            assert resumed["state"] == "queued"
            assert not engine.store.cancel_requested(job_id)
            (document,) = engine.wait([job_id], timeout=120)
            assert document["state"] == "done"
            assert document["preemptions"] == 1

            arrays = np.load(
                engine.store.result_dir(job_id) / "placement.npz")
            assert np.array_equal(arrays["x"], reference.placement.x)
            assert np.array_equal(arrays["y"], reference.placement.y)
            assert np.array_equal(arrays["z"], reference.placement.z)
            assert document["result"]["objective"] \
                == pytest.approx(reference.objective)
