"""Unit tests for legality-preserving post-optimization."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.detailed import DetailedLegalizer, check_legal
from repro.core.objective import ObjectiveState
from repro.core.refine import LegalRefiner
from repro.netlist.placement import Placement
from tests.conftest import make_chip


@pytest.fixture
def legal_state(small_netlist, config):
    chip = make_chip(small_netlist)
    pl = Placement.random(small_netlist, chip, seed=8)
    obj = ObjectiveState(pl, config)
    DetailedLegalizer(obj, config).run()
    check_legal(pl)
    return obj


class TestLegalRefiner:
    def test_never_worsens_objective(self, legal_state, config):
        before = legal_state.total
        LegalRefiner(legal_state, config).run()
        assert legal_state.total <= before + 1e-15

    def test_placement_stays_legal(self, legal_state, config):
        LegalRefiner(legal_state, config).run(passes=3)
        check_legal(legal_state.placement)

    def test_objective_caches_consistent(self, legal_state, config):
        LegalRefiner(legal_state, config).run()
        legal_state.check_consistency()

    def test_usually_improves_random_legalization(self, legal_state,
                                                  config):
        before = legal_state.total
        ops = LegalRefiner(legal_state, config).run()
        # a straight-from-random legalization has plenty of slack
        assert ops > 0
        assert legal_state.total < before

    def test_converges_to_fixpoint(self, legal_state, config):
        refiner = LegalRefiner(legal_state, config)
        refiner.run(passes=4)
        # another full pass over the converged placement finds little
        ops = refiner.run(passes=1)
        after = legal_state.total
        refiner.run(passes=1)
        assert legal_state.total <= after

    def test_thermal_objective_refinement(self, small_netlist,
                                          thermal_config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=9)
        obj = ObjectiveState(pl, thermal_config)
        DetailedLegalizer(obj, thermal_config).run()
        before = obj.total
        LegalRefiner(obj, thermal_config).run()
        assert obj.total <= before + 1e-15
        check_legal(pl)
        obj.check_consistency()

    def test_deterministic(self, small_netlist, config):
        results = []
        for _ in range(2):
            chip = make_chip(small_netlist)
            pl = Placement.random(small_netlist, chip, seed=8)
            obj = ObjectiveState(pl, config)
            DetailedLegalizer(obj, config).run()
            LegalRefiner(obj, config).run()
            results.append((pl.x.copy(), pl.z.copy()))
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])


class TestPlacerIntegration:
    def test_refine_stage_recorded(self, small_netlist, config):
        from repro.core.placer import Placer3D
        result = Placer3D(small_netlist, config).run(check=True)
        assert "refine" in result.stage_seconds

    def test_refine_disabled(self, small_netlist):
        from repro.core.placer import Placer3D
        config = PlacementConfig(alpha_ilv=1e-5, seed=0, refine_passes=0)
        result = Placer3D(small_netlist, config).run(check=True)
        assert "refine" not in result.stage_seconds

    def test_refine_does_not_hurt(self, small_netlist):
        from repro.core.placer import Placer3D
        off = Placer3D(small_netlist, PlacementConfig(
            alpha_ilv=1e-5, seed=0, refine_passes=0)).run()
        on = Placer3D(small_netlist, PlacementConfig(
            alpha_ilv=1e-5, seed=0, refine_passes=2)).run(check=True)
        assert on.objective <= off.objective + 1e-15
