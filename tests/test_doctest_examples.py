"""Run the executable examples embedded in docstrings."""

import doctest

import repro.core.placer


def test_placer_docstring_example():
    results = doctest.testmod(repro.core.placer, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0
