"""Integration matrix: the full pipeline across the configuration space.

Parametrized end-to-end runs asserting the invariants that must hold for
*every* configuration: legality, objective-cache consistency, metric
agreement, determinism and layer bounds.
"""

import numpy as np
import pytest

from repro import Placer3D, PlacementConfig
from repro.core.detailed import check_legal
from repro.core.objective import ObjectiveState
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.generator import GeneratorSpec, generate_netlist

CONFIG_MATRIX = [
    # (layers, alpha_ilv, alpha_temp, label)
    (1, 1e-5, 0.0, "2d"),
    (2, 5e-9, 0.0, "cheap-vias"),
    (2, 5e-3, 0.0, "costly-vias"),
    (4, 1e-5, 0.0, "mid"),
    (4, 1e-5, 1e-5, "thermal-mild"),
    (4, 1e-5, 4e-4, "thermal-strong"),
    (4, 1e-5, 1e-5, "trr-only"),
    (4, 1e-5, 1e-5, "weights-only"),
    (6, 1e-5, 0.0, "tall"),
]


def make_config(layers, alpha_ilv, alpha_temp, label):
    return PlacementConfig(
        alpha_ilv=alpha_ilv, alpha_temp=alpha_temp, num_layers=layers,
        seed=0,
        use_trr_nets=(label != "weights-only"),
        use_thermal_net_weights=(label != "trr-only"))


@pytest.fixture(scope="module")
def circuit():
    return GeneratorSpec(name="matrix", num_cells=150,
                         total_area=150 * 5e-12, seed=21)


@pytest.mark.parametrize("layers,alpha_ilv,alpha_temp,label",
                         CONFIG_MATRIX,
                         ids=[c[3] for c in CONFIG_MATRIX])
class TestPipelineMatrix:
    def test_invariants(self, circuit, layers, alpha_ilv, alpha_temp,
                        label):
        netlist = generate_netlist(circuit)
        config = make_config(layers, alpha_ilv, alpha_temp, label)
        result = Placer3D(netlist, config).run()

        # 1. legality
        check_legal(result.placement)

        # 2. reported metrics equal recomputed metrics
        metrics = compute_net_metrics(result.placement)
        assert result.wirelength == pytest.approx(metrics.total_wl,
                                                  rel=1e-9)
        assert result.ilv == metrics.total_ilv

        # 3. objective equals a from-scratch evaluation
        fresh = ObjectiveState(result.placement, config)
        assert fresh.total == pytest.approx(result.objective, rel=1e-9)

        # 4. layers within bounds
        z = result.placement.z
        assert z.min() >= 0 and z.max() < layers

    def test_determinism(self, circuit, layers, alpha_ilv, alpha_temp,
                         label):
        runs = []
        for _ in range(2):
            netlist = generate_netlist(circuit)
            config = make_config(layers, alpha_ilv, alpha_temp, label)
            result = Placer3D(netlist, config).run()
            runs.append((result.placement.x.copy(),
                         result.placement.z.copy(),
                         result.objective))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert np.array_equal(runs[0][1], runs[1][1])
        assert runs[0][2] == runs[1][2]
