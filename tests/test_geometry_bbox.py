"""Unit tests for repro.geometry.bbox."""

import pytest

from repro.geometry.bbox import BBox3D


class TestConstruction:
    def test_basic_attributes(self):
        box = BBox3D(0.0, 2.0, 1.0, 4.0, 0, 3)
        assert box.width == 2.0
        assert box.height == 3.0
        assert box.layers == 4
        assert box.layer_span == 3

    def test_zero_extent_is_valid(self):
        box = BBox3D(1.0, 1.0, 2.0, 2.0, 1, 1)
        assert box.width == 0.0
        assert box.layers == 1
        assert box.layer_span == 0

    @pytest.mark.parametrize("args", [
        (2.0, 1.0, 0.0, 1.0, 0, 0),   # xlo > xhi
        (0.0, 1.0, 2.0, 1.0, 0, 0),   # ylo > yhi
        (0.0, 1.0, 0.0, 1.0, 2, 1),   # zlo > zhi
    ])
    def test_inverted_bounds_rejected(self, args):
        with pytest.raises(ValueError):
            BBox3D(*args)

    def test_frozen(self):
        box = BBox3D(0, 1, 0, 1, 0, 0)
        with pytest.raises(AttributeError):
            box.xlo = 5.0


class TestGeometry:
    def test_area_and_half_perimeter(self):
        box = BBox3D(0.0, 3.0, 0.0, 4.0, 0, 1)
        assert box.area == 12.0
        assert box.half_perimeter == 7.0

    def test_center(self):
        box = BBox3D(0.0, 2.0, 0.0, 6.0, 0, 3)
        assert box.center == (1.0, 3.0, 1.5)

    def test_contains_point_boundaries_inclusive(self):
        box = BBox3D(0.0, 1.0, 0.0, 1.0, 0, 2)
        assert box.contains_point(0.0, 1.0, 0)
        assert box.contains_point(0.5, 0.5, 2)
        assert not box.contains_point(1.5, 0.5, 1)
        assert not box.contains_point(0.5, 0.5, 3)

    def test_clamp_point_inside_is_identity(self):
        box = BBox3D(0.0, 1.0, 0.0, 1.0, 0, 2)
        assert box.clamp_point(0.3, 0.7, 1) == (0.3, 0.7, 1)

    def test_clamp_point_projects_outside_point(self):
        box = BBox3D(0.0, 1.0, 0.0, 1.0, 0, 2)
        assert box.clamp_point(-1.0, 2.0, 5) == (0.0, 1.0, 2)


class TestSetOperations:
    def test_intersects_overlapping(self):
        a = BBox3D(0, 2, 0, 2, 0, 1)
        b = BBox3D(1, 3, 1, 3, 1, 2)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_touching_counts(self):
        a = BBox3D(0, 1, 0, 1, 0, 0)
        b = BBox3D(1, 2, 0, 1, 0, 0)
        assert a.intersects(b)

    def test_disjoint_in_z(self):
        a = BBox3D(0, 1, 0, 1, 0, 1)
        b = BBox3D(0, 1, 0, 1, 2, 3)
        assert not a.intersects(b)

    def test_union_covers_both(self):
        a = BBox3D(0, 1, 0, 1, 0, 0)
        b = BBox3D(2, 3, -1, 0.5, 1, 2)
        u = a.union(b)
        assert u == BBox3D(0, 3, -1, 1, 0, 2)

    def test_expand_to(self):
        a = BBox3D(0, 1, 0, 1, 1, 1)
        e = a.expand_to(2.0, -1.0, 0)
        assert e == BBox3D(0, 2, -1, 1, 0, 1)


class TestOfPoints:
    def test_of_points_single(self):
        box = BBox3D.of_points([(1.0, 2.0, 3)])
        assert box == BBox3D(1.0, 1.0, 2.0, 2.0, 3, 3)

    def test_of_points_many(self):
        pts = [(0.0, 5.0, 2), (3.0, 1.0, 0), (-1.0, 2.0, 1)]
        box = BBox3D.of_points(pts)
        assert box == BBox3D(-1.0, 3.0, 1.0, 5.0, 0, 2)

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox3D.of_points([])

    def test_of_points_matches_half_perimeter_hpwl(self):
        pts = [(0.0, 0.0, 0), (2.0, 3.0, 1), (1.0, 1.0, 0)]
        box = BBox3D.of_points(pts)
        assert box.half_perimeter == pytest.approx(5.0)
