"""End-to-end telemetry test: place with a live recorder and check the
whole observability surface at once.

This is the convergence-audit test the ISSUE asks for: the per-round
Eq. 3 decomposition must be present for every coarse round, the best
objective must be monotone non-increasing, the manifest must validate
against the packaged schema, and the span tree must agree with the
reported wall time.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Placer3D
from repro.core.placer import ROUND_STAGES
from repro.obs import (
    EventSink,
    Recorder,
    build_manifest,
    read_events,
    render,
    validate_manifest,
)

ROUNDS = 2


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    """One instrumented placement of the small netlist, shared."""
    # module-level imports of the fixtures aren't possible; rebuild the
    # conftest small netlist + config inline to allow module scoping
    from repro.core.config import PlacementConfig
    from repro.netlist.generator import GeneratorSpec, generate_netlist

    netlist = generate_netlist(GeneratorSpec(
        name="small", num_cells=120, total_area=120 * 5e-12, seed=7))
    config = dataclasses.replace(
        PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0, num_layers=4,
                        seed=0),
        legalization_rounds=ROUNDS)
    trace_path = str(tmp_path_factory.mktemp("telemetry") / "run.jsonl")
    recorder = Recorder(sink=EventSink(trace_path))
    result = Placer3D(netlist, config, recorder=recorder).run(check=True)
    recorder.close()
    return netlist, config, result, trace_path


class TestConvergenceSeries:
    def test_round_series_has_all_eq3_terms_per_round(self, telemetry_run):
        _, _, result, _ = telemetry_run
        points = result.telemetry.series["placer/round"]
        assert len(points) == ROUNDS
        for point in points:
            for key in ("round", "objective", "best_objective",
                        "wl_term", "ilv_term", "thermal_term"):
                assert key in point
            # Eq. 3: the objective is exactly the sum of its terms
            assert point["objective"] == pytest.approx(
                point["wl_term"] + point["ilv_term"]
                + point["thermal_term"], rel=1e-9)

    def test_best_objective_is_monotone_non_increasing(self, telemetry_run):
        _, _, result, _ = telemetry_run
        best = [p["best_objective"]
                for p in result.telemetry.series["placer/round"]]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best, best[1:]))
        assert best[-1] == pytest.approx(result.objective, rel=1e-9)


class TestSpanTree:
    def test_round_seconds_reports_each_round_separately(self,
                                                        telemetry_run):
        _, _, result, _ = telemetry_run
        assert len(result.round_seconds) == ROUNDS
        for per_round in result.round_seconds:
            for stage in ("moves", "cellshift", "detailed"):
                assert per_round[stage] > 0.0

    def test_flat_stage_seconds_sum_the_rounds(self, telemetry_run):
        _, _, result, _ = telemetry_run
        for stage in ROUND_STAGES:
            if stage not in result.stage_seconds:
                continue
            total = sum(r.get(stage, 0.0) for r in result.round_seconds)
            assert result.stage_seconds[stage] == pytest.approx(total)

    def test_span_total_agrees_with_wall_time(self, telemetry_run):
        _, _, result, _ = telemetry_run
        wall = result.telemetry.wall_seconds
        assert wall == pytest.approx(result.runtime_seconds, rel=0.05)
        stage_sum = sum(result.stage_seconds.values())
        # stages are nested inside the place span, never exceed it
        assert stage_sum <= wall * 1.01

    def test_deep_counters_reach_the_ambient_recorder(self, telemetry_run):
        _, _, result, _ = telemetry_run
        counters = result.telemetry.counters
        assert counters["fm/passes"] > 0
        assert counters["moves/candidates"] > 0
        assert counters["global/bisections"] > 0
        assert counters["detailed/cells_placed"] > 0


class TestTraceAndManifest:
    def test_trace_jsonl_parses_and_carries_spans(self, telemetry_run):
        _, _, _, trace_path = telemetry_run
        events = read_events(trace_path)
        types = {e["type"] for e in events}
        assert "span" in types
        assert "series" in types
        span_paths = {e["path"] for e in events if e["type"] == "span"}
        assert "place" in span_paths
        assert any(p.startswith("place/round1/") for p in span_paths)
        assert any(p.startswith("place/round2/") for p in span_paths)

    def test_manifest_is_schema_valid_and_complete(self, telemetry_run):
        netlist, config, result, trace_path = telemetry_run
        manifest = build_manifest(netlist, config, result,
                                  trace_path=trace_path)
        assert validate_manifest(manifest) == []
        assert len(manifest["rounds"]) == ROUNDS
        assert manifest["result"]["objective"] == pytest.approx(
            result.objective)
        paths = {row["path"] for row in manifest["stages"]}
        assert "place/global" in paths
        assert "place/round2/moves" in paths

    def test_report_renders_spans_counters_and_series(self, telemetry_run):
        _, _, result, _ = telemetry_run
        text = render(result.telemetry, title="small")
        assert "-- spans --" in text
        assert "place" in text
        assert "fm/passes" in text
        assert "placer/round" in text


class TestDefaultPathStillTimed:
    def test_without_recorder_stage_seconds_and_telemetry_exist(
            self, small_netlist, config):
        config = dataclasses.replace(config, legalization_rounds=1)
        result = Placer3D(small_netlist, config).run()
        assert result.runtime_seconds > 0.0
        assert result.stage_seconds["global"] > 0.0
        assert len(result.round_seconds) == 1
        assert result.telemetry is not None
        # the ambient recorder stays null: deep counters are absent
        assert "fm/passes" not in result.telemetry.counters
