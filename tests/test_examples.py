"""Smoke tests: every example script runs end to end.

Each example is executed in-process (imported as a module with patched
``sys.argv``) at a very small scale so the whole file stays fast.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def run_example(name: str, argv, capsys):
    path = os.path.join(EXAMPLES_DIR, name)
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["0.01"], capsys)
        assert "objective (Eq. 3)" in out
        assert "avg / max temperature" in out

    def test_via_budget_explorer(self, capsys):
        out = run_example("via_budget_explorer.py",
                          ["5e11", "0.01"], capsys)
        assert "alpha_ILV" in out
        assert "Chosen point" in out or "No sweep point" in out

    def test_thermal_aware_flow(self, capsys):
        out = run_example("thermal_aware_flow.py",
                          ["1e-5", "0.01"], capsys)
        assert "Power distribution across layers" in out
        assert "avg temperature" in out

    def test_layer_count_study(self, capsys):
        out = run_example("layer_count_study.py", ["0.01"], capsys)
        assert "layers" in out
        assert "vs 2D" in out

    def test_bookshelf_roundtrip(self, capsys, tmp_path):
        out = run_example("bookshelf_roundtrip.py",
                          [str(tmp_path)], capsys)
        assert "Read back" in out
        assert "Wrote" in out

    def test_placer_comparison(self, capsys):
        out = run_example("placer_comparison.py", ["0.008"], capsys)
        assert "recursive bisection" in out
        assert "cell density, layer 0" in out
