"""Unit tests for the tracing/recorder layer (``repro.obs``).

The clock is injected everywhere so every timing assertion here is
exact, not sleep-based.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Stopwatch,
    Tracer,
    get_recorder,
    use_recorder,
)


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTracerNesting:
    def test_repeated_spans_aggregate_calls_and_seconds(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("place"):
            with tracer.span("global"):
                clock.advance(2.0)
            with tracer.span("global"):
                clock.advance(3.0)
            clock.advance(1.0)
        place = tracer.root.child("place")
        node = place.child("global")
        assert node.calls == 2
        assert node.seconds == pytest.approx(5.0)
        # the parent's window includes the children plus its own time
        assert place.calls == 1
        assert place.seconds == pytest.approx(6.0)

    def test_multi_segment_span_opens_nested_nodes(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("global/level3/bisect"):
            clock.advance(1.5)
        paths = {path: node for path, node in tracer.root.walk()}
        assert set(paths) == {"global", "global/level3",
                              "global/level3/bisect"}
        leaf = paths["global/level3/bisect"]
        assert leaf.calls == 1
        assert leaf.seconds == pytest.approx(1.5)
        # intermediate segments were never entered directly...
        assert paths["global/level3"].calls == 0
        # ...but their structural total covers the leaf
        assert paths["global/level3"].total_seconds() == pytest.approx(1.5)
        assert tracer.root.total_seconds() == pytest.approx(1.5)

    def test_current_path_tracks_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current_path() == ""
        with tracer.span("a"):
            with tracer.span("b/c"):
                assert tracer.current_path() == "a/b/c"
            assert tracer.current_path() == "a"
        assert tracer.current_path() == ""

    def test_on_exit_fires_with_full_path(self):
        clock = FakeClock()
        closed = []
        tracer = Tracer(clock=clock,
                        on_exit=lambda p, s: closed.append((p, s)))
        with tracer.span("place"):
            with tracer.span("round1/moves"):
                clock.advance(0.25)
            clock.advance(0.5)
        assert closed == [("place/round1/moves", pytest.approx(0.25)),
                          ("place", pytest.approx(0.75))]

    def test_span_closes_on_exception(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("a"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert tracer.current_path() == ""
        assert tracer.root.child("a").seconds == pytest.approx(1.0)

    def test_as_dict_round_trips_the_tree(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a/b"):
            clock.advance(2.0)
        doc = tracer.root.as_dict()
        assert doc["children"][0]["name"] == "a"
        assert doc["children"][0]["total_seconds"] == pytest.approx(2.0)
        leaf = doc["children"][0]["children"][0]
        assert leaf["name"] == "b"
        assert leaf["calls"] == 1
        assert leaf["seconds"] == pytest.approx(2.0)


class TestStopwatch:
    def test_elapsed_and_restart(self):
        clock = FakeClock()
        watch = Stopwatch(clock=clock)
        clock.advance(4.0)
        assert watch.elapsed() == pytest.approx(4.0)
        watch.restart()
        clock.advance(1.5)
        assert watch.elapsed() == pytest.approx(1.5)


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder(clock=FakeClock())
        rec.count("fm/passes")
        rec.count("fm/passes")
        rec.count("fm/gain", 3.5)
        assert rec.counters["fm/passes"] == 2.0
        assert rec.counters["fm/gain"] == 3.5

    def test_gauges_last_write_wins(self):
        rec = Recorder(clock=FakeClock())
        rec.gauge("density", 1.4)
        rec.gauge("density", 1.1)
        assert rec.gauges["density"] == 1.1

    def test_series_points_get_timestamps(self):
        clock = FakeClock()
        rec = Recorder(clock=clock)
        clock.advance(2.0)
        rec.record("placer/round", round=1, objective=0.5)
        clock.advance(1.0)
        rec.record("placer/round", round=2, objective=0.4)
        points = rec.series["placer/round"]
        assert [p["t"] for p in points] == [2.0, 3.0]
        assert [p["round"] for p in points] == [1.0, 2.0]

    def test_snapshot_is_isolated_from_later_writes(self):
        clock = FakeClock()
        rec = Recorder(clock=clock)
        with rec.span("place"):
            clock.advance(1.0)
        rec.count("c")
        rec.record("s", v=1)
        snap = rec.snapshot()
        rec.count("c")
        rec.record("s", v=2)
        assert snap.counters["c"] == 1.0
        assert len(snap.series["s"]) == 1
        assert snap.wall_seconds == pytest.approx(1.0)
        assert len(rec.series["s"]) == 2

    def test_enabled_flag(self):
        assert Recorder(clock=FakeClock()).enabled is True
        assert NullRecorder().enabled is False


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        rec = NullRecorder()
        with rec.span("a/b/c"):
            pass
        rec.count("x")
        rec.gauge("y", 1.0)
        rec.record("z", v=1.0)
        snap = rec.snapshot()
        assert snap.counters == {}
        assert snap.series == {}
        assert snap.wall_seconds == 0.0


class TestAmbientRecorder:
    def test_default_is_the_null_recorder(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_installs_and_restores(self):
        rec = Recorder(clock=FakeClock())
        with use_recorder(rec):
            assert get_recorder() is rec
            inner = Recorder(clock=FakeClock())
            with use_recorder(inner):
                assert get_recorder() is inner
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_restores_on_exception(self):
        rec = Recorder(clock=FakeClock())
        with pytest.raises(ValueError):
            with use_recorder(rec):
                raise ValueError("boom")
        assert get_recorder() is NULL_RECORDER
