"""Unit tests for text visualization."""

import numpy as np
import pytest

from repro import viz
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from repro.thermal.solver import ThermalSolver
from repro.metrics.wirelength import compute_net_metrics
from tests.conftest import make_chip


@pytest.fixture
def placement(small_netlist):
    chip = make_chip(small_netlist)
    return Placement.random(small_netlist, chip, seed=3)


class TestDensityMap:
    def test_renders_string(self, placement):
        text = viz.density_map(placement, layer=0, nx=20)
        assert isinstance(text, str)
        assert "cell density" in text
        assert "scale:" in text

    def test_empty_layer_is_blank(self, placement):
        placement.z[:] = 0
        text = viz.density_map(placement, layer=3, nx=20)
        body = [line for line in text.splitlines()
                if line.startswith("|")]
        assert all(set(line) <= {"|", " "} for line in body)

    def test_populated_layer_has_marks(self, placement):
        placement.z[:] = 1
        text = viz.density_map(placement, layer=1, nx=20)
        body = "".join(line for line in text.splitlines()
                       if line.startswith("|"))
        assert any(ch not in "| " for ch in body)

    def test_layer_out_of_range(self, placement):
        with pytest.raises(IndexError):
            viz.density_map(placement, layer=99)


class TestTemperatureMap:
    def test_renders_hotspot(self, placement, tech):
        solver = ThermalSolver(placement.chip, tech, nx=8, ny=8)
        powers = np.zeros(placement.netlist.num_cells)
        powers[0] = 1e-3
        field = solver.solve_placement(placement, powers)
        text = viz.temperature_map(field, layer=int(placement.z[0]))
        assert "temperature" in text
        assert "@" in text  # the hotspot is the scale max

    def test_layer_out_of_range(self, placement, tech):
        solver = ThermalSolver(placement.chip, tech, nx=4, ny=4)
        field = solver.solve_placement(
            placement, np.zeros(placement.netlist.num_cells))
        with pytest.raises(IndexError):
            viz.temperature_map(field, layer=99)


class TestLayerSummary:
    def test_without_power(self, placement):
        text = viz.layer_summary(placement)
        lines = text.splitlines()
        assert len(lines) == placement.chip.num_layers + 1
        assert "power" not in lines[0]

    def test_with_power(self, placement, tech):
        pm = PowerModel(placement.netlist, tech)
        powers = pm.cell_powers(compute_net_metrics(placement))
        text = viz.layer_summary(placement, powers)
        assert "mW" in text

    def test_utilization_sums_to_total(self, placement):
        text = viz.layer_summary(placement)
        utils = [float(line.split()[2].rstrip("%"))
                 for line in text.splitlines()[1:]]
        chip = placement.chip
        capacity = (chip.rows_per_layer * chip.width * chip.row_height
                    * chip.num_layers)
        expected = placement.netlist.total_cell_area / capacity * 100
        assert sum(utils) == pytest.approx(expected * chip.num_layers,
                                           rel=0.02)


class TestTradeoffAscii:
    def test_plots_points(self):
        points = [(1.0, 100.0), (2.0, 50.0), (3.0, 25.0)]
        text = viz.tradeoff_ascii(points, width=30, height=8)
        assert text.count("o") == 3

    def test_degenerate_single_point(self):
        text = viz.tradeoff_ascii([(1.0, 1.0)])
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.tradeoff_ascii([])
