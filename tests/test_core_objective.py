"""Unit tests for the incremental objective (Eq. 3)."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.objective import ObjectiveState, _median_interval_point
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.placement import Placement
from repro.thermal.power import PowerModel
from tests.conftest import make_chip


@pytest.fixture
def state(small_netlist, config):
    chip = make_chip(small_netlist)
    pl = Placement.random(small_netlist, chip, seed=1)
    return ObjectiveState(pl, config)


@pytest.fixture
def thermal_state(small_netlist, thermal_config):
    chip = make_chip(small_netlist)
    pl = Placement.random(small_netlist, chip, seed=1)
    return ObjectiveState(pl, thermal_config)


class TestTotal:
    def test_matches_metrics(self, state):
        m = compute_net_metrics(state.placement)
        expected = m.total_wl + state.alpha_ilv * m.total_ilv
        assert state.total == pytest.approx(expected)

    def test_thermal_term_added(self, small_netlist, thermal_config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=1)
        cold = ObjectiveState(
            pl.copy(), PlacementConfig(alpha_ilv=1e-5, alpha_temp=0.0,
                                       num_layers=4))
        hot = ObjectiveState(pl.copy(), thermal_config)
        assert hot.total > cold.total

    def test_wirelength_and_ilv_accessors(self, state):
        m = compute_net_metrics(state.placement)
        assert state.wirelength() == pytest.approx(m.total_wl)
        assert state.total_ilv() == m.total_ilv


class TestEvalMoves:
    def test_delta_matches_rebuild(self, state):
        pl = state.placement
        cid = 5
        move = (cid, float(pl.x[cid]) + 2e-6, float(pl.y[cid]), 0)
        delta = state.eval_moves([move])
        before = state.total
        state.apply_moves([move])
        assert state.total == pytest.approx(before + delta)
        state.check_consistency()

    def test_thermal_delta_matches_rebuild(self, thermal_state):
        pl = thermal_state.placement
        cid = 7
        move = (cid, float(pl.x[cid]), float(pl.y[cid]),
                (int(pl.z[cid]) + 2) % 4)
        before = thermal_state.total
        delta = thermal_state.eval_moves([move])
        thermal_state.apply_moves([move])
        assert thermal_state.total == pytest.approx(before + delta)
        thermal_state.check_consistency()

    def test_eval_does_not_mutate(self, state):
        pl = state.placement
        before_x = pl.x.copy()
        before_total = state.total
        state.eval_moves([(3, 1e-6, 1e-6, 2)])
        assert np.array_equal(pl.x, before_x)
        assert state.total == before_total

    def test_null_move_zero_delta(self, state):
        pl = state.placement
        cid = 2
        move = (cid, float(pl.x[cid]), float(pl.y[cid]), int(pl.z[cid]))
        assert state.eval_moves([move]) == pytest.approx(0.0)

    def test_joint_swap_delta(self, thermal_state):
        pl = thermal_state.placement
        a, b = 4, 9
        moves = [
            (a, float(pl.x[b]), float(pl.y[b]), int(pl.z[b])),
            (b, float(pl.x[a]), float(pl.y[a]), int(pl.z[a])),
        ]
        before = thermal_state.total
        delta = thermal_state.eval_moves(moves)
        thermal_state.apply_moves(moves)
        assert thermal_state.total == pytest.approx(before + delta)
        thermal_state.check_consistency()

    def test_duplicate_cell_rejected(self, state):
        with pytest.raises(ValueError):
            state.eval_moves([(1, 0, 0, 0), (1, 1e-6, 0, 0)])

    def test_move_then_reverse_is_neutral(self, thermal_state):
        pl = thermal_state.placement
        cid = 11
        orig = (cid, float(pl.x[cid]), float(pl.y[cid]), int(pl.z[cid]))
        before = thermal_state.total
        thermal_state.apply_moves([(cid, 2e-6, 3e-6, 1)])
        thermal_state.apply_moves([orig])
        assert thermal_state.total == pytest.approx(before, rel=1e-9)

    def test_many_random_moves_stay_consistent(self, thermal_state):
        rng = np.random.default_rng(0)
        pl = thermal_state.placement
        chip = pl.chip
        n = pl.netlist.num_cells
        for _ in range(100):
            cid = int(rng.integers(0, n))
            move = (cid, rng.uniform(0, chip.width),
                    rng.uniform(0, chip.height),
                    int(rng.integers(0, chip.num_layers)))
            delta = thermal_state.eval_moves([move])
            before = thermal_state.total
            applied = thermal_state.apply_moves([move])
            assert applied == pytest.approx(delta)
            assert thermal_state.total == pytest.approx(before + delta)
        thermal_state.check_consistency()


class TestPowerBookkeeping:
    def test_cell_power_matches_model(self, thermal_state):
        pl = thermal_state.placement
        pm = thermal_state.power_model
        metrics = compute_net_metrics(pl)
        expected = pm.cell_powers(metrics)
        for cid in range(pl.netlist.num_cells):
            assert thermal_state.cell_power(cid) == pytest.approx(
                expected[cid], abs=1e-20)

    def test_power_updates_with_wirelength(self, thermal_state):
        pl = thermal_state.placement
        nl = pl.netlist
        # find a driver cell and stretch one of its nets
        driver = None
        for net in nl.nets:
            if net.driver_ids and len(net.unique_cell_ids) > 1:
                driver = net.driver_ids[0]
                sink = [c for c in net.unique_cell_ids
                        if c != driver][0]
                break
        p_before = thermal_state.cell_power(driver)
        thermal_state.apply_moves([(sink, 0.0, 0.0, 0)])
        thermal_state.apply_moves([
            (sink, pl.chip.width, pl.chip.height, pl.chip.num_layers - 1)])
        assert thermal_state.cell_power(driver) > p_before


class TestOptimalRegion:
    def test_two_pin_net_center(self, tiny_netlist, config, chip4):
        pl = Placement.at_center(tiny_netlist, chip4)
        pl.x[:] = [0, 10e-6, 20e-6, 30e-6, 40e-6, 50e-6]
        pl.y[:] = 0.0
        pl.z[:] = 0
        state = ObjectiveState(pl, config)
        # c5 connects only to c4 via n3: optimal spot is exactly at c4
        ox, oy, oz = state.optimal_region_center(5)
        assert ox == pytest.approx(40e-6)
        assert oz == 0

    def test_isolated_cell_stays(self, tiny_netlist, config, chip4):
        tiny_netlist.add_cell("lonely", 1e-6, 1e-6)
        pl = Placement.at_center(tiny_netlist, chip4)
        state = ObjectiveState(pl, config)
        cid = tiny_netlist.cell("lonely").id
        ox, oy, oz = state.optimal_region_center(cid)
        assert ox == pytest.approx(pl.x[cid])

    def test_median_interval_point(self):
        assert _median_interval_point([0.0], [2.0]) == pytest.approx(1.0)
        assert _median_interval_point([0, 4], [2, 6]) == pytest.approx(3.0)
        # three intervals: the middle one wins
        assert _median_interval_point([0, 10, 20], [1, 11, 21]) == \
            pytest.approx(10.5)
