"""Unit tests for FM refinement."""

import numpy as np
import pytest

from repro.partition.fm import FMRefiner, cut_cost
from repro.partition.hypergraph import FREE, Hypergraph


def two_cliques() -> Hypergraph:
    """Two triangles joined by one bridge net; optimal cut = 1."""
    nets = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]]
    return Hypergraph(6, nets)


class TestCutCost:
    def test_uncut(self):
        g = Hypergraph(4, [[0, 1], [2, 3]])
        assert cut_cost(g, [0, 0, 1, 1]) == 0.0

    def test_cut_with_weights(self):
        g = Hypergraph(4, [[0, 2], [1, 3]], net_weights=[2.0, 5.0])
        assert cut_cost(g, [0, 0, 1, 1]) == pytest.approx(7.0)

    def test_hyperedge_counted_once(self):
        g = Hypergraph(3, [[0, 1, 2]])
        assert cut_cost(g, [0, 1, 1]) == 1.0
        assert cut_cost(g, [0, 0, 0]) == 0.0


class TestRefine:
    def test_finds_optimal_cut_of_cliques(self):
        g = two_cliques()
        parts = np.array([0, 1, 0, 1, 0, 1])  # bad start, cut = 6
        refiner = FMRefiner(g, rng=np.random.default_rng(0))
        cut = refiner.refine(parts)
        assert cut == pytest.approx(1.0)
        assert set(parts[:3]) != set(parts[3:]) or True
        # the two triangles must be separated
        assert parts[0] == parts[1] == parts[2]
        assert parts[3] == parts[4] == parts[5]

    def test_never_worsens_balanced_starts(self):
        rng = np.random.default_rng(3)
        for seed in range(5):
            g = two_cliques()
            parts = rng.permutation([0, 0, 0, 1, 1, 1])
            before = cut_cost(g, parts)
            after = FMRefiner(g, rng=np.random.default_rng(seed)
                              ).refine(parts)
            assert after <= before + 1e-12

    def test_returned_cost_matches_actual(self):
        g = two_cliques()
        parts = np.array([1, 0, 1, 0, 1, 0])
        cut = FMRefiner(g, rng=np.random.default_rng(1)).refine(parts)
        assert cut == pytest.approx(cut_cost(g, parts))

    def test_respects_balance_window(self):
        g = Hypergraph(8, [[i, (i + 1) % 8] for i in range(8)])
        parts = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        refiner = FMRefiner(g, target=0.5, tolerance=0.05,
                            rng=np.random.default_rng(0))
        refiner.refine(parts)
        w0 = (parts == 0).sum()
        assert refiner.lo <= w0 <= refiner.hi

    def test_fixed_vertices_never_move(self):
        g = Hypergraph(4, [[0, 1], [1, 2], [2, 3]], fixed=[0, -1, -1, 1])
        parts = np.array([0, 1, 0, 1])
        FMRefiner(g, rng=np.random.default_rng(0)).refine(parts)
        assert parts[0] == 0
        assert parts[3] == 1

    def test_fixed_vertex_on_wrong_side_rejected(self):
        g = Hypergraph(2, [[0, 1]], fixed=[1, FREE])
        refiner = FMRefiner(g, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            refiner.refine(np.array([0, 1]))

    def test_window_admits_heaviest_vertex(self):
        # one huge vertex: tolerance must widen so FM can still move it
        g = Hypergraph(3, [[0, 1], [1, 2]],
                       vertex_weights=[10.0, 1.0, 1.0])
        refiner = FMRefiner(g, tolerance=0.01,
                            rng=np.random.default_rng(0))
        assert refiner.hi - refiner.lo >= 10.0

    def test_unbalanced_target(self):
        g = Hypergraph(10, [[i, (i + 1) % 10] for i in range(10)])
        parts = np.ones(10, dtype=np.int64)
        parts[0] = 0
        refiner = FMRefiner(g, target=0.3, tolerance=0.05,
                            rng=np.random.default_rng(0))
        refiner.refine(parts)
        w0 = float((parts == 0).sum())
        assert refiner.lo <= w0 <= refiner.hi

    def test_weighted_nets_guide_moves(self):
        # cutting the heavy net must be avoided
        g = Hypergraph(4, [[0, 1], [2, 3], [1, 2]],
                       net_weights=[10.0, 10.0, 1.0])
        parts = np.array([0, 1, 0, 1])  # cuts both heavy nets
        cut = FMRefiner(g, rng=np.random.default_rng(0)).refine(parts)
        assert cut == pytest.approx(1.0)

    def test_invalid_params(self):
        g = two_cliques()
        with pytest.raises(ValueError):
            FMRefiner(g, target=0.0)
        with pytest.raises(ValueError):
            FMRefiner(g, tolerance=-0.1)
