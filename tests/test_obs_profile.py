"""Unit tests for the sampling profiler (``repro.obs.profile``).

The sampled frame and the clock are injectable, so every attribution
assertion here is exact — no sleeps, no real sampler cadence.  One
smoke test exercises the actual daemon thread.
"""

from __future__ import annotations

import sys

import pytest

from repro.obs import ProfileData, SamplingProfiler, Tracer
from repro.obs.profile import (DEFAULT_INTERVAL, frame_label,
                               profile_enabled, stack_of)


def _here():
    """A real frame from a helper (leaf of the captured stack)."""
    return sys._getframe()


class TestFrameLabels:
    def test_label_contains_file_and_function(self):
        label = frame_label(_here())
        assert label.endswith(":_here")
        assert ".py" not in label

    def test_stack_is_outermost_first_and_leaf_survives(self):
        frame = _here()
        stack = stack_of(frame)
        assert stack[-1].endswith(":_here")
        # truncation drops outer frames, never the leaf
        short = stack_of(frame, max_depth=1)
        assert short == (stack[-1],)


class TestProfileEnabled:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False), ("maybe", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert profile_enabled() is expected

    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_enabled() is False


class TestProfileData:
    def test_add_and_merge_accumulate_counts(self):
        a = ProfileData()
        a.add("global", ("m:f", "m:g"), 2)
        a.add("", ("m:h",))
        b = ProfileData()
        b.add("global", ("m:f", "m:g"), 3)
        a.merge(b)
        assert a.samples == 6
        assert a.stacks[("global", ("m:f", "m:g"))] == 5

    def test_hot_functions_self_vs_cumulative(self):
        data = ProfileData()
        data.add("s", ("m:outer", "m:inner"), 4)
        data.add("s", ("m:outer",), 1)
        rows = {r["function"]: r for r in data.hot_functions()}
        assert rows["m:inner"] == {"function": "m:inner", "self": 4,
                                   "cum": 4}
        assert rows["m:outer"] == {"function": "m:outer", "self": 1,
                                   "cum": 5}

    def test_hot_functions_filters_by_span_path(self):
        data = ProfileData()
        data.add("a", ("m:f",), 2)
        data.add("b", ("m:g",), 7)
        rows = data.hot_functions(span_path="b")
        assert [r["function"] for r in rows] == ["m:g"]

    def test_recursive_stack_counts_cumulative_once(self):
        data = ProfileData()
        data.add("", ("m:fib", "m:fib", "m:fib"), 3)
        (row,) = data.hot_functions()
        assert row["cum"] == 3  # not 9: one sample counts once

    def test_collapsed_round_trips_with_span_roots(self):
        data = ProfileData()
        data.add("round1/moves", ("core/moves:f", "obj:g"), 5)
        data.add("", (), 1)
        lines = data.collapsed()
        assert "span:round1;span:moves;core/moves:f;obj:g 5" in lines
        assert "<unknown> 1" in lines
        back = ProfileData.from_collapsed(lines)
        assert back.stacks == data.stacks
        assert back.samples == data.samples

    def test_from_collapsed_rejects_garbage(self):
        with pytest.raises(ValueError):
            ProfileData.from_collapsed(["not a collapsed line"])

    def test_write_collapsed_creates_parents(self, tmp_path):
        data = ProfileData()
        data.add("g", ("m:f",), 1)
        path = tmp_path / "deep" / "stacks.txt"
        data.write_collapsed(str(path))
        assert path.read_text() == "span:g;m:f 1\n"

    def test_span_table_orders_by_sample_count(self):
        data = ProfileData()
        data.add("cold", ("m:f",), 1)
        data.add("hot", ("m:g",), 9)
        table = data.span_table()
        assert [row["span"] for row in table] == ["hot", "cold"]
        assert table[0]["samples"] == 9

    def test_as_dict_shape(self):
        data = ProfileData()
        data.add("g", ("m:f",), 2)
        doc = data.as_dict()
        assert doc["samples"] == 2
        assert doc["distinct_stacks"] == 1
        assert doc["hot_functions"][0]["function"] == "m:f"
        assert doc["spans"][0]["span"] == "g"


class TestSamplingProfiler:
    def test_sample_once_attributes_to_open_span(self):
        tracer = Tracer()
        profiler = SamplingProfiler(tracer=tracer, interval=0.5)
        with tracer.span("global/level0"):
            profiler.sample_once(_here())
        profiler.sample_once(_here())
        paths = profiler.data.span_paths()
        assert set(paths) == {"global/level0", ""}

    def test_interval_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.123")
        assert SamplingProfiler().interval == pytest.approx(0.123)
        monkeypatch.delenv("REPRO_PROFILE_INTERVAL")
        assert SamplingProfiler().interval == DEFAULT_INTERVAL

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_summary_carries_interval_and_wall(self):
        clock_t = [0.0]
        profiler = SamplingProfiler(interval=0.25,
                                    clock=lambda: clock_t[0])
        profiler.sample_once(_here())
        doc = profiler.summary(top=3)
        assert doc["interval_seconds"] == pytest.approx(0.25)
        assert doc["samples"] == 1
        assert doc["wall_seconds"] == 0.0  # never started

    def test_thread_lifecycle_collects_samples(self):
        # real daemon-thread smoke: sample this thread while it works
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            acc = 0.0
            for i in range(200000):
                acc += i * 0.5
        assert acc > 0
        assert profiler.wall_seconds > 0
        # start/stop are idempotent
        profiler.stop()
        assert profiler.data.samples >= 1
