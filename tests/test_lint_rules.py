"""Per-rule fixtures for the domain AST linter (``tools.lint``).

Each rule gets at least one failing fixture and one passing fixture, so
a regression in the checker (a rule silently going dead, or a rule
over-firing) is caught here rather than in CI noise.  The final test
asserts the shipped source tree itself is lint-clean — the same gate CI
runs via ``python -m tools.lint src/repro``.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import (RULES, Violation, check_source, is_kernel_module,
                        lint_paths)


def rules_of(source: str, kernel: bool = False) -> List[str]:
    """Rule ids flagged in a dedented fixture."""
    violations = check_source(textwrap.dedent(source), "fixture.py",
                              kernel=kernel)
    return [v.rule for v in violations]


class TestRPL001ForeignPrivateWrite:
    def test_foreign_write_flagged(self):
        assert rules_of("""
            def poke(state) -> None:
                state._total = 0.0
        """) == ["RPL001"]

    def test_augmented_and_subscript_writes_flagged(self):
        src = """
            def poke(state, i) -> None:
                state._wl[i] += 1.0
                del state._cache
        """
        assert rules_of(src) == ["RPL001", "RPL001"]

    def test_self_and_cls_writes_allowed(self):
        assert rules_of("""
            class S:
                def set(self) -> None:
                    self._total = 0.0

                @classmethod
                def reset(cls) -> None:
                    cls._shared = None
        """) == []

    def test_dunder_write_not_flagged(self):
        assert rules_of("""
            def mark(func) -> None:
                func.__wrapped__ = None
        """) == []


class TestRPL002KernelDtypes:
    def test_missing_dtype_flagged_in_kernel(self):
        assert rules_of("""
            import numpy as np

            def alloc(n: int) -> None:
                a = np.zeros(n)
        """, kernel=True) == ["RPL002"]

    def test_explicit_dtype_passes(self):
        assert rules_of("""
            import numpy as np

            def alloc(n: int) -> None:
                a = np.zeros(n, dtype=np.float64)
                b = np.arange(n, dtype=np.int64)
        """, kernel=True) == []

    def test_like_family_exempt(self):
        assert rules_of("""
            import numpy as np

            def alloc(a) -> None:
                b = np.zeros_like(a)
        """, kernel=True) == []

    def test_non_kernel_module_exempt(self):
        assert rules_of("""
            import numpy as np

            def alloc(n: int) -> None:
                a = np.zeros(n)
        """, kernel=False) == []

    def test_kernel_paths_classified_by_suffix(self):
        assert is_kernel_module("src/repro/core/objective.py")
        assert is_kernel_module("/abs/path/src/repro/thermal/solver.py")
        assert not is_kernel_module("src/repro/netlist/generator.py")


class TestRPL003FloatLiteralEquality:
    def test_eq_against_float_literal_flagged(self):
        assert rules_of("""
            def f(x: float) -> bool:
                return x == 0.0
        """) == ["RPL003"]

    def test_ne_and_negative_literal_flagged(self):
        assert rules_of("""
            def f(x: float) -> bool:
                return x != -1.5
        """) == ["RPL003"]

    def test_int_literal_comparison_allowed(self):
        assert rules_of("""
            def f(x: int) -> bool:
                return x == 0
        """) == []

    def test_ordering_comparison_allowed(self):
        assert rules_of("""
            def f(x: float) -> bool:
                return x > 0.0
        """) == []


class TestRPL004LegacyRandom:
    def test_global_state_call_flagged(self):
        assert rules_of("""
            import numpy as np

            def sample(n: int) -> object:
                return np.random.rand(n)
        """) == ["RPL004"]

    def test_seeded_generator_allowed(self):
        assert rules_of("""
            import numpy as np

            def sample(n: int, seed: int) -> object:
                rng = np.random.default_rng(seed)
                return rng.random(n)
        """) == []


class TestRPL005HotPathLoops:
    def test_loop_inside_hot_path_flagged(self):
        assert rules_of("""
            from repro.analysis import hot_path

            @hot_path
            def kernel(xs) -> float:
                total = 0.0
                for x in xs:
                    total += x
                return total
        """) == ["RPL005"]

    def test_while_inside_hot_path_flagged(self):
        assert rules_of("""
            from repro import analysis

            @analysis.hot_path
            def kernel(n: int) -> int:
                while n > 0:
                    n -= 1
                return n
        """) == ["RPL005"]

    def test_loop_outside_hot_path_allowed(self):
        assert rules_of("""
            def cold(xs) -> float:
                total = 0.0
                for x in xs:
                    total += x
                return total
        """) == []

    def test_nested_plain_function_still_guarded(self):
        # A helper *defined inside* a hot function runs on the hot path.
        assert rules_of("""
            from repro.analysis import hot_path

            @hot_path
            def kernel(xs) -> float:
                def helper() -> float:
                    for x in xs:
                        pass
                    return 0.0
                return helper()
        """) == ["RPL005"]


class TestRPL006BareExcept:
    def test_bare_except_flagged(self):
        assert rules_of("""
            def f() -> None:
                try:
                    pass
                except:
                    pass
        """) == ["RPL006"]

    def test_typed_except_allowed(self):
        assert rules_of("""
            def f() -> None:
                try:
                    pass
                except ValueError:
                    pass
        """) == []


class TestRPL007MutableDefaults:
    def test_literal_mutable_default_flagged(self):
        assert rules_of("""
            def f(items=[]) -> None:
                pass
        """) == ["RPL007"]

    def test_constructor_default_flagged(self):
        assert rules_of("""
            def f(*, table=dict()) -> None:
                pass
        """) == ["RPL007"]

    def test_none_default_allowed(self):
        assert rules_of("""
            def f(items=None) -> None:
                pass
        """) == []


class TestRPL008ReturnAnnotations:
    def test_missing_return_annotation_flagged(self):
        assert rules_of("""
            def f(x: int):
                return x
        """) == ["RPL008"]

    def test_annotated_function_allowed(self):
        assert rules_of("""
            def f(x: int) -> int:
                return x
        """) == []


class TestRPL009RawClockCalls:
    def test_time_perf_counter_flagged(self):
        assert rules_of("""
            import time

            def f() -> float:
                return time.perf_counter()
        """) == ["RPL009"]

    def test_aliased_module_and_from_import_flagged(self):
        src = """
            import time as t
            from time import perf_counter_ns as tick

            def f() -> float:
                return t.perf_counter_ns() + tick()
        """
        assert rules_of(src) == ["RPL009", "RPL009"]

    def test_other_time_functions_allowed(self):
        # time.time() is RPL013's business now; monotonic() is neither
        # a timer (RPL009) nor a wall clock (RPL013)
        assert rules_of("""
            import time

            def f() -> float:
                return time.monotonic()
        """) == []

    def test_obs_modules_exempt(self):
        src = textwrap.dedent("""
            import time

            def f() -> float:
                return time.perf_counter()
        """)
        exempt = check_source(src, "src/repro/obs/trace.py")
        assert [v.rule for v in exempt] == []

    def test_unrelated_perf_counter_name_allowed(self):
        # a local function that merely shares the name is not a clock
        assert rules_of("""
            def perf_counter() -> float:
                return 0.0

            def f() -> float:
                return perf_counter()
        """) == []


class TestRPL013WallClockReads:
    def test_time_time_flagged(self):
        assert rules_of("""
            import time

            def f() -> float:
                return time.time()
        """) == ["RPL013"]

    def test_time_ns_and_aliased_module_flagged(self):
        src = """
            import time as t
            from time import time as now

            def f() -> float:
                return t.time_ns() + now()
        """
        assert rules_of(src) == ["RPL013", "RPL013"]

    def test_datetime_class_methods_flagged(self):
        src = """
            from datetime import datetime, date

            def f() -> str:
                return datetime.now().isoformat() + str(date.today())
        """
        assert rules_of(src) == ["RPL013", "RPL013"]

    def test_datetime_module_path_flagged(self):
        assert rules_of("""
            import datetime

            def f() -> str:
                return datetime.datetime.utcnow().isoformat()
        """) == ["RPL013"]

    def test_obs_modules_exempt(self):
        src = textwrap.dedent("""
            import time

            def f() -> float:
                return time.time()
        """)
        exempt = check_source(src, "src/repro/obs/clock.py")
        assert [v.rule for v in exempt] == []

    def test_datetime_construction_allowed(self):
        # constructing a datetime from explicit values reads no clock
        assert rules_of("""
            from datetime import datetime

            def f() -> datetime:
                return datetime(2007, 6, 4)
        """) == []


class TestRPL010StageInstantiation:
    def test_direct_instantiation_flagged(self):
        assert rules_of("""
            def f() -> None:
                stage = MovesStage(passes=2)
                stage.run(None)
        """) == ["RPL010"]

    def test_attribute_access_instantiation_flagged(self):
        assert rules_of("""
            import repro.core.stages as stages

            def f() -> None:
                stages.RefineStage()
        """) == ["RPL010"]

    def test_registry_factory_allowed(self):
        assert rules_of("""
            from repro.core.stages import create_stage

            def f() -> None:
                create_stage("moves", {"passes": 2})
        """) == []

    def test_non_stage_suffix_names_allowed(self):
        # StageEntry et al. are spec types, not stage classes
        assert rules_of("""
            def f() -> None:
                StageEntry("moves")
                Stage()
        """) == []

    def test_registry_and_runner_modules_exempt(self):
        src = textwrap.dedent("""
            def f() -> None:
                MovesStage(passes=2)
        """)
        for path in ("src/repro/core/stages.py",
                     "src/repro/core/pipeline.py"):
            assert [v.rule for v in check_source(src, path)] == []

    def test_class_definition_not_flagged(self):
        assert rules_of("""
            class MyStage:
                def run(self, ctx) -> None:
                    pass
        """) == []


class TestRPL011ProcessImports:
    def test_multiprocessing_import_flagged(self):
        assert rules_of("""
            import multiprocessing
        """) == ["RPL011"]

    def test_concurrent_futures_import_flagged(self):
        assert rules_of("""
            import concurrent.futures
        """) == ["RPL011"]

    def test_from_import_flagged(self):
        assert rules_of("""
            from concurrent.futures import ProcessPoolExecutor
        """) == ["RPL011"]

    def test_from_multiprocessing_submodule_flagged(self):
        assert rules_of("""
            from multiprocessing import get_context
        """) == ["RPL011"]

    def test_parallel_backend_module_exempt(self):
        src = textwrap.dedent("""
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
        """)
        path = "src/repro/parallel/__init__.py"
        assert [v.rule for v in check_source(src, path)] == []

    def test_unrelated_imports_allowed(self):
        assert rules_of("""
            import threading
            from repro.parallel import create_backend
        """) == []


class TestRPL015SharedMemoryImports:
    def test_from_multiprocessing_flagged(self):
        # RPL011 also fires (a multiprocessing import outside
        # repro.parallel); RPL015 adds the stricter ownership claim
        assert rules_of("""
            from multiprocessing import shared_memory
        """) == ["RPL011", "RPL015"]

    def test_submodule_import_flagged(self):
        assert rules_of("""
            import multiprocessing.shared_memory
        """) == ["RPL011", "RPL015"]

    def test_from_submodule_flagged(self):
        assert rules_of("""
            from multiprocessing.shared_memory import SharedMemory
        """) == ["RPL011", "RPL015"]

    def test_parallel_package_still_flagged(self):
        # RPL011-exempt, but shared_memory belongs to shared.py only
        src = textwrap.dedent("""
            from multiprocessing import shared_memory
        """)
        path = "src/repro/parallel/__init__.py"
        assert [v.rule for v in check_source(src, path)] == ["RPL015"]

    def test_shared_module_exempt(self):
        src = textwrap.dedent("""
            from multiprocessing import shared_memory
            from multiprocessing.shared_memory import SharedMemory
        """)
        path = "src/repro/parallel/shared.py"
        assert [v.rule for v in check_source(src, path)] == []

    def test_plain_multiprocessing_not_flagged_by_rpl015(self):
        assert rules_of("""
            from multiprocessing import get_context
        """) == ["RPL011"]


class TestRPL014SocketImports:
    def test_socket_import_flagged(self):
        assert rules_of("""
            import socket
        """) == ["RPL014"]

    def test_selectors_import_flagged(self):
        assert rules_of("""
            import selectors
        """) == ["RPL014"]

    def test_from_socket_import_flagged(self):
        assert rules_of("""
            from socket import AF_UNIX
        """) == ["RPL014"]

    def test_service_module_exempt(self):
        src = textwrap.dedent("""
            import socket
            import selectors
        """)
        path = "src/repro/service/rpc.py"
        assert [v.rule for v in check_source(src, path)] == []

    def test_waiver_with_reason_accepted(self):
        assert rules_of("""
            import socket  # lint: ok[RPL014] test harness needs a raw socket
        """) == []

    def test_service_client_usage_allowed(self):
        assert rules_of("""
            from repro.service import ServiceClient
        """) == []


class TestRPL012SolverInCoreHotPath:
    CORE = "src/repro/core/moves.py"

    def _core_rules(self, source: str) -> List[str]:
        violations = check_source(textwrap.dedent(source), self.CORE)
        return [v.rule for v in violations]

    def test_direct_import_flagged(self):
        assert self._core_rules("""
            import repro.thermal.solver
        """) == ["RPL012"]

    def test_from_import_flagged(self):
        assert self._core_rules("""
            from repro.thermal.solver import ThermalSolver
        """) == ["RPL012"]

    def test_package_attr_import_flagged(self):
        assert self._core_rules("""
            from repro.thermal import ThermalSolver
        """) == ["RPL012"]

    def test_fidelity_policy_import_allowed(self):
        assert self._core_rules("""
            from repro.thermal.fidelity import ThermalFidelityPolicy
        """) == []

    def test_non_core_module_allowed(self):
        src = textwrap.dedent("""
            from repro.thermal.solver import ThermalSolver
        """)
        path = "src/repro/thermal/fidelity.py"
        assert [v.rule for v in check_source(src, path)] == []

    def test_waiver_suppresses(self):
        assert self._core_rules("""
            # lint: ok[RPL012] type-only import for annotations
            from repro.thermal.solver import TemperatureField
        """) == []


class TestWaivers:
    def test_waiver_with_reason_suppresses(self):
        assert rules_of("""
            def f(x: float) -> bool:
                return x == 0.0  # lint: ok[RPL003] bit-exact cache probe
        """) == []

    def test_waiver_on_line_above_suppresses(self):
        assert rules_of("""
            def f(x: float) -> bool:
                # lint: ok[RPL003] bit-exact cache probe
                return x == 0.0
        """) == []

    def test_waiver_for_wrong_rule_does_not_suppress(self):
        assert rules_of("""
            def f(x: float) -> bool:
                return x == 0.0  # lint: ok[RPL006] wrong rule id
        """) == ["RPL003"]

    def test_waiver_without_reason_is_rpl000(self):
        flagged = rules_of("""
            def f(x: float) -> bool:
                return x == 0.0  # lint: ok[RPL003]
        """)
        assert "RPL000" in flagged
        assert "RPL003" in flagged

    def test_waiver_in_string_literal_ignored(self):
        assert rules_of('''
            def f() -> str:
                return "x == 0.0  # lint: ok[RPL003]"
        ''') == []


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        flagged = check_source("def broken(:\n", "fixture.py")
        assert [v.rule for v in flagged] == ["RPL000"]
        assert "syntax error" in flagged[0].message

    def test_violation_render_format(self):
        v = Violation("a.py", 3, 7, "RPL006", RULES["RPL006"])
        assert v.render() == "a.py:3:7: RPL006 bare except:"

    def test_shipped_tree_is_clean(self):
        violations = lint_paths([str(REPO_ROOT / "src" / "repro")])
        assert violations == [], "\n".join(v.render() for v in violations)
