"""Tests for the closed-form thermal surrogate and fidelity policy.

The tentpole contracts pinned here:

- the calibrated surrogate stays within 5% relative L2 error of the
  exact finite-volume solver on real placements, across generated
  netlists at three scales;
- ``move_delta`` agrees with the difference of two full surrogate
  solves (the O(1) inner-loop path is exact w.r.t. the model);
- fidelity modes are trajectory-neutral: ``adaptive`` and ``exact``
  runs of the same seed report identical final objectives and
  bit-identical placements;
- the fidelity knobs are execution-only (excluded from the scientific
  config hash);
- the shared LU cache is keyed on content, so two solver objects over
  identical geometry share one factorization;
- the policy's manifest metadata validates against the manifest
  schema's ``thermal`` subschema.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.config import THERMAL_FIDELITY_MODES, PlacementConfig
from repro.core.placer import Placer3D
from repro.geometry.chip import ChipGeometry
from repro.metrics.wirelength import compute_net_metrics
from repro.netlist.bookshelf import write_pl
from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.placement import Placement
from repro.obs.manifest import config_hash
from repro.obs.validate import validate
from repro.technology import TechnologyConfig
from repro.thermal.fidelity import ThermalFidelityPolicy
from repro.thermal.power import PowerModel
from repro.thermal.solver import ThermalSolver
from repro.thermal.solver import _LU_CACHE  # noqa: the shared cache
from repro.thermal.surrogate import (SurrogateThermalModel, power_map_of,
                                     relative_error, spreading_kernel)

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                           "repro", "obs", "manifest_schema.json")


def _chip(netlist, tech, num_layers=4):
    return ChipGeometry.for_cell_area(
        netlist.total_cell_area, num_layers,
        netlist.average_cell_height,
        whitespace=tech.whitespace,
        inter_row_space=tech.inter_row_space,
        min_row_width=24.0 * netlist.average_cell_width,
        layer_thickness=tech.layer_thickness,
        interlayer_thickness=tech.interlayer_thickness,
        substrate_thickness=tech.substrate_thickness)


def _power_map(netlist, chip, tech, nx, ny, seed=3):
    placement = Placement.random(netlist, chip, seed=seed)
    powers = PowerModel(netlist, tech).cell_powers(
        compute_net_metrics(placement))
    return power_map_of(placement, powers, nx, ny)


class TestSpreadingKernel:
    def test_finite_everywhere(self):
        g = np.linspace(0.0, 3.0, 7)
        a, b, c = np.meshgrid(g, g, g, indexing="ij")
        out = spreading_kernel(a, b, c)
        assert np.all(np.isfinite(out))

    def test_symmetric_in_lateral_args(self):
        a = np.full((4,), 0.5)
        b = np.linspace(0.1, 2.0, 4)
        c = np.linspace(2.0, 0.1, 4)
        assert np.allclose(spreading_kernel(a, b, c),
                           spreading_kernel(a, c, b))


class TestSurrogateAccuracy:
    @pytest.mark.parametrize("num_cells", [60, 120, 240])
    def test_calibrated_error_under_five_percent(self, tech, num_cells):
        spec = GeneratorSpec(name=f"sur{num_cells}",
                             num_cells=num_cells,
                             total_area=num_cells * 5e-12, seed=17)
        netlist = generate_netlist(spec)
        chip = _chip(netlist, tech)
        solver = ThermalSolver(chip, tech)
        surrogate = SurrogateThermalModel(chip, tech)
        pmap = _power_map(netlist, chip, tech,
                          surrogate.nx, surrogate.ny)
        surrogate.calibrate(solver, extra_power_maps=[pmap])
        error = relative_error(surrogate.solve_powers(pmap),
                               solver.solve_powers(pmap))
        assert error < 0.05

    def test_out_of_sample_placement(self, tech):
        """A placement the calibration never saw stays accurate."""
        spec = GeneratorSpec(name="oos", num_cells=120,
                             total_area=120 * 5e-12, seed=17)
        netlist = generate_netlist(spec)
        chip = _chip(netlist, tech)
        solver = ThermalSolver(chip, tech)
        surrogate = SurrogateThermalModel(chip, tech)
        surrogate.calibrate(solver)  # probe sources only
        pmap = _power_map(netlist, chip, tech,
                          surrogate.nx, surrogate.ny, seed=99)
        error = relative_error(surrogate.solve_powers(pmap),
                               solver.solve_powers(pmap))
        assert error < 0.05

    def test_move_delta_matches_solve_difference(self, tech):
        spec = GeneratorSpec(name="delta", num_cells=60,
                             total_area=60 * 5e-12, seed=17)
        netlist = generate_netlist(spec)
        chip = _chip(netlist, tech)
        solver = ThermalSolver(chip, tech)
        surrogate = SurrogateThermalModel(chip, tech)
        surrogate.calibrate(solver)
        nx, ny, nl = surrogate.nx, surrogate.ny, chip.num_layers
        pmap = np.zeros((nx, ny, nl), dtype=np.float64)
        pmap[2, 3, 0] = 1e-4
        before = surrogate.solve_powers(pmap).active.ravel()
        old_tile = 2 * ny + 3
        new_tile = (nx - 2) * ny + (ny - 2)
        pmap[2, 3, 0] = 0.0
        pmap[nx - 2, ny - 2, nl - 1] = 1e-4
        after = surrogate.solve_powers(pmap).active.ravel()
        delta = surrogate.move_delta(old_tile, 0, new_tile, nl - 1,
                                     1e-4)
        assert np.allclose(after - before, delta, atol=1e-12)

    def test_deterministic_calibration(self, tech):
        spec = GeneratorSpec(name="detcal", num_cells=60,
                             total_area=60 * 5e-12, seed=17)
        netlist = generate_netlist(spec)
        chip = _chip(netlist, tech)
        fits = []
        for _ in range(2):
            surrogate = SurrogateThermalModel(chip, tech)
            fits.append(surrogate.calibrate(ThermalSolver(chip, tech)))
        assert fits[0].to_dict() == fits[1].to_dict()


class TestFidelityPolicy:
    def _setup(self, tech, mode, **kwargs):
        spec = GeneratorSpec(name="pol", num_cells=60,
                             total_area=60 * 5e-12, seed=17)
        netlist = generate_netlist(spec)
        chip = _chip(netlist, tech)
        policy = ThermalFidelityPolicy(chip, tech, mode=mode, **kwargs)
        pmap = _power_map(netlist, chip, tech, policy.nx, policy.ny)
        return policy, pmap

    def test_exact_mode_never_builds_surrogate(self, tech):
        policy, pmap = self._setup(tech, "exact")
        policy.evaluate_map(pmap, boundary=False)
        policy.evaluate_map(pmap, boundary=True)
        assert policy._surrogate is None
        assert policy.exact_calls == 2
        assert policy.surrogate_calls == 0

    def test_surrogate_mode_never_exact_fields(self, tech):
        policy, pmap = self._setup(tech, "surrogate")
        policy.evaluate_map(pmap, boundary=False)
        policy.evaluate_map(pmap, boundary=True)
        assert policy.exact_calls == 0
        assert policy.surrogate_calls == 2
        assert policy.calibrations == 1

    def test_adaptive_routes_by_boundary(self, tech):
        policy, pmap = self._setup(tech, "adaptive")
        policy.evaluate_map(pmap, boundary=False)
        policy.evaluate_map(pmap, boundary=True)
        assert policy.exact_calls == 1
        assert policy.surrogate_calls == 1
        assert len(policy.events) == 1
        assert policy.events[0]["error"] < 0.05

    def test_drift_triggers_recalibration(self, tech):
        policy, pmap = self._setup(tech, "adaptive",
                                   drift_tolerance=1e-9)
        policy.evaluate_map(pmap, boundary=True)
        assert policy.recalibrations == 1
        assert policy.events[0]["recalibrated"] is True

    def test_adaptive_boundary_field_is_exact(self, tech):
        policy, pmap = self._setup(tech, "adaptive")
        field = policy.evaluate_map(pmap, boundary=True)
        exact = policy.solver.solve_powers(pmap)
        assert np.array_equal(field.active, exact.active)

    def test_bad_mode_rejected(self, tech):
        spec = GeneratorSpec(name="bad", num_cells=60,
                             total_area=60 * 5e-12, seed=17)
        chip = _chip(generate_netlist(spec), tech)
        with pytest.raises(ValueError):
            ThermalFidelityPolicy(chip, tech, mode="fast")
        with pytest.raises(ValueError):
            ThermalFidelityPolicy(chip, tech, drift_tolerance=0.0)

    def test_metadata_validates_against_schema(self, tech):
        policy, pmap = self._setup(tech, "adaptive",
                                   drift_tolerance=1e-9)
        policy.evaluate_map(pmap, boundary=False)
        policy.evaluate_map(pmap, boundary=True)
        with open(SCHEMA_PATH) as fh:
            schema = json.load(fh)["properties"]["thermal"]
        meta = policy.metadata()
        assert validate(meta, schema) == []
        assert meta["recalibrations"] == 1
        assert meta["calibration"] is not None


class TestConfigKnobs:
    def test_bad_fidelity_mode_rejected(self):
        with pytest.raises(ValueError):
            PlacementConfig(thermal_fidelity="approximate")
        with pytest.raises(ValueError):
            PlacementConfig(thermal_drift_tolerance=-1.0)

    def test_all_modes_accepted(self):
        for mode in THERMAL_FIDELITY_MODES:
            PlacementConfig(thermal_fidelity=mode)

    def test_fidelity_knobs_are_execution_only(self):
        base = PlacementConfig(alpha_temp=4e-5)
        variant = PlacementConfig(alpha_temp=4e-5,
                                  thermal_fidelity="surrogate",
                                  thermal_drift_tolerance=0.01)
        assert config_hash(base) == config_hash(variant)


class TestLUSharedCache:
    def test_identical_geometry_shares_factorization(self, tech):
        chip = ChipGeometry(width=100e-6, height=100e-6, num_layers=4,
                            row_height=2e-6, row_pitch=2.5e-6)
        a = ThermalSolver(chip, tech, nx=8, ny=8)
        b = ThermalSolver(chip, tech, nx=8, ny=8)
        assert a.factor_key() == b.factor_key()
        p = np.zeros((8, 8, 4))
        p[4, 4, 2] = 1e-3
        fa = a.solve_powers(p)
        entries = len(_LU_CACHE)
        fb = b.solve_powers(p)
        assert len(_LU_CACHE) == entries  # b reused a's factorization
        assert np.array_equal(fa.active, fb.active)

    def test_different_geometry_new_entry(self, tech):
        chip1 = ChipGeometry(width=100e-6, height=100e-6, num_layers=4,
                             row_height=2e-6, row_pitch=2.5e-6)
        chip2 = ChipGeometry(width=200e-6, height=100e-6, num_layers=4,
                             row_height=2e-6, row_pitch=2.5e-6)
        a = ThermalSolver(chip1, tech, nx=8, ny=8)
        b = ThermalSolver(chip2, tech, nx=8, ny=8)
        assert a.factor_key() != b.factor_key()


class TestTrajectoryNeutrality:
    def test_adaptive_equals_exact(self, tmp_path):
        """Same seed, different fidelity: identical final results."""
        results = {}
        for mode in ("exact", "adaptive"):
            spec = GeneratorSpec(name="traj", num_cells=90,
                                 total_area=90 * 5e-12, seed=11)
            netlist = generate_netlist(spec)
            config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=4e-5,
                                     num_layers=3, seed=3,
                                     thermal_fidelity=mode)
            result = Placer3D(netlist, config).run()
            path = tmp_path / f"{mode}.pl"
            write_pl(str(path), netlist, result.placement)
            results[mode] = (result.objective, path.read_bytes())
        assert results["exact"][0] == results["adaptive"][0]
        assert results["exact"][1] == results["adaptive"][1]

    def test_result_carries_thermal_metadata(self):
        spec = GeneratorSpec(name="meta", num_cells=60,
                             total_area=60 * 5e-12, seed=11)
        netlist = generate_netlist(spec)
        config = PlacementConfig(alpha_ilv=1e-5, alpha_temp=4e-5,
                                 num_layers=3, seed=3,
                                 thermal_fidelity="adaptive")
        result = Placer3D(netlist, config).run()
        assert result.thermal is not None
        assert result.thermal["mode"] == "adaptive"
        assert result.thermal["exact_calls"] >= 1
        assert result.thermal["surrogate_calls"] >= 1
        assert result.thermal["calibration"] is not None
