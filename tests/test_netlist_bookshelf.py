"""Unit tests for the Bookshelf reader/writer."""

import os

import pytest

from repro.geometry.chip import ChipGeometry
from repro.netlist import bookshelf
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement

NODES = """UCLA nodes 1.0
# comment line
NumNodes : 4
NumTerminals : 1
  a 2.0 1.0
  b 3.0 1.0
  c 2.5 1.0
  p1 1.0 1.0 terminal
"""

NETS = """UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n_first
  a O
  b I
  c I
NetDegree : 2
  c
  p1
"""

PL = """UCLA pl 1.0
  a 0.0 0.0 0
  b 4.0 0.0 1
  c 0.0 2.0 0
  p1 10.0 10.0 0
"""


@pytest.fixture
def prefix(tmp_path):
    p = tmp_path / "circ"
    (tmp_path / "circ.nodes").write_text(NODES)
    (tmp_path / "circ.nets").write_text(NETS)
    (tmp_path / "circ.pl").write_text(PL)
    return str(p)


class TestReading:
    def test_nodes(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        assert nl.num_cells == 4
        assert nl.cell("a").width == pytest.approx(2e-6)
        assert nl.cell("p1").fixed

    def test_nets_with_directions(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        net = nl.net("n_first")
        assert net.degree == 3
        assert net.driver_ids == [nl.cell("a").id]
        assert len(net.sink_ids) == 2

    def test_nets_without_directions_get_first_pin_driver(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        net = nl.nets[1]
        assert net.name == "net1"
        assert net.driver_ids == [nl.cell("c").id]

    def test_pl_updates_fixed_positions(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        pad = nl.cell("p1")
        # centre = corner + half dims
        assert pad.fixed_position[0] == pytest.approx(10.5e-6)
        assert pad.fixed_position[1] == pytest.approx(10.5e-6)

    def test_pl_returns_centres_and_layers(self, prefix):
        nl = Netlist("t")
        bookshelf.read_nodes(prefix + ".nodes", nl)
        positions = bookshelf.read_pl(prefix + ".pl", nl)
        assert positions["b"][2] == 1
        assert positions["a"][0] == pytest.approx(1e-6)  # 0 + width/2

    def test_unknown_cell_in_pl(self, prefix, tmp_path):
        nl = Netlist("t")
        bookshelf.read_nodes(prefix + ".nodes", nl)
        bad = tmp_path / "bad.pl"
        bad.write_text("UCLA pl 1.0\n  zz 0 0\n")
        with pytest.raises(ValueError):
            bookshelf.read_pl(str(bad), nl)

    def test_unit_scaling(self, prefix):
        nl = Netlist("t")
        bookshelf.read_nodes(prefix + ".nodes", nl, unit=2e-6)
        assert nl.cell("a").width == pytest.approx(4e-6)


class TestRoundTrip:
    def test_write_read_identity(self, prefix, tmp_path):
        nl = bookshelf.read_bookshelf(prefix)
        chip = ChipGeometry(width=50e-6, height=50e-6, num_layers=2,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=2)
        out = str(tmp_path / "out")
        bookshelf.write_bookshelf(out, nl, pl)
        back = bookshelf.read_bookshelf(out)
        assert back.num_cells == nl.num_cells
        assert back.num_nets == nl.num_nets
        for cell in nl.cells:
            other = back.cell(cell.name)
            assert other.width == pytest.approx(cell.width, rel=1e-5)
            assert other.fixed == cell.fixed
        for net in nl.nets:
            other = back.net(net.name)
            assert other.degree == net.degree
            assert other.driver_ids == net.driver_ids

    def test_position_roundtrip(self, prefix, tmp_path):
        nl = bookshelf.read_bookshelf(prefix)
        chip = ChipGeometry(width=50e-6, height=50e-6, num_layers=4,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=4)
        out = str(tmp_path / "pos")
        bookshelf.write_nodes(out + ".nodes", nl)
        bookshelf.write_pl(out + ".pl", nl, pl)
        nl2 = Netlist("t")
        bookshelf.read_nodes(out + ".nodes", nl2)
        positions = bookshelf.read_pl(out + ".pl", nl2)
        for cell in nl.cells:
            if cell.fixed:
                continue
            x, y, z = positions[cell.name]
            assert x == pytest.approx(pl.x[cell.id], rel=1e-5)
            assert y == pytest.approx(pl.y[cell.id], rel=1e-5)
            assert z == pl.z[cell.id]

    def test_trr_nets_not_written(self, prefix, tmp_path):
        nl = bookshelf.read_bookshelf(prefix)
        nl.add_net("__trr__a", [(nl.cell("a").id, PinRole.SINK)],
                   activity=0.0, is_trr=True)
        out = str(tmp_path / "trr")
        bookshelf.write_nets(out + ".nets", nl)
        text = open(out + ".nets").read()
        assert "__trr__" not in text
        assert "NumNets : 2" in text
