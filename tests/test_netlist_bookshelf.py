"""Unit tests for the Bookshelf reader/writer."""

import os

import pytest

from repro.geometry.chip import ChipGeometry
from repro.netlist import bookshelf
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement

NODES = """UCLA nodes 1.0
# comment line
NumNodes : 4
NumTerminals : 1
  a 2.0 1.0
  b 3.0 1.0
  c 2.5 1.0
  p1 1.0 1.0 terminal
"""

NETS = """UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n_first
  a O
  b I
  c I
NetDegree : 2
  c
  p1
"""

PL = """UCLA pl 1.0
  a 0.0 0.0 0
  b 4.0 0.0 1
  c 0.0 2.0 0
  p1 10.0 10.0 0
"""


@pytest.fixture
def prefix(tmp_path):
    p = tmp_path / "circ"
    (tmp_path / "circ.nodes").write_text(NODES)
    (tmp_path / "circ.nets").write_text(NETS)
    (tmp_path / "circ.pl").write_text(PL)
    return str(p)


class TestReading:
    def test_nodes(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        assert nl.num_cells == 4
        assert nl.cell("a").width == pytest.approx(2e-6)
        assert nl.cell("p1").fixed

    def test_nets_with_directions(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        net = nl.net("n_first")
        assert net.degree == 3
        assert net.driver_ids == [nl.cell("a").id]
        assert len(net.sink_ids) == 2

    def test_nets_without_directions_get_first_pin_driver(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        net = nl.nets[1]
        assert net.name == "net1"
        assert net.driver_ids == [nl.cell("c").id]

    def test_pl_updates_fixed_positions(self, prefix):
        nl = bookshelf.read_bookshelf(prefix)
        pad = nl.cell("p1")
        # centre = corner + half dims
        assert pad.fixed_position[0] == pytest.approx(10.5e-6)
        assert pad.fixed_position[1] == pytest.approx(10.5e-6)

    def test_pl_returns_centres_and_layers(self, prefix):
        nl = Netlist("t")
        bookshelf.read_nodes(prefix + ".nodes", nl)
        positions = bookshelf.read_pl(prefix + ".pl", nl)
        assert positions["b"][2] == 1
        assert positions["a"][0] == pytest.approx(1e-6)  # 0 + width/2

    def test_unknown_cell_in_pl(self, prefix, tmp_path):
        nl = Netlist("t")
        bookshelf.read_nodes(prefix + ".nodes", nl)
        bad = tmp_path / "bad.pl"
        bad.write_text("UCLA pl 1.0\n  zz 0 0\n")
        with pytest.raises(ValueError):
            bookshelf.read_pl(str(bad), nl)

    def test_unit_scaling(self, prefix):
        nl = Netlist("t")
        bookshelf.read_nodes(prefix + ".nodes", nl, unit=2e-6)
        assert nl.cell("a").width == pytest.approx(4e-6)


class TestRoundTrip:
    def test_write_read_identity(self, prefix, tmp_path):
        nl = bookshelf.read_bookshelf(prefix)
        chip = ChipGeometry(width=50e-6, height=50e-6, num_layers=2,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=2)
        out = str(tmp_path / "out")
        bookshelf.write_bookshelf(out, nl, pl)
        back = bookshelf.read_bookshelf(out)
        assert back.num_cells == nl.num_cells
        assert back.num_nets == nl.num_nets
        for cell in nl.cells:
            other = back.cell(cell.name)
            assert other.width == pytest.approx(cell.width, rel=1e-5)
            assert other.fixed == cell.fixed
        for net in nl.nets:
            other = back.net(net.name)
            assert other.degree == net.degree
            assert other.driver_ids == net.driver_ids

    def test_position_roundtrip(self, prefix, tmp_path):
        nl = bookshelf.read_bookshelf(prefix)
        chip = ChipGeometry(width=50e-6, height=50e-6, num_layers=4,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=4)
        out = str(tmp_path / "pos")
        bookshelf.write_nodes(out + ".nodes", nl)
        bookshelf.write_pl(out + ".pl", nl, pl)
        nl2 = Netlist("t")
        bookshelf.read_nodes(out + ".nodes", nl2)
        positions = bookshelf.read_pl(out + ".pl", nl2)
        for cell in nl.cells:
            if cell.fixed:
                continue
            x, y, z = positions[cell.name]
            assert x == pytest.approx(pl.x[cell.id], rel=1e-5)
            assert y == pytest.approx(pl.y[cell.id], rel=1e-5)
            assert z == pl.z[cell.id]

    def _assert_netlists_equal(self, a, b):
        assert a.num_cells == b.num_cells
        assert a.num_nets == b.num_nets
        for ca, cb in zip(a.cells, b.cells):
            assert ca.name == cb.name
            assert ca.width == cb.width
            assert ca.height == cb.height
            assert ca.fixed == cb.fixed
            assert ca.fixed_position == cb.fixed_position
        for na, nb in zip(a.nets, b.nets):
            assert na.name == nb.name
            assert list(na.pins) == list(nb.pins)
            assert na.activity == nb.activity

    def test_streaming_matches_buffered_on_fixture(self, prefix):
        buffered = bookshelf.read_bookshelf(prefix)
        streaming = bookshelf.read_bookshelf_streaming(prefix)
        self._assert_netlists_equal(buffered, streaming)

    def test_streaming_matches_buffered_on_suite_circuit(self, tmp_path):
        from repro.netlist.suite import load_benchmark
        nl = load_benchmark("ibm01", scale=0.05, seed=0)
        chip = ChipGeometry(width=500e-6, height=500e-6, num_layers=4,
                            row_height=1e-6, row_pitch=1.25e-6)
        pl = Placement.random(nl, chip, seed=7)
        out = str(tmp_path / "ibm")
        bookshelf.write_bookshelf(out, nl, pl)
        buffered = bookshelf.read_bookshelf(out)
        streaming = bookshelf.read_bookshelf_streaming(out)
        self._assert_netlists_equal(buffered, streaming)

    def test_streaming_matches_buffered_on_synthetic(self, tmp_path):
        from repro.netlist.suite import load_benchmark
        nl = load_benchmark("synthetic2k", scale=1.0, seed=1)
        out = str(tmp_path / "syn")
        bookshelf.write_bookshelf(out, nl)
        buffered = bookshelf.read_bookshelf(out)
        streaming = bookshelf.read_bookshelf_streaming(out)
        self._assert_netlists_equal(buffered, streaming)

    def test_trr_nets_not_written(self, prefix, tmp_path):
        nl = bookshelf.read_bookshelf(prefix)
        nl.add_net("__trr__a", [(nl.cell("a").id, PinRole.SINK)],
                   activity=0.0, is_trr=True)
        out = str(tmp_path / "trr")
        bookshelf.write_nets(out + ".nets", nl)
        text = open(out + ".nets").read()
        assert "__trr__" not in text
        assert "NumNets : 2" in text


class TestStreamingErrorPaths:
    """Malformed and truncated inputs must fail loudly, not silently."""

    def _nodes(self, tmp_path, text):
        path = tmp_path / "bad.nodes"
        path.write_text(text)
        return str(path)

    def _nets(self, tmp_path, text):
        path = tmp_path / "bad.nets"
        path.write_text(text)
        return str(path)

    def test_nodes_missing_header(self, tmp_path):
        path = self._nodes(tmp_path, "UCLA nodes 1.0\n")
        with pytest.raises(ValueError, match="missing NumNodes"):
            bookshelf.read_nodes_streaming(path, Netlist("t"))

    def test_nodes_record_before_header(self, tmp_path):
        path = self._nodes(tmp_path, "UCLA nodes 1.0\n  a 2.0 1.0\n")
        with pytest.raises(ValueError, match="before NumNodes"):
            bookshelf.read_nodes_streaming(path, Netlist("t"))

    def test_nodes_truncated(self, tmp_path):
        path = self._nodes(
            tmp_path, "UCLA nodes 1.0\nNumNodes : 3\n  a 2.0 1.0\n")
        with pytest.raises(ValueError, match="truncated .nodes"):
            bookshelf.read_nodes_streaming(path, Netlist("t"))

    def test_nodes_overdeclared(self, tmp_path):
        path = self._nodes(
            tmp_path, "UCLA nodes 1.0\nNumNodes : 1\n"
                      "  a 2.0 1.0\n  b 2.0 1.0\n")
        with pytest.raises(ValueError, match="more than NumNodes"):
            bookshelf.read_nodes_streaming(path, Netlist("t"))

    def test_nodes_without_dimensions(self, tmp_path):
        path = self._nodes(
            tmp_path, "UCLA nodes 1.0\nNumNodes : 1\n  a\n")
        with pytest.raises(ValueError, match="no dimensions"):
            bookshelf.read_nodes_streaming(path, Netlist("t"))

    def test_nodes_malformed_header(self, tmp_path):
        path = self._nodes(tmp_path, "UCLA nodes 1.0\nNumNodes : x\n")
        with pytest.raises(ValueError, match="malformed NumNodes"):
            bookshelf.read_nodes_streaming(path, Netlist("t"))

    def _netlist_ab(self):
        nl = Netlist("t")
        nl.add_cell("a", 2e-6, 1e-6)
        nl.add_cell("b", 2e-6, 1e-6)
        return nl

    def test_nets_missing_headers(self, tmp_path):
        path = self._nets(tmp_path, "UCLA nets 1.0\n")
        with pytest.raises(ValueError, match="missing NumNets"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_netdegree_before_headers(self, tmp_path):
        path = self._nets(tmp_path,
                          "UCLA nets 1.0\nNetDegree : 2\n  a\n  b\n")
        with pytest.raises(ValueError, match="before NumNets"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_truncated_mid_net(self, tmp_path):
        path = self._nets(
            tmp_path, "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
                      "NetDegree : 2\n  a\n")
        with pytest.raises(ValueError, match="missing 1 of its pins"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_count_mismatch(self, tmp_path):
        path = self._nets(
            tmp_path, "UCLA nets 1.0\nNumNets : 2\nNumPins : 2\n"
                      "NetDegree : 2\n  a\n  b\n")
        with pytest.raises(ValueError, match="expected 2 nets"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_pin_count_mismatch(self, tmp_path):
        path = self._nets(
            tmp_path, "UCLA nets 1.0\nNumNets : 1\nNumPins : 3\n"
                      "NetDegree : 2\n  a\n  b\n")
        with pytest.raises(ValueError, match="NumPins=3"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_unknown_cell(self, tmp_path):
        path = self._nets(
            tmp_path, "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
                      "NetDegree : 2\n  a\n  zz\n")
        with pytest.raises(ValueError, match="unknown cell 'zz'"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_malformed_netdegree(self, tmp_path):
        path = self._nets(
            tmp_path, "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
                      "NetDegree : x\n")
        with pytest.raises(ValueError, match="malformed NetDegree"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())

    def test_nets_stray_record(self, tmp_path):
        path = self._nets(
            tmp_path, "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
                      "  a\n")
        with pytest.raises(ValueError, match="expected NetDegree"):
            bookshelf.read_nets_streaming(path, self._netlist_ab())
