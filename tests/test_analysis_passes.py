"""Per-pass fixtures for the interprocedural analyzer.

Each pass gets a true-positive fixture and a clean twin, mirroring the
``test_lint_rules.py`` style.  Fixture trees are written under
``tmp_path/repro`` so the passes' hardwired roots
(``repro.core.pipeline.PlacementPipeline.run``, ``repro.parallel``)
resolve against the fixture instead of the shipped tree.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis import analyze, load_program
from tools.analysis.findings import Finding
from tools.analysis.passes import PASS_REGISTRY, build_context


def write_package(root: Path, files: Dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def run_pass(root: Path, name: str) -> List[Finding]:
    program = load_program([str(root)])
    ctx = build_context(program)
    return PASS_REGISTRY[name]().run(ctx)


def rules_of(findings: List[Finding]) -> List[str]:
    return sorted(f.rule for f in findings)


@pytest.fixture()
def repro_root(tmp_path: Path) -> Path:
    return tmp_path / "repro"


def pipeline_package(extra: Dict[str, str],
                     run_body: str) -> Dict[str, str]:
    """A minimal tree with the determinism root calling into ``extra``."""
    files = {
        "__init__.py": "",
        "core/__init__.py": "",
        "core/pipeline.py": f"""
            from repro.core.work import step

            class PlacementPipeline:
                def run(self) -> None:
                    {run_body}
        """,
    }
    files.update(extra)
    return files


class TestDeterminismPass:
    def test_unseeded_rng_flagged(self, repro_root):
        write_package(repro_root, pipeline_package({
            "core/work.py": """
                import numpy as np

                def step() -> None:
                    rng = np.random.default_rng()
                    rng.random()
            """,
        }, "step()"))
        assert "RPA101" in rules_of(run_pass(repro_root,
                                             "determinism"))

    def test_seeded_rng_clean(self, repro_root):
        write_package(repro_root, pipeline_package({
            "core/work.py": """
                import numpy as np

                def step() -> None:
                    rng = np.random.default_rng(7)
                    rng.random()
            """,
        }, "step()"))
        assert rules_of(run_pass(repro_root, "determinism")) == []

    def test_entropy_source_flagged_transitively(self, repro_root):
        write_package(repro_root, pipeline_package({
            "core/work.py": """
                from repro.core.deep import stamp

                def step() -> None:
                    stamp()
            """,
            "core/deep.py": """
                import uuid

                def stamp() -> str:
                    return str(uuid.uuid4())
            """,
        }, "step()"))
        findings = run_pass(repro_root, "determinism")
        assert "RPA102" in rules_of(findings)
        assert any(f.symbol == "repro.core.deep.stamp"
                   for f in findings)

    def test_unreachable_entropy_not_flagged(self, repro_root):
        write_package(repro_root, pipeline_package({
            "core/work.py": """
                def step() -> None:
                    pass
            """,
            "core/orphan.py": """
                import uuid

                def stamp() -> str:
                    return str(uuid.uuid4())
            """,
        }, "step()"))
        assert rules_of(run_pass(repro_root, "determinism")) == []

    def test_set_iteration_flagged_and_sorted_clean(self, repro_root):
        write_package(repro_root, pipeline_package({
            "core/work.py": """
                def step() -> None:
                    acc = 0.0
                    items = set()
                    items.add(1)
                    for i in items:
                        acc += i
            """,
        }, "step()"))
        assert rules_of(run_pass(repro_root,
                                 "determinism")) == ["RPA103"]
        write_package(repro_root, {
            "core/work.py": textwrap.dedent("""
                def step() -> None:
                    acc = 0.0
                    items = set()
                    items.add(1)
                    for i in sorted(items):
                        acc += i
            """),
        })
        assert rules_of(run_pass(repro_root, "determinism")) == []

    def test_dict_keys_is_note_only(self, repro_root):
        write_package(repro_root, pipeline_package({
            "core/work.py": """
                def step() -> None:
                    d = {"a": 1}
                    out = list(d.keys())
            """,
        }, "step()"))
        findings = run_pass(repro_root, "determinism")
        assert rules_of(findings) == ["RPA104"]
        assert all(not f.gating for f in findings)


def hot_path_package(kernel_body: str,
                     extra: Dict[str, str] = None) -> Dict[str, str]:
    files = {
        "__init__.py": "",
        "analysis/__init__.py": "",
        "analysis/contracts.py": """
            def hot_path(fn):
                return fn
        """,
        "kernels.py": f"""
            from repro.analysis.contracts import hot_path

            @hot_path
            def kernel() -> None:
                {kernel_body}
        """,
    }
    files.update(extra or {})
    return files


class TestPurityPass:
    def test_logging_flagged(self, repro_root):
        write_package(repro_root, hot_path_package("helper()", {
            "util.py": """
                import logging

                def helper() -> None:
                    logging.info("tick")
            """,
            "kernels.py": textwrap.dedent("""
                from repro.analysis.contracts import hot_path
                from repro.util import helper

                @hot_path
                def kernel() -> None:
                    helper()
            """),
        }))
        findings = run_pass(repro_root, "purity")
        assert "RPA201" in rules_of(findings)

    def test_file_io_flagged(self, repro_root):
        write_package(repro_root,
                      hot_path_package('open("x").read()'))
        assert "RPA202" in rules_of(run_pass(repro_root, "purity"))

    def test_alloc_heavy_in_loop_flagged(self, repro_root):
        write_package(repro_root, hot_path_package("""
                import numpy as np
                out = np.zeros(0, dtype=np.float64)
                for i in range(3):
                    out = np.concatenate((out, out))
        """))
        assert "RPA204" in rules_of(run_pass(repro_root, "purity"))

    def test_pure_kernel_clean(self, repro_root):
        write_package(repro_root, hot_path_package("""
                import numpy as np
                x = np.zeros(4, dtype=np.float64)
                x += 1.0
        """))
        assert rules_of(run_pass(repro_root, "purity")) == []


def parallel_package(tasks_py: str, driver_py: str) -> Dict[str, str]:
    return {
        "__init__.py": "",
        "parallel/__init__.py": """
            class Backend:
                def map(self, fn, items) -> list:
                    return [fn(i) for i in items]
        """,
        "tasks.py": tasks_py,
        "driver.py": driver_py,
    }


PICKLABLE_TASK = """
    from dataclasses import dataclass
    import numpy as np

    @dataclass(frozen=True)
    class Task:
        size: int
        name: str
        weights: np.ndarray
"""

SIMPLE_DRIVER = """
    from repro.parallel import Backend
    from repro.tasks import Task

    def work(task: Task) -> int:
        return task.size

    def dispatch(backend: Backend, tasks) -> list:
        return backend.map(work, tasks)
"""


class TestForkSafetyPass:
    def test_unpicklable_payload_field_flagged(self, repro_root):
        write_package(repro_root, parallel_package("""
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(frozen=True)
            class Task:
                fn: Callable[[int], int]
                size: int
        """, SIMPLE_DRIVER))
        findings = run_pass(repro_root, "fork-safety")
        assert "RPA301" in rules_of(findings)

    def test_scalar_and_array_payload_clean(self, repro_root):
        write_package(repro_root, parallel_package(
            PICKLABLE_TASK, SIMPLE_DRIVER))
        assert rules_of(run_pass(repro_root, "fork-safety")) == []

    def test_worker_global_write_flagged(self, repro_root):
        write_package(repro_root, parallel_package(PICKLABLE_TASK, """
            from repro.parallel import Backend
            from repro.tasks import Task

            CACHE = {}

            def work(task: Task) -> int:
                CACHE[task.size] = 1
                return 0

            def dispatch(backend: Backend, tasks) -> list:
                return backend.map(work, tasks)
        """))
        findings = run_pass(repro_root, "fork-safety")
        assert "RPA303" in rules_of(findings)

    def test_worker_global_read_clean(self, repro_root):
        write_package(repro_root, parallel_package(PICKLABLE_TASK, """
            from repro.parallel import Backend
            from repro.tasks import Task

            CACHE = {}

            def work(task: Task) -> int:
                return CACHE.get(task.size, 0)

            def dispatch(backend: Backend, tasks) -> list:
                return backend.map(work, tasks)
        """))
        assert rules_of(run_pass(repro_root, "fork-safety")) == []


def contract_package(caller_body: str) -> Dict[str, str]:
    return {
        "__init__.py": "",
        "analysis/__init__.py": "",
        "analysis/contracts.py": """
            def contract(shapes=None, dtypes=None):
                def wrap(fn):
                    return fn
                return wrap
        """,
        "kern.py": """
            import numpy as np
            from repro.analysis.contracts import contract

            @contract(shapes={"xs": ("n",)},
                      dtypes={"xs": np.floating})
            def consume(xs) -> float:
                return float(xs.sum())
        """,
        "caller.py": f"""
            import numpy as np
            from repro.kern import consume

            def go() -> float:
                {caller_body}
        """,
    }


class TestContractPass:
    def test_rank_mismatch_flagged(self, repro_root):
        write_package(repro_root, contract_package("""
                xs = np.zeros((4, 4), dtype=np.float64)
                return consume(xs)
        """))
        assert "RPA401" in rules_of(run_pass(repro_root, "contracts"))

    def test_dtype_family_mismatch_flagged(self, repro_root):
        write_package(repro_root, contract_package("""
                xs = np.zeros(4, dtype=np.int64)
                return consume(xs)
        """))
        assert "RPA402" in rules_of(run_pass(repro_root, "contracts"))

    def test_matching_construction_clean(self, repro_root):
        write_package(repro_root, contract_package("""
                xs = np.zeros(4, dtype=np.float64)
                return consume(xs)
        """))
        assert rules_of(run_pass(repro_root, "contracts")) == []

    def test_opaque_argument_skipped(self, repro_root):
        write_package(repro_root, contract_package("""
                xs = make()
                return consume(xs)
        """))
        assert rules_of(run_pass(repro_root, "contracts")) == []


class TestShippedTree:
    """The analyzer's own regression pins for the fixes this PR made."""

    def test_no_gating_determinism_findings_in_src(self):
        findings = analyze([str(REPO_ROOT / "src" / "repro")],
                           ["determinism"])
        gating = [f for f in findings if f.gating]
        # sorted(thermal_cells) in ObjectiveState.eval_moves and
        # sorted(ext_sides) in GlobalPlacer._build_task keep this empty
        assert gating == []

    def test_full_run_matches_committed_baseline(self):
        findings = analyze([str(REPO_ROOT / "src" / "repro")])
        from tools.analysis.baseline import Baseline, apply_baseline
        baseline = Baseline.load(
            REPO_ROOT / "tools" / "analysis" / "baseline.json")
        active, _suppressed, _stale = apply_baseline(findings, baseline)
        assert [f for f in active if f.gating] == []
