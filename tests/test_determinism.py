"""End-to-end determinism: same seed, bit-identical output.

Every source of randomness in the pipeline flows through a seeded
``numpy.random.Generator`` (generator, move optimizer, FM refiner,
legal refiner, baselines), so two runs with identical inputs must
produce byte-identical ``.pl`` files — not merely approximately equal
coordinates.  These tests pin that contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PlacementConfig
from repro.core.placer import Placer3D
from repro.netlist.bookshelf import write_pl
from repro.netlist.generator import GeneratorSpec, generate_netlist


def _spec(seed: int = 11) -> GeneratorSpec:
    return GeneratorSpec(name="det", num_cells=90,
                         total_area=90 * 5e-12, seed=seed)


def _run_pl(tmp_path, tag: str) -> bytes:
    netlist = generate_netlist(_spec())
    config = PlacementConfig(alpha_ilv=1e-5, num_layers=3, seed=3)
    result = Placer3D(netlist, config).run()
    path = tmp_path / f"{tag}.pl"
    write_pl(str(path), netlist, result.placement)
    return path.read_bytes()


class TestGeneratorDeterminism:
    def test_same_spec_same_netlist(self):
        a = generate_netlist(_spec())
        b = generate_netlist(_spec())
        assert a.num_cells == b.num_cells
        assert a.num_nets == b.num_nets
        assert np.array_equal(a.widths, b.widths)
        for na, nb in zip(a.nets, b.nets):
            assert na.pins == nb.pins
            assert na.activity == nb.activity

    def test_explicit_rng_matches_seed_default(self):
        a = generate_netlist(_spec())
        b = generate_netlist(_spec(), rng=np.random.default_rng(11))
        assert np.array_equal(a.widths, b.widths)
        for na, nb in zip(a.nets, b.nets):
            assert na.pins == nb.pins

    def test_different_seeds_differ(self):
        a = generate_netlist(_spec(seed=11))
        b = generate_netlist(_spec(seed=12))
        assert any(na.pins != nb.pins for na, nb in zip(a.nets, b.nets))


class TestPipelineDeterminism:
    def test_identical_runs_give_bit_identical_pl(self, tmp_path):
        first = _run_pl(tmp_path, "first")
        second = _run_pl(tmp_path, "second")
        assert first == second

    def test_placement_arrays_bit_identical(self):
        netlist_a = generate_netlist(_spec())
        netlist_b = generate_netlist(_spec())
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=3, seed=3)
        a = Placer3D(netlist_a, config).run()
        b = Placer3D(netlist_b, config).run()
        assert np.array_equal(a.placement.x, b.placement.x)
        assert np.array_equal(a.placement.y, b.placement.y)
        assert np.array_equal(a.placement.z, b.placement.z)
        assert a.wirelength == b.wirelength
        assert a.ilv == b.ilv
