"""Tests for the alternative net-length models."""

import numpy as np
import pytest

from repro.metrics.netmodels import (
    compare_net_models,
    rsmt_factor,
)
from repro.metrics.wirelength import total_hpwl, total_ilv
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.geometry.chip import ChipGeometry
from tests.conftest import make_chip


def two_pin_case():
    nl = Netlist("m")
    nl.add_cell("a", 1e-6, 1e-6)
    nl.add_cell("b", 1e-6, 1e-6)
    nl.add_net("n", [(0, PinRole.DRIVER), (1, PinRole.SINK)])
    chip = ChipGeometry(width=100e-6, height=100e-6, num_layers=4,
                        row_height=1e-6, row_pitch=1.25e-6)
    pl = Placement.at_center(nl, chip)
    pl.x[:] = [10e-6, 40e-6]
    pl.y[:] = [10e-6, 20e-6]
    pl.z[:] = [0, 2]
    return pl


class TestRsmtFactor:
    def test_two_pin_is_exact(self):
        assert rsmt_factor(2) == 1.0

    def test_monotone_in_degree(self):
        values = [rsmt_factor(d) for d in range(2, 40)]
        assert values == sorted(values)

    def test_extrapolation_continuous(self):
        assert rsmt_factor(16) == pytest.approx(rsmt_factor(15),
                                                rel=0.05)


class TestCompareModels:
    def test_two_pin_models_agree(self):
        pl = two_pin_case()
        report = compare_net_models(pl)
        manhattan = 40e-6 + 2 * pl.chip.layer_pitch
        assert report.hpwl == pytest.approx(manhattan)
        assert report.star == pytest.approx(manhattan)
        assert report.clique == pytest.approx(manhattan)
        assert report.rsmt == pytest.approx(manhattan)

    def test_hpwl_matches_metric_plus_vias(self, small_placement):
        report = compare_net_models(small_placement)
        expected = (total_hpwl(small_placement)
                    + total_ilv(small_placement)
                    * small_placement.chip.layer_pitch)
        assert report.hpwl == pytest.approx(expected)

    def test_ordering_for_fanout_nets(self, small_placement):
        """Star/clique/rsmt are >= hpwl on realistic netlists (hpwl is
        the optimistic lower-bound model)."""
        report = compare_net_models(small_placement)
        assert report.rsmt >= report.hpwl
        assert report.star >= 0.99 * report.hpwl

    def test_custom_via_pitch(self):
        pl = two_pin_case()
        a = compare_net_models(pl, via_pitch=0.0)
        b = compare_net_models(pl)
        assert a.hpwl == pytest.approx(40e-6)
        assert b.hpwl > a.hpwl

    def test_trr_excluded(self, small_placement):
        from repro.core.trrnets import add_trr_nets
        before = compare_net_models(small_placement)
        add_trr_nets(small_placement.netlist)
        after = compare_net_models(small_placement)
        assert after.hpwl == pytest.approx(before.hpwl)
