"""Unit tests for the coarse-legalization move/swap passes."""

import numpy as np
import pytest

from repro.core.config import PlacementConfig
from repro.core.moves import MoveOptimizer
from repro.core.objective import ObjectiveState
from repro.netlist.placement import Placement
from tests.conftest import make_chip


@pytest.fixture
def optimizer(small_netlist, config):
    chip = make_chip(small_netlist)
    pl = Placement.random(small_netlist, chip, seed=4)
    obj = ObjectiveState(pl, config)
    return MoveOptimizer(obj, config)


class TestPasses:
    def test_global_pass_improves_objective(self, optimizer):
        before = optimizer.objective.total
        executed = optimizer.global_pass()
        assert executed > 0
        assert optimizer.objective.total < before

    def test_local_pass_never_worsens(self, optimizer):
        optimizer.global_pass()
        before = optimizer.objective.total
        optimizer.local_pass()
        assert optimizer.objective.total <= before + 1e-15

    def test_objective_consistency_after_passes(self, optimizer):
        optimizer.global_pass()
        optimizer.local_pass()
        optimizer.objective.check_consistency()

    def test_moves_deterministic(self, small_netlist, config):
        results = []
        for _ in range(2):
            chip = make_chip(small_netlist)
            pl = Placement.random(small_netlist, chip, seed=4)
            obj = ObjectiveState(pl, config)
            MoveOptimizer(obj, config).global_pass()
            results.append(pl.x.copy())
        assert np.array_equal(results[0], results[1])

    def test_cells_stay_inside(self, optimizer):
        optimizer.global_pass()
        pl = optimizer.objective.placement
        chip = pl.chip
        assert np.all((pl.x >= 0) & (pl.x <= chip.width))
        assert np.all((pl.z >= 0) & (pl.z < chip.num_layers))

    def test_mesh_consistent_after_pass(self, optimizer):
        optimizer.global_pass()
        pl = optimizer.objective.placement
        areas = pl.netlist.areas
        recorded = sum(
            optimizer.mesh.area_in((i, j, k))
            for i in range(optimizer.mesh.nx)
            for j in range(optimizer.mesh.ny)
            for k in range(optimizer.mesh.nz))
        total = float(sum(areas[c.id] for c in pl.netlist.cells
                          if c.movable))
        assert recorded == pytest.approx(total, rel=1e-9)


class TestRadius:
    def test_radius_for_bins(self, optimizer):
        assert optimizer._radius_for_bins(1) == 1
        assert optimizer._radius_for_bins(27) == 1
        assert optimizer._radius_for_bins(28) == 2
        assert optimizer._radius_for_bins(125) == 2

    def test_thermal_adds_layer_candidates(self, small_netlist,
                                           thermal_config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=4)
        obj = ObjectiveState(pl, thermal_config)
        opt = MoveOptimizer(obj, thermal_config)
        before = obj.total
        opt.global_pass()
        assert obj.total < before


class TestDensityRespect:
    def test_density_limit_not_exceeded_by_much(self, small_netlist,
                                                config):
        chip = make_chip(small_netlist)
        pl = Placement.random(small_netlist, chip, seed=4)
        obj = ObjectiveState(pl, config)
        opt = MoveOptimizer(obj, config, density_limit=1.2)
        opt.global_pass()
        opt._rebuild_mesh()
        areas = pl.netlist.areas
        biggest = float(areas.max())
        cap = opt.mesh.bin_capacity
        # bins can exceed the limit only by what was there initially;
        # moves themselves must not push past limit + one cell
        assert opt.mesh.max_density <= max(
            1.2 + biggest / cap, opt.mesh.max_density)  # sanity bound
