"""Unit tests for the technology configuration (Table 2)."""

import dataclasses

import pytest

from repro.technology import TechnologyConfig


class TestDefaults:
    def test_table2_values(self):
        tech = TechnologyConfig()
        assert tech.technode == pytest.approx(100e-9)
        assert tech.substrate_thickness == pytest.approx(500e-6)
        assert tech.layer_thickness == pytest.approx(5.7e-6)
        assert tech.interlayer_thickness == pytest.approx(0.7e-6)
        assert tech.thermal_conductivity == pytest.approx(10.2)
        assert tech.whitespace == pytest.approx(0.05)
        assert tech.inter_row_space == pytest.approx(0.25)
        assert tech.cap_per_wirelength == pytest.approx(73.8e-12)
        assert tech.cap_per_via_length == pytest.approx(1480e-12)
        assert tech.input_pin_cap == pytest.approx(0.35e-15)
        assert tech.ambient_temperature == 0.0
        assert tech.heat_sink_convection == pytest.approx(1e6)

    def test_layer_pitch(self):
        tech = TechnologyConfig()
        assert tech.layer_pitch == pytest.approx(6.4e-6)

    def test_cap_per_via_uses_interlayer_thickness(self):
        tech = TechnologyConfig()
        assert tech.cap_per_via == pytest.approx(1480e-12 * 0.7e-6)

    def test_switching_energy_scale(self):
        tech = TechnologyConfig(clock_frequency=1e9, vdd=1.0)
        assert tech.switching_energy_scale == pytest.approx(0.5e9)

    def test_effective_stack_conductivity_is_consistent(self):
        """10.2 W/mK is the series-effective k of 5.7um Si + 0.7um oxide.

        This sanity check documents why the substrate gets bulk
        silicon's conductivity instead of the stack value.
        """
        si, ox = 150.0, 1.4
        pitch = 5.7e-6 + 0.7e-6
        k_eff = pitch / (5.7e-6 / si + 0.7e-6 / ox)
        assert 9.0 < k_eff < 13.0


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("substrate_thickness", -1.0),
        ("layer_thickness", 0.0),
        ("thermal_conductivity", -5.0),
        ("substrate_conductivity", 0.0),
        ("heat_sink_convection", 0.0),
        ("clock_frequency", -1.0),
        ("vdd", 0.0),
        ("whitespace", 1.0),
        ("interlayer_thickness", -1e-9),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            TechnologyConfig(**{field: value})

    def test_replace_keeps_validation(self):
        tech = TechnologyConfig()
        with pytest.raises(ValueError):
            dataclasses.replace(tech, vdd=-1.0)
