"""Tests for the text renderers (``repro.obs.report``).

The renderers must degrade gracefully on empty traces, span nodes
missing keys, and manifests from schema versions predating the
``resources``/``profile`` sections — every case here renders an honest
placeholder instead of raising.
"""

from __future__ import annotations

from repro.obs import (Recorder, Telemetry, render, render_manifest,
                       render_profile, render_resources, render_spans)


class TestRenderSpans:
    def test_empty_tree_is_empty_string(self):
        assert render_spans({}) == ""
        assert render_spans({"children": []}) == ""

    def test_nodes_missing_keys_render(self):
        spans = {"children": [
            {"name": "global", "total_seconds": 1.0,
             "children": [{}, "garbage"]},
        ]}
        text = render_spans(spans)
        assert "global" in text
        assert "?" in text  # nameless child rendered with placeholder

    def test_real_trace_shares_sum(self):
        rec = Recorder()
        with rec.span("global"):
            with rec.span("level0"):
                pass
        text = render_spans(rec.snapshot().spans)
        assert "global" in text and "level0" in text


class TestRenderTelemetry:
    def test_zero_spans_snapshot(self):
        text = render(Telemetry(), title="empty run")
        assert "== empty run" in text
        assert "(no spans recorded)" in text

    def test_empty_series_points(self):
        telemetry = Telemetry(series={"temps": []})
        text = render(telemetry)
        assert "temps" in text
        assert "0 points" in text

    def test_counters_and_series_render(self):
        telemetry = Telemetry(
            counters={"fm/moves": 12.0, "frac": 0.5},
            series={"obj": [{"t": 0.0, "value": 3.0}]})
        text = render(telemetry)
        assert "fm/moves" in text and "12" in text
        assert "0.5" in text
        assert "last: value=3" in text


class TestRenderResources:
    def test_none_and_empty_render_placeholder(self):
        expected = "-- memory --\n(none: run without --profile)"
        assert render_resources(None) == expected
        assert render_resources({}) == expected

    def test_full_section(self):
        doc = {
            "peak_rss_bytes": 2 * 1024 * 1024,
            "current_rss_bytes": 1024 * 1024,
            "baseline_rss_bytes": 512 * 1024,
            "samples": 7,
            "tracemalloc": {
                "enabled": True, "peak_bytes": 4096,
                "top_allocations": [
                    {"site": "repro/core/fm.py:10", "size_bytes": 2048,
                     "count": 3}],
            },
        }
        text = render_resources(doc)
        assert "peak RSS" in text and "2.0 MiB" in text
        assert "samples" in text
        assert "python heap peak" in text and "4.0 KiB" in text
        assert "repro/core/fm.py:10" in text

    def test_zero_rss_rows_suppressed(self):
        text = render_resources({"peak_rss_bytes": 0, "samples": 1})
        assert "peak RSS" not in text
        assert "samples" in text

    def test_disabled_tracemalloc_omits_heap(self):
        text = render_resources({
            "peak_rss_bytes": 1000,
            "tracemalloc": {"enabled": False, "peak_bytes": 0,
                            "top_allocations": []}})
        assert "python heap peak" not in text


class TestRenderProfile:
    def test_none_and_empty_render_placeholder(self):
        expected = "-- hot functions --\n(none: run without --profile)"
        assert render_profile(None) == expected
        assert render_profile({}) == expected

    def test_full_section(self):
        doc = {
            "samples": 120, "interval_seconds": 0.01,
            "hot_functions": [
                {"function": "core/fm:FMRefiner._pass", "self": 80,
                 "cum": 100}],
            "spans": [{"span": "global/level0", "samples": 90},
                      {"span": "", "samples": 30}],
        }
        text = render_profile(doc)
        assert "120 samples @ 10ms" in text
        assert "core/fm:FMRefiner._pass" in text
        assert "global/level0" in text
        assert "(no span)" in text  # empty span path labelled honestly

    def test_no_attributed_samples(self):
        text = render_profile({"samples": 0, "hot_functions": [],
                               "spans": []})
        assert "(no samples attributed)" in text


class TestRenderManifest:
    def test_legacy_manifest_without_new_sections(self):
        # a PR-3-era manifest: no resources, no profile, no stages
        manifest = {
            "kind": "repro.placement.run",
            "circuit": {"name": "ibm01"},
            "result": {"objective": 123.0, "wall_seconds": 1.5},
        }
        text = render_manifest(manifest)
        assert "== run report: ibm01 ==" in text
        assert "objective" in text
        assert "(no stages recorded)" in text
        assert "(none: run without --profile)" in text

    def test_empty_manifest_renders(self):
        text = render_manifest({})
        assert "== run report: ? ==" in text
        assert "(no stages recorded)" in text

    def test_full_manifest_golden(self):
        manifest = {
            "circuit": {"name": "tiny"},
            "result": {"objective": 10.0, "wall_seconds": 0.25},
            "stages": [{"path": "global", "seconds": 0.2, "calls": 1}],
            "resources": {"peak_rss_bytes": 1024, "samples": 2},
            "profile": {"samples": 5, "interval_seconds": 0.01,
                        "hot_functions": [{"function": "m:f",
                                           "self": 5, "cum": 5}],
                        "spans": [{"span": "global", "samples": 5}]},
        }
        text = render_manifest(manifest)
        assert text == "\n".join([
            "== run report: tiny ==",
            "objective                           10",
            "wall_seconds                      0.25",
            "-- stages --",
            "global                                  0.2000s  x1",
            "-- memory --",
            "peak RSS                       1.0 KiB",
            "samples                              2",
            "-- hot functions --",
            "5 samples @ 10ms",
            "function                                      self   cum",
            "m:f                                              5     5",
            "per-span samples:",
            "  global                                         5",
        ])

    def test_malformed_rows_degrade(self):
        manifest = {
            "circuit": "not-a-mapping",
            "stages": [{"path": "x", "seconds": "slow",
                        "calls": None}, 42],
            "resources": {"tracemalloc": {"enabled": True,
                                          "top_allocations": ["?"]}},
            "profile": {"samples": "many", "hot_functions": [None]},
        }
        text = render_manifest(manifest)  # must not raise
        assert "== run report: ? ==" in text
        assert "0.0000s" in text  # non-numeric seconds coerced
