"""Unit tests for the dtype-minimized signal CSR and its caches."""

import pickle

import numpy as np
import pytest

from repro.netlist.csr import (build_signal_csr, clear_keyed_store,
                               index_dtype, signal_csr)
from repro.netlist.net import PinRole
from repro.netlist.netlist import Netlist
from repro.netlist.suite import load_benchmark


@pytest.fixture(autouse=True)
def _clean_keyed_store():
    clear_keyed_store()
    yield
    clear_keyed_store()


def _small_netlist():
    nl = Netlist("csr")
    for name in "abcd":
        nl.add_cell(name, 2e-6, 1e-6)
    nl.add_net("n0", [(0, PinRole.DRIVER), (1, PinRole.SINK),
                      (2, PinRole.SINK)], activity=0.3)
    nl.add_net("n1", [(2, PinRole.DRIVER), (3, PinRole.SINK)],
               activity=0.5)
    return nl


class TestIndexDtype:
    def test_small_ranges_use_int32(self):
        assert index_dtype(0) == np.int32
        assert index_dtype(2**31 - 1) == np.int32

    def test_overflow_guard_promotes_to_int64(self):
        assert index_dtype(2**31) == np.int64
        assert index_dtype(2**40) == np.int64


class TestBuildSignalCSR:
    def test_pin_lists_match_nets(self):
        nl = _small_netlist()
        csr = build_signal_csr(nl)
        assert csr.num_nets == 2
        assert csr.pin_lists() == [[0, 1, 2], [2, 3]]
        assert csr.driver_lists() == [[0], [2]]

    def test_excludes_trr_nets(self):
        nl = _small_netlist()
        nl.add_net("__trr__x", [(0, PinRole.SINK)], activity=0.0,
                   is_trr=True)
        csr = build_signal_csr(nl)
        assert csr.num_nets == 2

    def test_matches_python_construction_on_suite(self):
        nl = load_benchmark("ibm01", scale=0.02, seed=0)
        csr = build_signal_csr(nl)
        expected_ids = [net.id for net in nl.nets
                        if not net.is_trr and net.pins]
        assert csr.net_ids.tolist() == expected_ids
        nets = {net.id: net for net in nl.nets}
        for net_id, pins, drivers in zip(csr.net_ids.tolist(),
                                         csr.pin_lists(),
                                         csr.driver_lists()):
            net = nets[net_id]
            assert pins == [cid for cid, _ in net.pins]
            assert drivers == net.driver_ids

    def test_minimized_dtypes(self):
        nl = _small_netlist()
        csr = build_signal_csr(nl)
        assert csr.pin_cell.dtype == np.int32
        assert csr.net_ptr.dtype == np.int32
        # pin keys index net*num_cells products, so always int64
        assert csr.pin_key.dtype == np.int64


class TestSignalCSRCaching:
    def test_instance_cache_reused(self):
        nl = _small_netlist()
        assert signal_csr(nl) is signal_csr(nl)

    def test_add_cell_invalidates(self):
        nl = _small_netlist()
        first = signal_csr(nl)
        nl.add_cell("e", 2e-6, 1e-6)
        assert signal_csr(nl) is not first

    def test_add_signal_net_invalidates(self):
        nl = _small_netlist()
        first = signal_csr(nl)
        nl.add_net("n2", [(0, PinRole.DRIVER), (3, PinRole.SINK)],
                   activity=0.1)
        again = signal_csr(nl)
        assert again is not first
        assert again.num_nets == 3

    def test_trr_injection_preserves_cache(self):
        nl = _small_netlist()
        first = signal_csr(nl)
        nl.add_net("__trr__x", [(0, PinRole.SINK)], activity=0.0,
                   is_trr=True)
        assert signal_csr(nl) is first

    def test_content_key_shares_build_across_copies(self):
        nl = _small_netlist()
        nl.content_key = "test:key"
        first = signal_csr(nl)
        clone = pickle.loads(pickle.dumps(nl))
        assert clone.content_key == "test:key"
        assert signal_csr(clone) is first

    def test_pickle_drops_derived_csr(self):
        nl = _small_netlist()
        signal_csr(nl)
        clone = pickle.loads(pickle.dumps(nl))
        assert clone._signal_csr is None
