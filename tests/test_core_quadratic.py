"""Tests for the quadratic (force-directed) baseline placer."""

import numpy as np
import pytest

from repro import PlacementConfig, Placer3D
from repro.core.detailed import check_legal
from repro.core.quadratic import QuadraticPlacer, _rank_spread
from repro.netlist.pads import add_peripheral_pads
from tests.conftest import make_chip


class TestRankSpread:
    def test_preserves_order(self):
        values = np.array([5.0, 1.0, 3.0, 2.0])
        spread = _rank_spread(values, 0.0, 1.0)
        assert list(np.argsort(spread)) == list(np.argsort(values))

    def test_covers_interval_evenly(self):
        spread = _rank_spread(np.random.default_rng(0).normal(size=10),
                              0.0, 10.0)
        assert spread.min() == pytest.approx(0.5)
        assert spread.max() == pytest.approx(9.5)

    def test_empty(self):
        out = _rank_spread(np.array([]), 0.0, 1.0)
        assert len(out) == 0


class TestQuadraticPlacer:
    def test_legal_result(self, small_netlist, config):
        result = QuadraticPlacer(small_netlist, config).run()
        check_legal(result.placement)

    def test_beats_random(self, small_netlist, config):
        from repro.core.baseline import random_baseline
        quad = QuadraticPlacer(small_netlist, config).run()
        rand = random_baseline(small_netlist, config)
        assert quad.objective < rand.objective

    def test_deterministic(self, small_netlist, config):
        a = QuadraticPlacer(small_netlist, config).run()
        b = QuadraticPlacer(small_netlist, config).run()
        assert np.array_equal(a.placement.x, b.placement.x)

    def test_padded_design_supported(self, config):
        """Pad anchors enter the quadratic system through the RHS; the
        solve must succeed and the pads must not move."""
        from repro.netlist.generator import GeneratorSpec, \
            generate_netlist
        nl = generate_netlist(GeneratorSpec(
            "fd", 150, 150 * 5e-12, seed=17))
        chip = make_chip(nl, num_layers=config.num_layers)
        add_peripheral_pads(nl, chip, count=16, seed=3)
        result = QuadraticPlacer(nl, config, chip=chip).run()
        check_legal(result.placement)
        for cell in nl.fixed_cells():
            assert result.placement.position(cell.id) == \
                cell.fixed_position

    def test_bisection_beats_quadratic_without_pads(self,
                                                    medium_netlist,
                                                    config):
        quad = QuadraticPlacer(medium_netlist, config).run()
        main = Placer3D(medium_netlist, config).run()
        assert main.objective < quad.objective

    def test_single_layer(self, small_netlist):
        config = PlacementConfig(alpha_ilv=1e-5, num_layers=1, seed=0)
        result = QuadraticPlacer(small_netlist, config).run()
        check_legal(result.placement)
        assert result.ilv == 0
