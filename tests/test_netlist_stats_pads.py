"""Tests for netlist statistics, Rent estimation, pads and k-way
partitioning."""

import numpy as np
import pytest

from repro.netlist.generator import GeneratorSpec, generate_netlist
from repro.netlist.pads import add_peripheral_pads, _point_on_perimeter
from repro.netlist.stats import rent_exponent, summarize
from repro.partition import BisectionConfig, Hypergraph
from repro.partition.kway import kway_cut, partition_kway
from tests.conftest import make_chip


class TestSummarize:
    def test_counts(self, tiny_netlist):
        s = summarize(tiny_netlist)
        assert s.cells == 6
        assert s.nets == 5
        assert s.pins == 11
        assert s.avg_degree == pytest.approx(11 / 5)

    def test_text_renders(self, small_netlist):
        text = summarize(small_netlist).text()
        assert "cells 120" in text
        assert "degree histogram" in text

    def test_excludes_trr_nets(self, tiny_netlist):
        from repro.core.trrnets import add_trr_nets
        before = summarize(tiny_netlist)
        add_trr_nets(tiny_netlist)
        after = summarize(tiny_netlist)
        assert after.nets == before.nets
        assert after.pins == before.pins


class TestRentExponent:
    def test_local_netlist_sublinear(self):
        nl = generate_netlist(GeneratorSpec(
            "local", 400, 400 * 5e-12, locality=0.03,
            global_fraction=0.0, seed=5))
        p, t = rent_exponent(nl, seed=0)
        assert 0.0 < p < 1.0
        assert t > 0

    def test_random_wiring_higher_exponent(self):
        local = generate_netlist(GeneratorSpec(
            "l", 300, 300 * 5e-12, locality=0.03,
            global_fraction=0.0, seed=5))
        random_nl = generate_netlist(GeneratorSpec(
            "r", 300, 300 * 5e-12, locality=0.9,
            global_fraction=0.5, seed=5))
        p_local, _ = rent_exponent(local, seed=0)
        p_random, _ = rent_exponent(random_nl, seed=0)
        assert p_random > p_local

    def test_too_small_raises(self, tiny_netlist):
        with pytest.raises(ValueError):
            rent_exponent(tiny_netlist, min_cells=64)


class TestPads:
    def test_pads_on_boundary(self, small_netlist):
        chip = make_chip(small_netlist)
        ids = add_peripheral_pads(small_netlist, chip, count=8, seed=1)
        assert len(ids) == 8
        for pid in ids:
            cell = small_netlist.cells[pid]
            assert cell.fixed
            x, y, z = cell.fixed_position
            on_x_edge = abs(x) < 1e-12 or abs(x - chip.width) < 1e-12
            on_y_edge = abs(y) < 1e-12 or abs(y - chip.height) < 1e-12
            assert on_x_edge or on_y_edge

    def test_pads_are_wired(self, small_netlist):
        chip = make_chip(small_netlist)
        ids = add_peripheral_pads(small_netlist, chip, count=4, seed=1)
        for pid in ids:
            assert small_netlist.nets_of_cell(pid)

    def test_zero_pads(self, small_netlist):
        chip = make_chip(small_netlist)
        assert add_peripheral_pads(small_netlist, chip, count=0) == []

    def test_empty_netlist_rejected(self):
        from repro.netlist.netlist import Netlist
        from repro.geometry.chip import ChipGeometry
        chip = ChipGeometry(width=1e-5, height=1e-5, num_layers=1,
                            row_height=1e-6, row_pitch=1.25e-6)
        with pytest.raises(ValueError):
            add_peripheral_pads(Netlist("x"), chip, count=2)

    def test_perimeter_walk_closes(self, small_netlist):
        chip = make_chip(small_netlist)
        total = 2 * (chip.width + chip.height)
        x0, y0 = _point_on_perimeter(chip, 0.0)
        x1, y1 = _point_on_perimeter(chip, total)
        assert (x0, y0) == pytest.approx((x1, y1))

    def test_padded_design_places_legally(self, small_netlist, config):
        from repro.core.placer import Placer3D
        from repro.core.detailed import check_legal
        chip = make_chip(small_netlist, num_layers=config.num_layers)
        add_peripheral_pads(small_netlist, chip, count=8, seed=2)
        result = Placer3D(small_netlist, config, chip=chip).run()
        check_legal(result.placement)
        # pads did not move
        for cell in small_netlist.fixed_cells():
            assert result.placement.position(cell.id) == \
                cell.fixed_position


class TestKway:
    def ring(self, n):
        return Hypergraph(n, [[i, (i + 1) % n] for i in range(n)])

    def test_k1_trivial(self):
        g = self.ring(8)
        parts, cut = partition_kway(g, 1)
        assert set(parts) == {0}
        assert cut == 0.0

    def test_k2_matches_bisect_quality(self):
        g = self.ring(24)
        parts, cut = partition_kway(g, 2, BisectionConfig(seed=0))
        assert cut == pytest.approx(2.0)

    def test_k4_ring(self):
        g = self.ring(32)
        parts, cut = partition_kway(g, 4, BisectionConfig(seed=0))
        assert set(parts) == {0, 1, 2, 3}
        assert cut <= 6.0  # optimal is 4
        sizes = np.bincount(parts)
        assert sizes.max() <= 2 * sizes.min()

    def test_k3_non_power_of_two(self):
        g = self.ring(30)
        parts, cut = partition_kway(g, 3, BisectionConfig(seed=1))
        sizes = np.bincount(parts, minlength=3)
        assert all(s > 0 for s in sizes)
        assert sizes.max() <= 2 * sizes.min()

    def test_kway_cut_counts_spanning_once(self):
        g = Hypergraph(3, [[0, 1, 2]])
        assert kway_cut(g, np.array([0, 1, 2])) == 1.0
        assert kway_cut(g, np.array([0, 0, 0])) == 0.0

    def test_invalid_k(self):
        g = self.ring(4)
        with pytest.raises(ValueError):
            partition_kway(g, 0)
        with pytest.raises(ValueError):
            partition_kway(g, 5)

    def test_fixed_only_for_k2(self):
        g = Hypergraph(4, [[0, 1]], fixed=[0, -1, -1, 1])
        with pytest.raises(ValueError):
            partition_kway(g, 3)
