"""PlacementConfig JSON round-trip: to_dict/from_dict and hashing.

The config document is the unit of reproducibility: it is embedded in
run manifests and checkpoints and guarded by a content hash, so the
round trip must be lossless, reject typos loudly, and hash identically
after a trip through JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import PlacementConfig
from repro.obs.manifest import config_hash
from repro.technology import TechnologyConfig


class TestRoundTrip:
    def test_default_config_round_trips(self):
        config = PlacementConfig()
        again = PlacementConfig.from_dict(config.to_dict())
        assert again == config

    def test_custom_config_round_trips_through_json(self):
        config = PlacementConfig(alpha_ilv=3e-6, alpha_temp=1e-5,
                                 num_layers=3, seed=42,
                                 legalization_rounds=4,
                                 refine_passes=0,
                                 shift_max_density=1.3)
        text = json.dumps(config.to_dict())
        again = PlacementConfig.from_dict(json.loads(text))
        assert again == config

    def test_tech_survives_as_nested_mapping(self):
        config = PlacementConfig(
            tech=TechnologyConfig(whitespace=0.25))
        document = config.to_dict()
        assert isinstance(document["tech"], dict)
        assert document["tech"]["whitespace"] == 0.25
        again = PlacementConfig.from_dict(document)
        assert again.tech == config.tech

    def test_tech_accepts_config_instance(self):
        tech = TechnologyConfig(whitespace=0.3)
        config = PlacementConfig.from_dict(
            {"alpha_ilv": 1e-5, "tech": tech})
        assert config.tech is tech

    def test_hash_stable_across_round_trip(self):
        config = PlacementConfig(alpha_temp=1e-5, num_layers=3)
        again = PlacementConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert config_hash(again) == config_hash(config)

    def test_partial_dict_fills_defaults(self):
        config = PlacementConfig.from_dict({"num_layers": 2})
        assert config.num_layers == 2
        assert config.alpha_ilv == PlacementConfig().alpha_ilv


class TestRejection:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError,
                           match="unknown PlacementConfig keys"):
            PlacementConfig.from_dict({"alpha_liv": 1e-5})

    def test_unknown_tech_key_rejected(self):
        with pytest.raises(ValueError,
                           match="unknown TechnologyConfig keys"):
            PlacementConfig.from_dict(
                {"tech": {"whitespce": 0.2}})

    def test_bad_tech_type_rejected(self):
        with pytest.raises(ValueError, match="tech must be"):
            PlacementConfig.from_dict({"tech": 7})

    def test_validators_still_fire_on_loaded_values(self):
        with pytest.raises(ValueError, match="alpha_ilv"):
            PlacementConfig.from_dict({"alpha_ilv": -1.0})
