"""Kernel-contract linter — thin shim over :mod:`tools.analysis`.

The single-file RPL rule engine that used to live here moved to
``tools.analysis.lintrules`` when the whole-program analyzer landed;
the rules now also run as the ``lint`` pass of
``python -m tools.analysis``.  This module re-exports the public
surface so ``python -m tools.lint`` and existing imports keep working
unchanged.
"""

from __future__ import annotations

from tools.analysis.lintrules import (
    ALLOCATORS,
    RULES,
    TIMER_FUNCTIONS,
    WALLCLOCK_DATETIME_METHODS,
    WALLCLOCK_TIME_FUNCTIONS,
    Violation,
    check_source,
    is_core_hot_path,
    is_kernel_module,
    is_parallel_backend,
    is_stage_factory,
    is_timing_exempt,
    iter_python_files,
    lint_paths,
    main,
)

__all__ = [
    "ALLOCATORS",
    "RULES",
    "TIMER_FUNCTIONS",
    "WALLCLOCK_DATETIME_METHODS",
    "WALLCLOCK_TIME_FUNCTIONS",
    "Violation",
    "check_source",
    "is_core_hot_path",
    "is_kernel_module",
    "is_parallel_backend",
    "is_stage_factory",
    "is_timing_exempt",
    "iter_python_files",
    "lint_paths",
    "main",
]
