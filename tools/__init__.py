"""Repository development tooling (not shipped with the library)."""
