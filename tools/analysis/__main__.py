"""``python -m tools.analysis`` entry point."""

from __future__ import annotations

import sys

from tools.analysis import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
