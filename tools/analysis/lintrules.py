"""Domain AST lint rules for the placement-kernel invariants.

Generic tools (ruff, mypy) cannot see the repo-specific contracts the
kernel layer depends on; these single-module rules enforce them as hard
CI gates.  They run as one pass of the whole-program analyzer
(``python -m tools.analysis src/repro``); the historical
``python -m tools.lint`` entry point is a thin shim over this module.

Rules (each documented in DESIGN.md "Static analysis & contracts"):

======== ==============================================================
RPL001   No writes to another object's underscore attribute.  Kernel
         state (``ObjectiveState._wl`` etc.) is mutated only through
         its owner's methods, which keep the incremental caches
         coherent; ``obj._total = x`` from outside corrupts silently.
RPL002   Every NumPy array allocation in a kernel module passes an
         explicit ``dtype=`` keyword.  Default dtypes are
         platform-shaped and invisible in review; CSR index arrays
         must be int64 and coordinate arrays float64.
RPL003   No ``==``/``!=`` against float literals.  Use the
         ``repro.analysis.tolerance`` helpers, which force the writer
         to state whether the comparison is tolerance-based or
         intentionally bit-exact.
RPL004   No legacy ``np.random.*`` module-level calls.  All randomness
         flows through seeded ``np.random.default_rng`` Generators so
         placements are reproducible bit-for-bit.
RPL005   No Python ``for``/``while`` loops inside functions marked
         ``@hot_path``.  The batched kernels must stay vectorized; a
         stray scalar loop is a 10-100x regression that still passes
         every functional test.
RPL006   No bare ``except:``.  It swallows ``KeyboardInterrupt`` and
         hides kernel assertion failures.
RPL007   No mutable default argument values.
RPL008   Every ``def`` carries a return annotation (the
         ``mypy --strict`` gate needs them; this catches new code even
         when mypy is unavailable locally).
RPL009   No direct ``time.perf_counter()`` / ``perf_counter_ns()``
         calls outside ``repro.obs``.  All timing flows through the
         observability layer (``Stopwatch``, ``Tracer``, ``Recorder``)
         so spans stay coherent and clocks stay injectable in tests.
RPL010   No direct instantiation of pipeline stage classes
         (``*Stage(...)``) outside the stage registry and the pipeline
         runner.  Stages are created via ``create_stage(name, opts)``
         so specs, checkpoints and the CLI all see one catalogue; a
         hand-built instance bypasses registration and option
         validation.
RPL011   No direct ``multiprocessing`` / ``concurrent.futures``
         imports outside ``repro.parallel``.  Process management lives
         behind the execution-backend abstraction so worker counts,
         seeding and telemetry merging stay consistent; an ad-hoc pool
         silently breaks the bit-identical-results contract.
RPL012   No direct ``repro.thermal.solver`` imports from ``repro.core``
         hot paths.  Temperature-field evaluations route through the
         thermal fidelity policy (``PlacementContext.thermal_policy``)
         so the ``thermal_fidelity`` config knob governs every
         evaluation; a directly instantiated ``ThermalSolver`` in a
         stage or move loop silently bypasses the surrogate, the drift
         checks and the per-fidelity telemetry.
RPL013   No ``time.time()`` / ``datetime.now()`` / ``utcnow()`` /
         ``today()`` outside ``repro.obs``.  Timestamps belong to the
         observability layer (``repro.obs.wall_time``): a wall-clock
         read anywhere else is either telemetry that bypasses the obs
         layer or — worse — state that leaks into placement decisions
         and silently breaks bit-identical resume.
RPL014   No direct ``socket`` / ``selectors`` imports outside
         ``repro.service``.  Network transport belongs to the service
         layer's RPC module: an ad-hoc socket elsewhere bypasses the
         job store's state machine and the engine's permissioned API
         surface, and cannot be exercised by the service smoke tests.
RPL015   No ``multiprocessing.shared_memory`` imports outside
         ``repro.parallel.shared``.  Segment lifecycle (create /
         attach / resource-tracker bookkeeping / unlink) is owned by
         ``SharedArrayPool``; an ad-hoc ``SharedMemory`` elsewhere
         leaks segments on crash paths and double-unregisters with
         the fork-shared resource tracker.
======== ==============================================================

Any rule can be waived on a specific line with an inline comment
carrying a justification::

    x == 0.0  # lint: ok[RPL003] comparing a cache against itself

A waiver without a justification is itself an error (RPL000).  The
waiver may sit on the flagged line or on the line directly above it.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
import tokenize
from dataclasses import dataclass
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Modules holding vectorized kernels, where implicit dtypes are banned
#: (matched as path suffixes, so fixtures and absolute paths both work).
KERNEL_MODULE_SUFFIXES: Tuple[str, ...] = (
    "core/objective.py",
    "core/moves.py",
    "core/cellshift.py",
    "core/detailed.py",
    "core/refine.py",
    "partition/fm.py",
    "thermal/solver.py",
    "thermal/surrogate.py",
    "geometry/density.py",
)

#: NumPy constructors that allocate a fresh array whose dtype must be
#: spelled out.  The ``*_like`` family inherits its dtype from the
#: template argument, which is already explicit, so it is exempt.
ALLOCATORS: Tuple[str, ...] = (
    "array", "asarray", "ascontiguousarray", "zeros", "empty", "ones",
    "full", "arange", "fromiter", "frombuffer", "linspace",
)

#: ``np.random`` attributes that are fine to call: the seeded-Generator
#: construction path, not the hidden global state.
RANDOM_ALLOWED: Tuple[str, ...] = ("default_rng", "Generator",
                                   "SeedSequence", "PCG64")

RULES: Dict[str, str] = {
    "RPL000": "lint waiver without a justification",
    "RPL001": "write to another object's underscore attribute",
    "RPL002": "array allocation without explicit dtype= in kernel module",
    "RPL003": "==/!= against a float literal (use repro.analysis.tolerance)",
    "RPL004": "legacy np.random.* global-state call (use default_rng)",
    "RPL005": "Python loop inside a @hot_path kernel function",
    "RPL006": "bare except:",
    "RPL007": "mutable default argument value",
    "RPL008": "def without a return annotation",
    "RPL009": "direct time.perf_counter() outside repro.obs "
              "(use repro.obs.Stopwatch / Recorder spans)",
    "RPL010": "direct stage-class instantiation outside the registry "
              "(use repro.core.stages.create_stage)",
    "RPL011": "direct multiprocessing/concurrent.futures import outside "
              "repro.parallel (use the execution-backend abstraction)",
    "RPL012": "direct repro.thermal.solver import in a repro.core hot "
              "path (route through the thermal fidelity policy)",
    "RPL013": "wall-clock read (time.time/datetime.now) outside "
              "repro.obs (use repro.obs.wall_time)",
    "RPL014": "direct socket/selectors import outside repro.service "
              "(talk to the service through ServiceClient or the "
              "engine API)",
    "RPL015": "direct multiprocessing.shared_memory import outside "
              "repro.parallel.shared (segment lifecycle is owned by "
              "SharedArrayPool)",
}

#: Top-level modules only ``repro.parallel`` may import (RPL011).
PROCESS_MODULES: Tuple[str, ...] = ("multiprocessing", "concurrent")

#: Modules allowed to import process machinery directly (RPL011): the
#: execution-backend package itself.
PARALLEL_BACKEND_SUFFIXES: Tuple[str, ...] = (
    "repro/parallel/__init__.py",
    "repro/parallel/shared.py",
)

#: The one module allowed to import ``multiprocessing.shared_memory``
#: (RPL015): the zero-copy dispatch arena that owns segment lifecycle.
SHARED_MEMORY_SUFFIXES: Tuple[str, ...] = (
    "repro/parallel/shared.py",
)

#: Top-level modules only ``repro.service`` may import (RPL014).
SOCKET_MODULES: Tuple[str, ...] = ("socket", "selectors")

#: Modules allowed to import socket machinery directly (RPL014): the
#: service package (its ``rpc.py`` owns the transport).
SERVICE_MODULE_FRAGMENT = "repro/service/"

#: Modules allowed to instantiate stage classes directly (RPL010): the
#: registry that defines them and the runner that executes specs.
STAGE_FACTORY_SUFFIXES: Tuple[str, ...] = (
    "core/stages.py",
    "core/pipeline.py",
)

_STAGE_CLASS_RE = re.compile(r"^[A-Z]\w*Stage$")

#: ``time`` attributes that only the observability layer may call
#: directly; everything else goes through ``repro.obs``.
TIMER_FUNCTIONS: Tuple[str, ...] = ("perf_counter", "perf_counter_ns")

#: ``time`` attributes that read the wall clock (RPL013).
WALLCLOCK_TIME_FUNCTIONS: Tuple[str, ...] = ("time", "time_ns")

#: ``datetime``/``date`` classmethods that read the wall clock (RPL013).
WALLCLOCK_DATETIME_METHODS: Tuple[str, ...] = ("now", "utcnow", "today")

_WAIVER_RE = re.compile(r"#\s*lint:\s*ok\[(RPL\d{3})\]\s*(.*)$")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"


def _collect_waivers(source: str) -> Tuple[Dict[int, str], List[Violation]]:
    """Map line -> waived rule id; flag justification-free waivers.

    Waivers are read from the token stream (not the raw text) so string
    literals that merely *mention* the syntax do not count.
    """
    waivers: Dict[int, str] = {}
    errors: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except tokenize.TokenError:
        return waivers, errors
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _WAIVER_RE.search(tok.string)
        if not match:
            continue
        rule, reason = match.group(1), match.group(2).strip()
        if not reason:
            errors.append(Violation("", tok.start[0], tok.start[1],
                                    "RPL000", RULES["RPL000"]))
            continue
        waivers[tok.start[0]] = rule
    return waivers, errors


def is_kernel_module(path: str) -> bool:
    """Whether a path belongs to the designated kernel-module set."""
    normalized = path.replace("\\", "/")
    return normalized.endswith(KERNEL_MODULE_SUFFIXES)


def is_stage_factory(path: str) -> bool:
    """Whether a path may instantiate stage classes directly (RPL010)."""
    normalized = path.replace("\\", "/")
    return normalized.endswith(STAGE_FACTORY_SUFFIXES)


def is_parallel_backend(path: str) -> bool:
    """Whether a path may import process machinery directly (RPL011)."""
    normalized = path.replace("\\", "/")
    return normalized.endswith(PARALLEL_BACKEND_SUFFIXES)


def is_shared_memory_owner(path: str) -> bool:
    """Whether a path may import shared_memory directly (RPL015)."""
    normalized = path.replace("\\", "/")
    return normalized.endswith(SHARED_MEMORY_SUFFIXES)


def is_service_module(path: str) -> bool:
    """Whether a path may import socket machinery directly (RPL014)."""
    normalized = path.replace("\\", "/")
    return SERVICE_MODULE_FRAGMENT in normalized


def is_core_hot_path(path: str) -> bool:
    """Whether a path belongs to ``repro.core`` (RPL012 scope).

    The whole engine package counts as hot-path territory: the only
    sanctioned exact-solver entry point inside it is the fidelity
    policy held by the placement context, which itself lives in
    ``repro.thermal`` and is therefore out of scope.
    """
    normalized = "/" + path.replace("\\", "/")
    return "/core/" in normalized


def is_timing_exempt(path: str) -> bool:
    """Whether a path may call ``time.perf_counter`` directly (RPL009).

    Only the observability layer itself owns raw clocks; every other
    module times work through ``repro.obs``.
    """
    normalized = path.replace("\\", "/")
    return "repro/obs/" in normalized


#: Rules applied in timing-only scope (plus waiver hygiene, RPL000).
TIMING_SCOPE_RULES = frozenset({"RPL000", "RPL009", "RPL013"})


def is_timing_only_scope(path: str) -> bool:
    """Whether a path is linted for the timing rules only.

    ``benchmarks/`` is measurement harness code, not pipeline code:
    the kernel-contract rules (vectorization, logging, stage factory
    discipline …) intentionally do not apply there, but clock
    ownership does — every wall-clock or perf-counter read must go
    through ``repro.obs`` (``Stopwatch`` / ``wall_time``) so timing
    methodology stays in one auditable place.
    """
    normalized = "/" + path.replace("\\", "/")
    return "/benchmarks/" in normalized


class _Checker(ast.NodeVisitor):
    """Single-pass AST walk emitting violations for RPL001-RPL008."""

    def __init__(self, path: str, kernel: bool,
                 numpy_aliases: Set[str],
                 timing_exempt: bool = False,
                 time_aliases: Optional[Set[str]] = None,
                 timer_names: Optional[Set[str]] = None,
                 wallclock_names: Optional[Set[str]] = None,
                 datetime_modules: Optional[Set[str]] = None,
                 datetime_classes: Optional[Set[str]] = None,
                 stage_factory: bool = False,
                 parallel_backend: bool = False,
                 shared_memory_owner: bool = False,
                 service_module: bool = False,
                 core_hot_path: bool = False) -> None:
        self.path = path
        self.kernel = kernel
        self.numpy_aliases = numpy_aliases
        self.timing_exempt = timing_exempt
        self.time_aliases = time_aliases or set()
        self.timer_names = timer_names or set()
        self.wallclock_names = wallclock_names or set()
        self.datetime_modules = datetime_modules or set()
        self.datetime_classes = datetime_classes or set()
        self.stage_factory = stage_factory
        self.parallel_backend = parallel_backend
        self.shared_memory_owner = shared_memory_owner
        self.service_module = service_module
        self.core_hot_path = core_hot_path
        self.violations: List[Violation] = []
        self._hot_depth = 0

    # -- helpers -------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str,
              detail: Optional[str] = None) -> None:
        message = RULES[rule] if detail is None else detail
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), rule, message))

    def _is_numpy(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self.numpy_aliases

    # -- RPL001: cross-object private mutation -------------------------
    def _check_private_write(self, target: ast.expr) -> None:
        node: ast.expr = target
        while isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._check_private_write(element)
            return
        if not isinstance(node, ast.Attribute):
            return
        name = node.attr
        if not name.startswith("_") or name.startswith("__"):
            return
        receiver = node.value
        if isinstance(receiver, ast.Name) and receiver.id in ("self",
                                                              "cls"):
            return
        self._flag(node, "RPL001",
                   f"write to {name!r} of a foreign object — mutate "
                   f"kernel state through its owner's methods")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_private_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_private_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_private_write(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_private_write(target)
        self.generic_visit(node)

    # -- RPL009: raw clock calls outside repro.obs ---------------------
    def _check_timer_call(self, node: ast.Call) -> None:
        if self.timing_exempt:
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in self.time_aliases
                    and func.attr in TIMER_FUNCTIONS):
                self._flag(node, "RPL009",
                           f"time.{func.attr}() outside repro.obs — use "
                           f"repro.obs.Stopwatch or a Recorder span")
        elif isinstance(func, ast.Name) and func.id in self.timer_names:
            self._flag(node, "RPL009",
                       f"{func.id}() outside repro.obs — use "
                       f"repro.obs.Stopwatch or a Recorder span")

    # -- RPL013: wall-clock reads outside repro.obs --------------------
    def _check_wallclock_call(self, node: ast.Call) -> None:
        if self.timing_exempt:
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.wallclock_names:
                self._flag(node, "RPL013",
                           f"{func.id}() reads the wall clock outside "
                           f"repro.obs — timestamps belong to the "
                           f"observability layer (repro.obs.wall_time)")
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name) \
                and value.id in self.time_aliases \
                and func.attr in WALLCLOCK_TIME_FUNCTIONS:
            self._flag(node, "RPL013",
                       f"time.{func.attr}() outside repro.obs — "
                       f"timestamps belong to the observability layer "
                       f"(repro.obs.wall_time)")
            return
        if func.attr not in WALLCLOCK_DATETIME_METHODS:
            return
        if isinstance(value, ast.Name) \
                and value.id in self.datetime_classes:
            self._flag(node, "RPL013",
                       f"{value.id}.{func.attr}() outside repro.obs — "
                       f"timestamps belong to the observability layer "
                       f"(repro.obs.wall_time)")
        elif isinstance(value, ast.Attribute) \
                and value.attr in ("datetime", "date") \
                and isinstance(value.value, ast.Name) \
                and value.value.id in self.datetime_modules:
            self._flag(node, "RPL013",
                       f"datetime.{value.attr}.{func.attr}() outside "
                       f"repro.obs — timestamps belong to the "
                       f"observability layer (repro.obs.wall_time)")

    # -- RPL010: stage instantiation outside the registry --------------
    def _check_stage_instantiation(self, node: ast.Call) -> None:
        if self.stage_factory:
            return
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is not None and _STAGE_CLASS_RE.match(name):
            self._flag(node, "RPL010",
                       f"{name}(...) instantiated outside the stage "
                       f"registry — use create_stage(<registry name>, "
                       f"options) so specs and checkpoints see one "
                       f"catalogue")

    # -- RPL011: process imports outside repro.parallel ----------------
    def _check_process_import(self, node: ast.AST,
                              module: Optional[str]) -> None:
        if self.parallel_backend or not module:
            return
        top = module.split(".", 1)[0]
        if top in PROCESS_MODULES:
            self._flag(node, "RPL011",
                       f"import of {module!r} outside repro.parallel — "
                       f"dispatch work through an ExecutionBackend so "
                       f"seeding and telemetry merging stay uniform")

    # -- RPL015: shared_memory imports outside the dispatch arena ------
    def _check_shared_memory_import(self, node: ast.AST,
                                    module: Optional[str],
                                    names: Sequence[str] = (),
                                    ) -> None:
        if self.shared_memory_owner or not module:
            return
        hit = (module == "multiprocessing.shared_memory"
               or module.startswith("multiprocessing.shared_memory.")
               or (module == "multiprocessing"
                   and "shared_memory" in names))
        if hit:
            self._flag(node, "RPL015",
                       "import of multiprocessing.shared_memory outside "
                       "repro.parallel.shared — segment create/attach/"
                       "unlink lifecycle is owned by SharedArrayPool")

    # -- RPL014: socket imports outside repro.service ------------------
    def _check_socket_import(self, node: ast.AST,
                             module: Optional[str]) -> None:
        if self.service_module or not module:
            return
        top = module.split(".", 1)[0]
        if top in SOCKET_MODULES:
            self._flag(node, "RPL014",
                       f"import of {module!r} outside repro.service — "
                       f"talk to the placement service through "
                       f"ServiceClient or the engine API so the job "
                       f"state machine stays authoritative")

    # -- RPL012: exact-solver imports in core hot paths ----------------
    def _flag_solver_import(self, node: ast.AST, module: str) -> None:
        self._flag(node, "RPL012",
                   f"import of {module!r} in a repro.core hot path — "
                   f"evaluate temperature fields through the thermal "
                   f"fidelity policy (PlacementContext.thermal_policy) "
                   f"so the thermal_fidelity knob governs them")

    def _check_solver_import(self, node: ast.AST,
                             module: Optional[str]) -> None:
        if not self.core_hot_path or not module:
            return
        if module == "repro.thermal.solver" \
                or module.startswith("repro.thermal.solver."):
            self._flag_solver_import(node, module)

    def visit_Import(self, node: ast.Import) -> None:
        for item in node.names:
            self._check_process_import(node, item.name)
            self._check_shared_memory_import(node, item.name)
            self._check_socket_import(node, item.name)
            self._check_solver_import(node, item.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:
            self._check_process_import(node, node.module)
            self._check_shared_memory_import(
                node, node.module,
                names=[item.name for item in node.names])
            self._check_socket_import(node, node.module)
            self._check_solver_import(node, node.module)
            if self.core_hot_path and node.module == "repro.thermal":
                for item in node.names:
                    if item.name in ("ThermalSolver", "solver"):
                        self._flag_solver_import(
                            node, f"repro.thermal.{item.name}")
        self.generic_visit(node)

    # -- RPL002 / RPL004 / RPL009 / RPL010: calls ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_timer_call(node)
        self._check_wallclock_call(node)
        self._check_stage_instantiation(node)
        func = node.func
        if isinstance(func, ast.Attribute):
            # np.random.<fn>(...) — legacy global-state RNG
            value = func.value
            if (isinstance(value, ast.Attribute) and value.attr == "random"
                    and self._is_numpy(value.value)
                    and func.attr not in RANDOM_ALLOWED):
                self._flag(node, "RPL004",
                           f"np.random.{func.attr}() uses hidden global "
                           f"state — thread a seeded default_rng() "
                           f"Generator instead")
            # np.<alloc>(...) without dtype=, in kernel modules
            elif (self.kernel and func.attr in ALLOCATORS
                    and self._is_numpy(value)):
                if not any(kw.arg == "dtype" for kw in node.keywords):
                    self._flag(node, "RPL002",
                               f"np.{func.attr}(...) without an explicit "
                               f"dtype= keyword")
        self.generic_visit(node)

    # -- RPL003: float-literal equality --------------------------------
    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                        (ast.USub,
                                                         ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) \
            and isinstance(node.value, float)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_float_literal(left) or self._is_float_literal(right):
                self._flag(node, "RPL003")
                break
        self.generic_visit(node)

    # -- RPL005-RPL008: function bodies --------------------------------
    @staticmethod
    def _is_hot_path(node: ast.FunctionDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id == "hot_path":
                return True
            if isinstance(target, ast.Attribute) \
                    and target.attr == "hot_path":
                return True
        return False

    def _visit_function(self, node: ast.FunctionDef) -> None:
        if node.returns is None:
            self._flag(node, "RPL008",
                       f"def {node.name} lacks a return annotation")
        defaults = list(node.args.defaults) + \
            [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._flag(default, "RPL007")
            elif isinstance(default, ast.Call) \
                    and isinstance(default.func, ast.Name) \
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray"):
                self._flag(default, "RPL007")
        hot = self._is_hot_path(node)
        if hot:
            self._hot_depth += 1
        self.generic_visit(node)
        if hot:
            self._hot_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)  # type: ignore[arg-type]

    def _visit_loop(self, node: ast.stmt) -> None:
        if self._hot_depth > 0:
            self._flag(node, "RPL005",
                       "Python loop in a @hot_path kernel — vectorize, "
                       "or waive with the loop's cardinality argument")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- RPL006: bare except -------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(node, "RPL006")
        self.generic_visit(node)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the numpy package (usually ``np``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _time_bindings(tree: ast.Module
                   ) -> Tuple[Set[str], Set[str], Set[str]]:
    """Names bound to the ``time`` module and its clock functions.

    Returns ``(module_aliases, timer_names, wallclock_names)``: module
    aliases cover ``import time [as t]``; the name sets cover
    ``from time import perf_counter [as pc]`` (RPL009) and
    ``from time import time [as now]`` (RPL013) respectively.
    """
    aliases: Set[str] = set()
    names: Set[str] = set()
    wallclock: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "time":
                    aliases.add(item.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for item in node.names:
                if item.name in TIMER_FUNCTIONS:
                    names.add(item.asname or item.name)
                elif item.name in WALLCLOCK_TIME_FUNCTIONS:
                    wallclock.add(item.asname or item.name)
    return aliases, names, wallclock


def _datetime_bindings(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names bound to the ``datetime`` module and its clock classes.

    Returns ``(module_aliases, class_names)``: the first covers
    ``import datetime [as dt]``, the second ``from datetime import
    datetime / date [as d]``.
    """
    modules: Set[str] = set()
    classes: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "datetime":
                    modules.add(item.asname or "datetime")
        elif isinstance(node, ast.ImportFrom) \
                and node.module == "datetime":
            for item in node.names:
                if item.name in ("datetime", "date"):
                    classes.add(item.asname or item.name)
    return modules, classes


def check_source(source: str, path: str = "<string>",
                 kernel: Optional[bool] = None) -> List[Violation]:
    """Lint one module's source text; returns its violations.

    Args:
        source: the module text.
        path: reported in violations and used to classify kernel
            modules when ``kernel`` is None.
        kernel: force kernel-module status (fixture tests use this).
    """
    if kernel is None:
        kernel = is_kernel_module(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, exc.offset or 0,
                          "RPL000", f"syntax error: {exc.msg}")]
    waivers, waiver_errors = _collect_waivers(source)
    time_aliases, timer_names, wallclock_names = _time_bindings(tree)
    datetime_modules, datetime_classes = _datetime_bindings(tree)
    checker = _Checker(path, kernel, _numpy_aliases(tree),
                       timing_exempt=is_timing_exempt(path),
                       time_aliases=time_aliases,
                       timer_names=timer_names,
                       wallclock_names=wallclock_names,
                       datetime_modules=datetime_modules,
                       datetime_classes=datetime_classes,
                       stage_factory=is_stage_factory(path),
                       parallel_backend=is_parallel_backend(path),
                       shared_memory_owner=is_shared_memory_owner(path),
                       service_module=is_service_module(path),
                       core_hot_path=is_core_hot_path(path))
    checker.visit(tree)
    timing_only = is_timing_only_scope(path)
    kept: List[Violation] = []
    for violation in checker.violations:
        if timing_only and violation.rule not in TIMING_SCOPE_RULES:
            continue
        if waivers.get(violation.line) == violation.rule:
            continue
        if waivers.get(violation.line - 1) == violation.rule:
            continue
        kept.append(violation)
    for err in waiver_errors:
        kept.append(Violation(path, err.line, err.col, err.rule,
                              err.message))
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept


def iter_python_files(roots: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for root in roots:
        path = Path(root)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(roots: Sequence[str]) -> List[Violation]:
    """Lint every Python file under the given roots."""
    violations: List[Violation] = []
    for file_path in iter_python_files(roots):
        violations.extend(check_source(file_path.read_text(),
                                       str(file_path)))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Kernel-contract AST linter (rules RPL001-RPL015).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    files = sum(1 for _ in iter_python_files(args.paths))
    print(f"tools.lint: {files} file(s) clean")
    return 0
