"""Module-resolved call graph over a :class:`~tools.analysis.symbols.Program`.

Every function body is scanned once.  Each ``ast.Call`` is resolved to
a dotted callee name using, in order: local variables typed by
parameter annotations, annotated assignments and constructor calls;
``self``/``cls`` receivers; imported modules and symbols; chained calls
typed by the inner callee's return annotation; and instance-attribute
types harvested by the symbol table (``ctx.thermal_policy.evaluate``).

Dynamic dispatch is modelled by *virtual expansion*: a call that
resolves to a method of a class with known subclasses fans out to every
override, so ``create_stage(...).run(ctx)`` reaches every registered
stage and ``backend.map(fn, …)`` reaches both execution backends.
Function references passed as call arguments (``backend.map(solve, …)``)
produce reference edges, so worker entry points are reachable from
their dispatch sites.

Unresolvable callees are kept with a ``?.`` prefix (e.g. ``?.write``)
— passes must treat them as unknown, never as safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.analysis.symbols import (ClassInfo, FunctionInfo, Program)

__all__ = ["CallGraph", "CallSite", "build_callgraph"]

#: Builtin container constructors whose results we do not type.
_UNTYPED_BUILTINS = {"list", "dict", "set", "tuple", "frozenset", "str",
                     "int", "float", "bool", "bytes", "sorted", "len",
                     "zip", "enumerate", "range", "min", "max", "sum"}


@dataclass(frozen=True)
class CallSite:
    """One resolved (or unresolved) call inside a function.

    Attributes:
        caller: qualname of the calling function.
        callee: dotted callee name.  Internal program symbols carry
            their full qualname; external calls keep the best-effort
            dotted path (``numpy.random.default_rng``); unresolvable
            receivers yield ``?.<attr>``.
        node: the ``ast.Call`` (or the referencing expression for
            function-reference edges).
        internal: whether ``callee`` names a function in the program.
        is_reference: True for a function *reference* passed as an
            argument rather than a direct invocation.
    """

    caller: str
    callee: str
    node: ast.AST
    internal: bool
    is_reference: bool = False


class CallGraph:
    """Call sites per function plus reachability queries."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: caller qualname -> call sites in body order
        self.sites: Dict[str, List[CallSite]] = {}

    def callees(self, qualname: str) -> List[CallSite]:
        """Call sites inside one function (empty if unknown)."""
        return self.sites.get(qualname, [])

    def reachable(self, roots: Iterable[str],
                  stop_modules: Tuple[str, ...] = ()) -> Set[str]:
        """Internal functions reachable from ``roots`` (inclusive).

        Args:
            roots: function qualnames to start from.
            stop_modules: module-qualname prefixes the traversal does
                not descend *into* (their functions are still included
                when directly called, but their own callees are not
                followed — used to keep e.g. the observability layer
                out of a closure).
        """
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.program.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fn = self.program.functions.get(current)
            if fn is not None and any(
                    fn.module == p or fn.module.startswith(p + ".")
                    for p in stop_modules):
                continue
            for site in self.sites.get(current, ()):
                if site.internal and site.callee not in seen:
                    stack.append(site.callee)
        return seen


# ----------------------------------------------------------------------
class _FunctionScanner:
    """Resolves every call in one function body."""

    def __init__(self, program: Program, fn: FunctionInfo) -> None:
        self.program = program
        self.fn = fn
        self.module = fn.module
        #: local variable -> type qualname
        self.env: Dict[str, str] = {}
        self.sites: List[CallSite] = []
        self._build_env()

    # -- local environment --------------------------------------------
    def _build_env(self) -> None:
        fn = self.fn
        node = fn.node
        args = getattr(node, "args", None)
        if args is not None:
            all_args = (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs))
            for arg in all_args:
                if arg.annotation is not None:
                    resolved = self._type_of_annotation(arg.annotation)
                    if resolved:
                        self.env[arg.arg] = resolved
            if fn.class_qualname and all_args:
                first = all_args[0].arg
                if first in ("self", "cls"):
                    self.env[first] = fn.class_qualname
        # forward scan of assignments: first typing wins
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                resolved = self._type_of_annotation(stmt.annotation)
                if resolved:
                    self.env.setdefault(stmt.target.id, resolved)
            elif isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call):
                inferred = self._type_of_call(stmt.value)
                if inferred:
                    self.env.setdefault(stmt.targets[0].id, inferred)

    def _type_of_annotation(self, node: ast.AST) -> Optional[str]:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover
            return None
        return self.program.resolve_type(self.module, text)

    def _type_of_call(self, call: ast.Call) -> Optional[str]:
        """Type of a call's result: a class for constructors, the
        resolved return annotation for known functions."""
        callee = self._resolve_callable(call.func)
        if callee is None:
            return None
        if self.program.lookup_class(callee) is not None:
            return callee
        target = self.program.functions.get(callee)
        if target is None:
            return None
        returns = getattr(target.node, "returns", None)
        if returns is None:
            return None
        try:
            text = ast.unparse(returns)
        except Exception:  # pragma: no cover
            return None
        return self.program.resolve_type(target.module, text)

    # -- expression typing --------------------------------------------
    def _type_of_expr(self, node: ast.AST) -> Optional[str]:
        """Best-effort type qualname of an expression."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            return self._type_of_call(node)
        if isinstance(node, ast.Attribute):
            base_type = self._type_of_expr(node.value)
            if base_type is not None:
                cls = self.program.lookup_class(base_type)
                if cls is not None:
                    ann = self._attr_annotation(cls, node.attr)
                    if ann is not None:
                        return self.program.resolve_type(cls.module, ann)
            return None
        return None

    def _attr_annotation(self, cls: ClassInfo,
                         attr: str) -> Optional[str]:
        """Attribute type annotation text, searching the class MRO."""
        seen: Set[str] = set()
        stack = [cls.qualname]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            info = self.program.lookup_class(qual)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.bases)
        return None

    # -- call resolution ----------------------------------------------
    def _resolve_callable(self, func: ast.AST) -> Optional[str]:
        """Dotted name of the function/class a call expression targets."""
        if isinstance(func, ast.Name):
            name = func.id
            # nested function defined in this (or an enclosing) scope
            nested = f"{self.fn.qualname}.<locals>.{name}"
            if nested in self.program.functions:
                return nested
            if self.fn.parent:
                sibling = f"{self.fn.parent}.<locals>.{name}"
                if sibling in self.program.functions:
                    return sibling
            resolved = self.program.resolve(self.module, name)
            if resolved != name:
                return resolved
            return name  # builtin or truly global
        if isinstance(func, ast.Attribute):
            # 1) receiver with a known type -> method on that class
            recv_type = self._type_of_expr(func.value)
            if recv_type is not None \
                    and self.program.lookup_class(recv_type) is not None:
                return f"{recv_type}.{func.attr}"
            # 2) dotted module/class path (np.random.default_rng,
            #    repro.obs.get_recorder, SomeClass.method)
            try:
                full = ast.unparse(func)
            except Exception:  # pragma: no cover
                full = None
            if full is not None and _is_dotted(full):
                return self.program.resolve(self.module, full)
            # 3) chained/opaque receiver: keep the attr as unknown
            return f"?.{func.attr}"
        return None

    def _canonical_method(self, callee: str
                          ) -> Tuple[str, bool, Optional[str],
                                     Optional[str]]:
        """Resolve a ``Class.method`` callee through the MRO.

        Returns ``(canonical_name, internal, class_qualname, method)``
        where ``class_qualname``/``method`` are set when the callee is
        a method call eligible for virtual expansion.
        """
        program = self.program
        if callee in program.functions:
            fn = program.functions[callee]
            return callee, True, fn.class_qualname, fn.name
        head, _, attr = callee.rpartition(".")
        if head and program.lookup_class(head) is not None:
            found = program.resolve_method(head, attr)
            if found is not None:
                return found.qualname, True, head, attr
            return callee, False, head, attr
        # constructor: resolve a class name to its __init__
        cls = program.lookup_class(callee)
        if cls is not None:
            init = program.resolve_method(cls.qualname, "__init__")
            if init is not None:
                return init.qualname, True, None, None
            return cls.qualname, False, None, None
        # package re-export of a function: repro.obs.get_recorder
        mod = program.modules.get(head)
        if mod is not None and attr in mod.imports:
            target = mod.imports[attr]
            if target in program.functions:
                return target, True, None, None
            if program.lookup_class(target) is not None:
                return self._canonical_method(target)[0:2] + (None, None)
        return callee, False, None, None

    # -- scanning ------------------------------------------------------
    def scan(self) -> List[CallSite]:
        for node in ast.walk(self.fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not self.fn.node:
                # nested defs are separate FunctionInfos; add an edge
                # (defining implies potential execution on this path)
                nested = f"{self.fn.qualname}.<locals>.{node.name}"
                if nested in self.program.functions:
                    self.sites.append(CallSite(
                        self.fn.qualname, nested, node, True))
                continue
            if not isinstance(node, ast.Call):
                continue
            self._scan_call(node)
        return self.sites

    def _scan_call(self, call: ast.Call) -> None:
        callee = self._resolve_callable(call.func)
        if callee is None:
            callee = "?.<unknown>"
        canonical, internal, cls_qual, method = \
            self._canonical_method(callee)
        self.sites.append(CallSite(self.fn.qualname, canonical, call,
                                   internal))
        # virtual expansion over subclass overrides
        if cls_qual is not None and method is not None:
            for override in self.program.overrides(cls_qual, method):
                if override.qualname != canonical:
                    self.sites.append(CallSite(
                        self.fn.qualname, override.qualname, call, True))
        # function references passed as arguments
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                try:
                    text = ast.unparse(arg)
                except Exception:  # pragma: no cover
                    continue
                if not _is_dotted(text):
                    continue
                resolved = self.program.resolve(self.module, text)
                ref, internal_ref, _, _ = self._canonical_method(resolved)
                if internal_ref:
                    self.sites.append(CallSite(
                        self.fn.qualname, ref, arg, True,
                        is_reference=True))


def _is_dotted(text: str) -> bool:
    return all(part.isidentifier() for part in text.split("."))


def build_callgraph(program: Program) -> CallGraph:
    """Scan every function in the program and return the call graph."""
    graph = CallGraph(program)
    for fn in program.functions.values():
        graph.sites[fn.qualname] = _FunctionScanner(program, fn).scan()
    return graph
