"""Fork-safety of ``repro.parallel`` dispatch (RPA3xx).

Worker functions shipped through ``ExecutionBackend.map`` run in
separate processes: their payloads must pickle, and their transitive
closure must not depend on module-level mutable state that forked
workers would silently diverge on.

======== ==============================================================
RPA301   Task-payload field whose type is known-unpicklable (callable,
         lambda, thread/process handle, open file, generator).  [error]
RPA302   Task-payload field whose type cannot be proven picklable by
         construction (not a scalar, str/bytes, tuple, ndarray, or a
         recursively-checked internal dataclass).  [warning]
RPA303   Write to module-level mutable state from the worker closure
         (``global`` rebinding, or a mutating method / subscript
         store on a module-level container).  Reads are fine — fork
         inherits a copy; writes diverge between workers.  [warning]
======== ==============================================================

Payloads are discovered structurally: every function *reference*
passed to a ``map`` implementation in ``repro.parallel`` is a worker
entry point, and its first parameter annotation names the payload
type.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from tools.analysis.findings import Finding
from tools.analysis.passes import (AnalysisContext, AnalysisPass,
                                   finding_at, iter_own_nodes,
                                   register_pass)
from tools.analysis.symbols import ClassInfo, FunctionInfo

#: Annotation heads that are picklable by construction.
PICKLABLE_HEADS = {
    "int", "float", "complex", "bool", "str", "bytes", "None",
    "NoneType", "tuple", "Tuple", "typing.Tuple", "frozenset",
    "FrozenSet", "typing.FrozenSet", "numpy.ndarray", "ndarray",
    "npt.NDArray", "numpy.typing.NDArray", "NDArray", "FloatArray",
    "IntArray", "Optional", "typing.Optional", "Sequence",
    "typing.Sequence", "List", "list", "Dict", "dict", "Mapping",
    "typing.Mapping",
}

#: Annotation heads that are known-unpicklable (RPA301).
UNPICKLABLE_HEADS = {
    "Callable", "typing.Callable", "collections.abc.Callable",
    "lambda", "Lock", "RLock", "threading.Lock", "threading.RLock",
    "Thread", "threading.Thread", "Process",
    "multiprocessing.Process", "Pool", "Generator",
    "typing.Generator", "Iterator", "typing.Iterator", "IO",
    "typing.IO", "TextIO", "BinaryIO",
}

#: Mutating container methods (RPA303).
MUTATING_METHODS = ("append", "extend", "insert", "remove", "pop",
                    "popitem", "clear", "update", "add", "discard",
                    "setdefault", "move_to_end", "appendleft",
                    "sort", "reverse")


def _annotation_heads(text: str) -> List[str]:
    """Flatten an annotation into its identifier heads
    (``Optional[Tuple[int, ...]]`` -> Optional, Tuple, int)."""
    heads: List[str] = []
    token = ""
    for ch in text:
        if ch.isalnum() or ch in "._":
            token += ch
        else:
            if token:
                heads.append(token)
            token = ""
    if token:
        heads.append(token)
    return [h for h in heads if h and not h[0].isdigit()
            and h != "..."]


def find_workers(ctx: AnalysisContext) -> List[Tuple[FunctionInfo,
                                                     FunctionInfo]]:
    """(dispatching function, worker function) pairs: function
    references passed to a ``repro.parallel`` ``map`` implementation."""
    map_impls = {
        fn.qualname for fn in ctx.program.functions.values()
        if fn.name == "map" and fn.module.startswith("repro.parallel")
    }
    pairs: List[Tuple[FunctionInfo, FunctionInfo]] = []
    for caller, sites in sorted(ctx.graph.sites.items()):
        map_calls = [s.node for s in sites
                     if s.callee in map_impls
                     and isinstance(s.node, ast.Call)]
        if not map_calls:
            continue
        arg_ids = {id(call.args[0]) for call in map_calls
                   if call.args}
        for site in sites:
            if site.is_reference and id(site.node) in arg_ids:
                worker = ctx.program.functions.get(site.callee)
                dispatcher = ctx.program.functions.get(caller)
                if worker is not None and dispatcher is not None:
                    pairs.append((dispatcher, worker))
    return pairs


def payload_class(ctx: AnalysisContext,
                  worker: FunctionInfo) -> Optional[ClassInfo]:
    """The internal class annotating the worker's first parameter."""
    args = getattr(worker.node, "args", None)
    if args is None:
        return None
    all_args = list(args.posonlyargs) + list(args.args)
    if not all_args or all_args[0].annotation is None:
        return None
    try:
        text = ast.unparse(all_args[0].annotation)
    except Exception:  # pragma: no cover
        return None
    resolved = ctx.program.resolve_type(worker.module, text)
    if resolved is None:
        return None
    return ctx.program.lookup_class(resolved)


@register_pass
class ForkSafetyPass(AnalysisPass):
    name = "fork-safety"
    description = ("picklability of repro.parallel task payloads and "
                   "module-state writes in worker closures "
                   "(RPA301-RPA303)")

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        pairs = find_workers(ctx)
        checked_payloads: Set[str] = set()
        worker_roots = []
        for _dispatcher, worker in pairs:
            worker_roots.append(worker.qualname)
            payload = payload_class(ctx, worker)
            if payload is not None \
                    and payload.qualname not in checked_payloads:
                checked_payloads.add(payload.qualname)
                self._check_payload(ctx, payload, worker, findings,
                                    set())
        closure = ctx.graph.reachable(sorted(set(worker_roots)))
        for qualname in sorted(closure):
            fn = ctx.program.functions.get(qualname)
            if fn is not None:
                self._check_global_writes(ctx, fn, findings)
        return findings

    # -- RPA301/RPA302: payload field types ---------------------------
    def _check_payload(self, ctx: AnalysisContext, payload: ClassInfo,
                       worker: FunctionInfo,
                       findings: List[Finding], seen: Set[str]) -> None:
        if payload.qualname in seen:
            return
        seen.add(payload.qualname)
        for field_name, annotation in payload.fields.items():
            if annotation is None:
                findings.append(Finding(
                    rule="RPA302", path=str(payload.path),
                    line=payload.node.lineno, col=0,
                    symbol=payload.qualname,
                    message=(f"payload field {field_name!r} has no "
                             f"annotation — picklability cannot be "
                             f"proven for {worker.name}() dispatch"),
                    level="warning", pass_name=self.name))
                continue
            self._check_field(ctx, payload, worker, field_name,
                              annotation, findings, seen)

    def _check_field(self, ctx: AnalysisContext, payload: ClassInfo,
                     worker: FunctionInfo, field_name: str,
                     annotation: str, findings: List[Finding],
                     seen: Set[str]) -> None:
        for head in _annotation_heads(annotation):
            short = head.rsplit(".", 1)[-1]
            if head in UNPICKLABLE_HEADS or short in UNPICKLABLE_HEADS:
                findings.append(Finding(
                    rule="RPA301", path=str(payload.path),
                    line=payload.node.lineno, col=0,
                    symbol=payload.qualname,
                    message=(f"payload field {field_name!r}: "
                             f"{annotation} is not picklable — "
                             f"{worker.name}() dispatch would fail "
                             f"under the process backend"),
                    level="error", pass_name=self.name))
                continue
            if head in PICKLABLE_HEADS or short in PICKLABLE_HEADS:
                continue
            resolved = ctx.program.resolve_type(payload.module, head)
            inner = ctx.program.lookup_class(resolved) \
                if resolved else None
            if inner is not None:
                if inner.is_dataclass:
                    self._check_payload(ctx, inner, worker, findings,
                                        seen)
                    continue
                findings.append(Finding(
                    rule="RPA302", path=str(payload.path),
                    line=payload.node.lineno, col=0,
                    symbol=payload.qualname,
                    message=(f"payload field {field_name!r}: "
                             f"{head} is not a dataclass — "
                             f"picklability not provable by "
                             f"construction for {worker.name}()"),
                    level="warning", pass_name=self.name))
                continue
            findings.append(Finding(
                rule="RPA302", path=str(payload.path),
                line=payload.node.lineno, col=0,
                symbol=payload.qualname,
                message=(f"payload field {field_name!r}: unknown "
                         f"type {head} — picklability not provable "
                         f"for {worker.name}() dispatch"),
                level="warning", pass_name=self.name))

    # -- RPA303: module-state writes in the worker closure ------------
    def _check_global_writes(self, ctx: AnalysisContext,
                             fn: FunctionInfo,
                             findings: List[Finding]) -> None:
        mod = ctx.program.modules.get(fn.module)
        if mod is None or not mod.mutable_globals:
            return
        declared_global: Set[str] = set()
        local_names: Set[str] = set()
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
        shadowed = local_names - declared_global
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                shadowed.add(arg.arg)

        def is_module_state(name: str) -> bool:
            return (name in mod.mutable_globals
                    and name not in shadowed) \
                or name in declared_global

        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    base = _store_base(target)
                    if base is not None and is_module_state(base) \
                            and not isinstance(target, ast.Name):
                        self._flag_write(ctx, fn, node, base, findings)
                    elif isinstance(target, ast.Name) \
                            and target.id in declared_global:
                        self._flag_write(ctx, fn, node, target.id,
                                         findings)
            elif isinstance(node, ast.AugAssign):
                base = _store_base(node.target)
                if base is not None and is_module_state(base):
                    self._flag_write(ctx, fn, node, base, findings)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = _store_base(target)
                    if base is not None and is_module_state(base):
                        self._flag_write(ctx, fn, node, base, findings)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATING_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and is_module_state(node.func.value.id):
                self._flag_write(ctx, fn, node, node.func.value.id,
                                 findings)

    def _flag_write(self, ctx: AnalysisContext, fn: FunctionInfo,
                    node: ast.AST, name: str,
                    findings: List[Finding]) -> None:
        findings.append(finding_at(
            ctx, fn, node, "RPA303",
            f"write to module-level mutable {name!r} inside the "
            f"worker closure — forked workers diverge silently; "
            f"pass state through the task payload",
            "warning", self.name))


def _store_base(target: ast.AST) -> Optional[str]:
    """Base name of a subscript/attribute store target."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None
