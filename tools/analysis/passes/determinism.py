"""Determinism closure from ``PlacementPipeline.run`` (RPA1xx).

Everything reachable from the pipeline entry point must derive its
randomness from the seeded, path-keyed ``SeedSequence`` tree (PR 5) and
must not let unordered-container iteration decide placement order:

======== ==============================================================
RPA101   Unseeded RNG construction (``default_rng()`` with no seed,
         ``random.Random()``, the ``random`` module's hidden global
         state) reachable from the pipeline.  [error]
RPA102   Entropy / wall-clock source (``os.urandom``, ``uuid.*``,
         ``secrets.*``, ``time.*``) reachable from the pipeline
         outside ``repro.obs``.  [error]
RPA103   ``for`` iteration over a ``set``-typed value — set order is
         arbitrary (hash- and history-dependent), so anything
         accumulated across the loop is trajectory-visible.  Wrap the
         iterable in ``sorted(...)``.  [error]
RPA104   Iteration over ``dict.keys()`` feeding an array constructor
         or ordered accumulation — insertion-ordered in CPython, so
         deterministic today, but fragile; flagged for review.  [note]
======== ==============================================================

``repro.obs`` is a traversal stop: the observability layer owns
timestamps and its output never feeds back into placement state.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.analysis.findings import Finding
from tools.analysis.passes import (AnalysisContext, AnalysisPass,
                                   finding_at, iter_own_nodes,
                                   register_pass)
from tools.analysis.symbols import FunctionInfo

#: Entry points whose transitive closure is analysed.
ROOTS = ("repro.core.pipeline.PlacementPipeline.run",)

#: Module prefixes the closure does not descend into.
STOP_MODULES = ("repro.obs",)

#: Dotted call targets that are entropy sources (RPA102).
ENTROPY_PREFIXES = ("os.urandom", "uuid.", "secrets.", "time.")

#: RNG constructors that are unseeded when called with no arguments.
SEEDED_CONSTRUCTORS = ("numpy.random.default_rng", "random.Random",
                       "numpy.random.SeedSequence")

#: ``random``-module functions that use the hidden global state.
GLOBAL_RANDOM_PREFIX = "random."


def _is_set_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


class _BodyScanner(ast.NodeVisitor):
    """Single-function scan for RPA101-RPA104 patterns."""

    def __init__(self, ctx: AnalysisContext, fn: FunctionInfo,
                 pass_name: str) -> None:
        self.ctx = ctx
        self.fn = fn
        self.pass_name = pass_name
        self.findings: List[Finding] = []
        #: local names bound to set values
        self.set_locals: Set[str] = set()
        self._harvest_set_locals()

    def _harvest_set_locals(self) -> None:
        for node in iter_own_nodes(self.fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and _is_set_literal(node.value):
                        self.set_locals.add(target.id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                try:
                    ann = ast.unparse(node.annotation)
                except Exception:  # pragma: no cover
                    continue
                head = ann.split("[", 1)[0].rsplit(".", 1)[-1]
                if head in ("Set", "set", "FrozenSet", "frozenset",
                            "MutableSet"):
                    self.set_locals.add(node.target.id)

    def _flag(self, node: ast.AST, rule: str, message: str,
              level: str = "error") -> None:
        self.findings.append(finding_at(self.ctx, self.fn, node, rule,
                                        message, level, self.pass_name))

    # -- RPA103/RPA104: unordered iteration ---------------------------
    def visit_For(self, node: ast.For) -> None:
        it = node.iter
        if isinstance(it, ast.Name) and it.id in self.set_locals:
            self._flag(node, "RPA103",
                       f"iteration over set {it.id!r} on a pipeline "
                       f"path — set order is arbitrary; iterate "
                       f"sorted({it.id})")
        elif _is_keys_call(it):
            self._flag(node, "RPA104",
                       "iteration over dict.keys() on a pipeline path "
                       "— insertion-ordered in CPython but fragile; "
                       "prefer an explicit ordering",
                       level="note")
        self.generic_visit(node)

    # nested defs are separate closure members; scan them separately
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.fn.node:
            self.generic_visit(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        if node is self.fn.node:
            self.generic_visit(node)

    # -- RPA101/RPA102/RPA104: calls ----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_rng(node, dotted)
            self._check_entropy(node, dotted)
            if dotted.rsplit(".", 1)[-1] in ("fromiter", "array",
                                             "asarray", "list",
                                             "tuple"):
                for arg in node.args:
                    if _is_keys_call(arg):
                        self._flag(node, "RPA104",
                                   "dict.keys() feeding an ordered "
                                   "constructor on a pipeline path — "
                                   "insertion-ordered in CPython but "
                                   "fragile; prefer an explicit "
                                   "ordering", level="note")
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, dotted: str) -> None:
        if dotted in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self._flag(node, "RPA101",
                           f"{dotted}() constructed without a seed on "
                           f"a pipeline path — derive seeds from the "
                           f"run's SeedSequence tree")
            return
        if dotted.startswith(GLOBAL_RANDOM_PREFIX) \
                and not dotted.startswith("random.Random"):
            self._flag(node, "RPA101",
                       f"{dotted}() uses the hidden global RNG state "
                       f"on a pipeline path — use a seeded Generator")

    def _check_entropy(self, node: ast.Call, dotted: str) -> None:
        for prefix in ENTROPY_PREFIXES:
            if dotted == prefix.rstrip(".") or dotted.startswith(prefix):
                self._flag(node, "RPA102",
                           f"{dotted}() is an entropy/wall-clock "
                           f"source on a pipeline path — route "
                           f"through repro.obs or a seeded Generator")
                return

    def _dotted(self, func: ast.AST) -> Optional[str]:
        try:
            text = ast.unparse(func)
        except Exception:  # pragma: no cover
            return None
        if not all(p.isidentifier() for p in text.split(".")):
            return None
        return self.ctx.program.resolve(self.fn.module, text)


def _is_keys_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args)


@register_pass
class DeterminismPass(AnalysisPass):
    name = "determinism"
    description = ("RNG seeding, entropy sources and unordered "
                   "iteration reachable from PlacementPipeline.run "
                   "(RPA101-RPA104)")

    roots = ROOTS
    stop_modules = STOP_MODULES

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        closure = ctx.graph.reachable(self.roots, self.stop_modules)
        for qualname in sorted(closure):
            fn = ctx.program.functions.get(qualname)
            if fn is None:
                continue
            if any(fn.module == p or fn.module.startswith(p + ".")
                   for p in self.stop_modules):
                continue
            scanner = _BodyScanner(ctx, fn, self.name)
            scanner.visit(fn.node)
            findings.extend(scanner.findings)
        return findings
