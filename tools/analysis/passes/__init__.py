"""Pluggable analysis passes over the program call graph.

Every pass receives an :class:`AnalysisContext` (symbol table + call
graph, built once) and returns :class:`~tools.analysis.findings.Finding`
objects.  Passes register themselves in :data:`PASS_REGISTRY` at import
time; ``python -m tools.analysis`` runs them in registration order.

Rule id ranges:

======== ==============================================================
RPL0xx   Single-node rules migrated from ``tools.lint`` (the ``lint``
         pass wraps the whole rule engine).
RPA1xx   Determinism closure from ``PlacementPipeline.run``.
RPA2xx   Hot-path purity closure from every ``@hot_path`` kernel.
RPA3xx   Fork-safety of ``repro.parallel`` task payloads and workers.
RPA4xx   ``@contract`` spec vs caller-side array construction.
======== ==============================================================
"""

from __future__ import annotations

import ast
import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from tools.analysis.callgraph import CallGraph, build_callgraph
from tools.analysis.findings import Finding
from tools.analysis.symbols import FunctionInfo, ModuleInfo, Program
from tools.analysis import lintrules

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "PASS_REGISTRY",
    "build_context",
    "enclosing_symbol",
    "register_pass",
]


@dataclass
class AnalysisContext:
    """Shared inputs for every pass: one parse, one graph build."""

    program: Program
    graph: CallGraph
    #: memoised per-module sorted function spans for symbol lookup
    _spans: Dict[str, List[Tuple[int, int, str]]] = field(
        default_factory=dict)

    def enclosing_symbol(self, module: str, line: int) -> str:
        """Qualname of the innermost function covering ``line``."""
        return enclosing_symbol(self, module, line)


def build_context(program: Program) -> AnalysisContext:
    return AnalysisContext(program, build_callgraph(program))


def enclosing_symbol(ctx: AnalysisContext, module: str,
                     line: int) -> str:
    """Innermost function qualname covering ``line`` (module if none)."""
    spans = ctx._spans.get(module)
    if spans is None:
        spans = []
        for fn in ctx.program.functions.values():
            if fn.module != module:
                continue
            end = getattr(fn.node, "end_lineno", fn.node.lineno)
            spans.append((fn.node.lineno, end or fn.node.lineno,
                          fn.qualname))
        spans.sort()
        ctx._spans[module] = spans
    best: Optional[str] = None
    best_width = 0
    starts = [s[0] for s in spans]
    hi = bisect.bisect_right(starts, line)
    for start, end, qual in spans[:hi]:
        if start <= line <= end:
            width = end - start
            if best is None or width <= best_width:
                best, best_width = qual, width
    return best if best is not None else module


class AnalysisPass:
    """Base class for passes.  Subclasses set ``name``/``description``
    and implement :meth:`run`."""

    name: str = ""
    description: str = ""

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        raise NotImplementedError


#: name -> pass factory, in registration (execution) order.
PASS_REGISTRY: Dict[str, Callable[[], AnalysisPass]] = {}


def register_pass(factory: Callable[[], AnalysisPass]
                  ) -> Callable[[], AnalysisPass]:
    instance = factory()
    if not instance.name:
        raise ValueError(f"pass {factory!r} has no name")
    PASS_REGISTRY[instance.name] = factory
    return factory


# ----------------------------------------------------------------------
@register_pass
class LintPass(AnalysisPass):
    """The migrated RPL000-RPL013 single-node rules, one module at a
    time, with the enclosing-function symbol attached so findings get
    stable fingerprints."""

    name = "lint"
    description = ("single-node kernel-contract rules RPL000-RPL013 "
                   "(migrated from tools.lint)")

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        for mod in ctx.program.modules.values():
            for violation in lintrules.check_source(mod.source,
                                                    str(mod.path)):
                findings.append(Finding(
                    rule=violation.rule,
                    path=str(mod.path),
                    line=violation.line,
                    col=violation.col,
                    symbol=ctx.enclosing_symbol(mod.qualname,
                                                violation.line),
                    message=violation.message,
                    level="error",
                    pass_name=self.name,
                ))
        return findings


def iter_own_nodes(root: ast.AST):
    """Walk ``root`` without descending into nested function/class
    bodies (those are separate symbols scanned on their own)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            stack.append(child)


def finding_at(ctx: AnalysisContext, fn: FunctionInfo, node: ast.AST,
               rule: str, message: str, level: str,
               pass_name: str) -> Finding:
    """Build a finding anchored at ``node`` inside ``fn``."""
    return Finding(
        rule=rule,
        path=str(fn.path),
        line=getattr(node, "lineno", fn.node.lineno),
        col=getattr(node, "col_offset", 0),
        symbol=fn.qualname,
        message=message,
        level=level,
        pass_name=pass_name,
    )


# Import the interprocedural passes so they self-register.  Order
# matters: lint first (registered above), then the closures.
from tools.analysis.passes import determinism  # noqa: E402,F401
from tools.analysis.passes import purity  # noqa: E402,F401
from tools.analysis.passes import forksafety  # noqa: E402,F401
from tools.analysis.passes import contracts  # noqa: E402,F401
