"""Contract-consistency pass (RPA4xx).

``@contract(shapes=..., dtypes=...)`` declares the runtime-checkable
array interface of a kernel (checked when ``REPRO_CONTRACTS=1``).
This pass checks the *static* side: at every internal call site of a
contracted function, arguments whose construction is statically
visible (``np.zeros((n, 3), dtype=...)`` and friends) are compared
against the spec, so shape/dtype drift is caught at lint time instead
of in the one CI job that runs with contracts enabled.

======== ==============================================================
RPA401   Caller passes an array whose statically-known rank (number
         of dimensions) differs from the ``shapes`` spec.  [error]
RPA402   Caller passes an array whose statically-known dtype family
         (floating vs integer vs bool) differs from the ``dtypes``
         spec.  [error]
======== ==============================================================

Only provable mismatches are reported: an argument whose construction
the analysis cannot see is skipped, never guessed.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from tools.analysis.findings import Finding
from tools.analysis.passes import (AnalysisContext, AnalysisPass,
                                   finding_at, iter_own_nodes,
                                   register_pass)
from tools.analysis.symbols import FunctionInfo

#: dtype expression suffix -> abstract family name.
DTYPE_FAMILIES: Dict[str, str] = {
    "float16": "floating", "float32": "floating",
    "float64": "floating", "float128": "floating",
    "floating": "floating", "double": "floating",
    "int8": "integer", "int16": "integer", "int32": "integer",
    "int64": "integer", "uint8": "integer", "uint16": "integer",
    "uint32": "integer", "uint64": "integer", "intp": "integer",
    "integer": "integer", "signedinteger": "integer",
    "int": "integer", "float": "floating", "bool": "bool",
    "bool_": "bool",
}

#: Constructors whose first positional argument is the shape.
SHAPE_CONSTRUCTORS = ("zeros", "empty", "ones", "full")


class ContractSpec:
    """Parsed ``@contract`` decorator of one function."""

    def __init__(self) -> None:
        #: param name -> declared rank
        self.ranks: Dict[str, int] = {}
        #: param name -> dtype family ("floating" | "integer" | "bool")
        self.dtypes: Dict[str, str] = {}


def parse_contract(fn: FunctionInfo) -> Optional[ContractSpec]:
    """Extract the spec from a ``@contract(...)`` decorator AST."""
    node = fn.node
    for dec in getattr(node, "decorator_list", ()):
        if not isinstance(dec, ast.Call):
            continue
        name = dec.func.attr if isinstance(dec.func, ast.Attribute) \
            else getattr(dec.func, "id", None)
        if name != "contract":
            continue
        spec = ContractSpec()
        for kw in dec.keywords:
            if kw.arg == "shapes" and isinstance(kw.value, ast.Dict):
                for key, value in zip(kw.value.keys, kw.value.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str) \
                            and isinstance(value, ast.Tuple):
                        spec.ranks[key.value] = len(value.elts)
            elif kw.arg == "dtypes" and isinstance(kw.value, ast.Dict):
                for key, value in zip(kw.value.keys, kw.value.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str):
                        family = _dtype_family(value)
                        if family is not None:
                            spec.dtypes[key.value] = family
        return spec
    return None


def _dtype_family(node: ast.AST) -> Optional[str]:
    """Abstract family of a dtype expression (``np.floating`` …)."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover
        return None
    return DTYPE_FAMILIES.get(text.rsplit(".", 1)[-1])


def _param_names(fn: FunctionInfo) -> List[str]:
    args = getattr(fn.node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in
             list(args.posonlyargs) + list(args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


class _ArrayFacts:
    """Statically-known rank/dtype of locals in one function."""

    def __init__(self, ctx: AnalysisContext,
                 fn: FunctionInfo) -> None:
        self.ranks: Dict[str, int] = {}
        self.dtypes: Dict[str, str] = {}
        numpy_names = {name for name, target
                       in ctx.program.modules[fn.module].imports.items()
                       if target == "numpy"} | {"numpy"}
        for node in iter_own_nodes(fn.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            name = node.targets[0].id
            facts = _call_facts(node.value, numpy_names)
            if facts is None:
                continue
            rank, family = facts
            # re-assignment with different facts -> unknowable
            if rank is not None:
                if name in self.ranks and self.ranks[name] != rank:
                    self.ranks[name] = -1
                else:
                    self.ranks.setdefault(name, rank)
            if family is not None:
                if name in self.dtypes and self.dtypes[name] != family:
                    self.dtypes[name] = "?"
                else:
                    self.dtypes.setdefault(name, family)


def _call_facts(call: ast.Call, numpy_names: set
                ) -> Optional[Tuple[Optional[int], Optional[str]]]:
    """(rank, dtype family) of a numpy constructor call, if visible."""
    func = call.func
    if not (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in numpy_names):
        return None
    rank: Optional[int] = None
    family: Optional[str] = None
    if func.attr in SHAPE_CONSTRUCTORS and call.args:
        shape = call.args[0]
        if isinstance(shape, (ast.Tuple, ast.List)):
            rank = len(shape.elts)
        elif isinstance(shape, (ast.Constant, ast.Name, ast.Attribute,
                                ast.BinOp)):
            rank = 1
    elif func.attr in ("arange", "linspace", "fromiter"):
        rank = 1
    for kw in call.keywords:
        if kw.arg == "dtype":
            family = _dtype_family(kw.value)
    if rank is None and family is None:
        return None
    return rank, family


@register_pass
class ContractPass(AnalysisPass):
    name = "contracts"
    description = ("@contract shape/dtype specs vs caller-side array "
                   "construction (RPA401-RPA402)")

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        specs: Dict[str, Tuple[FunctionInfo, ContractSpec,
                               List[str]]] = {}
        for fn in ctx.program.functions.values():
            if not fn.has_decorator("contract"):
                continue
            spec = parse_contract(fn)
            if spec is not None and (spec.ranks or spec.dtypes):
                specs[fn.qualname] = (fn, spec, _param_names(fn))
        findings: List[Finding] = []
        for caller_qual, sites in sorted(ctx.graph.sites.items()):
            caller = ctx.program.functions.get(caller_qual)
            if caller is None:
                continue
            facts: Optional[_ArrayFacts] = None
            for site in sites:
                if site.is_reference or site.callee not in specs \
                        or not isinstance(site.node, ast.Call):
                    continue
                if facts is None:
                    facts = _ArrayFacts(ctx, caller)
                target, spec, params = specs[site.callee]
                findings.extend(self._check_site(
                    ctx, caller, site.node, target, spec, params,
                    facts))
        return findings

    def _check_site(self, ctx: AnalysisContext, caller: FunctionInfo,
                    call: ast.Call, target: FunctionInfo,
                    spec: ContractSpec, params: List[str],
                    facts: _ArrayFacts) -> List[Finding]:
        findings: List[Finding] = []
        bound: Dict[str, ast.AST] = {}
        for index, arg in enumerate(call.args):
            if index < len(params):
                bound[params[index]] = arg
        for kw in call.keywords:
            if kw.arg is not None:
                bound[kw.arg] = kw.value
        for param, arg in bound.items():
            if not isinstance(arg, ast.Name):
                continue
            want_rank = spec.ranks.get(param)
            have_rank = facts.ranks.get(arg.id)
            if want_rank is not None and have_rank is not None \
                    and have_rank >= 0 and have_rank != want_rank:
                findings.append(finding_at(
                    ctx, caller, call, "RPA401",
                    f"argument {param!r} of {target.name}() is "
                    f"{have_rank}-d here but the @contract declares "
                    f"rank {want_rank}", "error", self.name))
            want_family = spec.dtypes.get(param)
            have_family = facts.dtypes.get(arg.id)
            if want_family is not None and have_family is not None \
                    and have_family != "?" \
                    and have_family != want_family:
                findings.append(finding_at(
                    ctx, caller, call, "RPA402",
                    f"argument {param!r} of {target.name}() is "
                    f"constructed as {have_family} here but the "
                    f"@contract declares {want_family}", "error",
                    self.name))
        return findings
