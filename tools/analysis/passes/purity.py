"""Hot-path purity closure (RPA2xx).

``@hot_path`` marks the kernels on the incremental-objective fast
path (Eq. 3 delta evaluation, bin density updates, move loops).  Their
*transitive closure* must stay free of anything that would turn an
O(1) delta into an I/O- or allocation-bound call:

======== ==============================================================
RPA201   Logging / printing (``logging.*``, ``print``,
         ``warnings.warn``) called from the hot-path closure.  [error]
RPA202   File I/O (``open``, ``Path.read_text``/``write_text``,
         ``np.save``/``load``, ``json``/``pickle`` dump/load) called
         from the hot-path closure.  [error]
RPA203   Exact thermal factorization (``repro.thermal.solver``
         assembly/``splu`` path) called from the hot-path closure —
         exact solves are scheduled by the fidelity policy, never
         inline in a kernel.  Generalizes RPL012 from import-level to
         call-level.  [error]
RPA204   Allocation-heavy numpy idiom (``np.concatenate`` /
         ``hstack`` / ``vstack`` / ``append`` / ``tile`` /
         ``repeat``) inside a loop in the hot-path closure — each
         call reallocates; preallocate outside the loop.  [warning]
======== ==============================================================

``repro.obs`` and ``repro.thermal.fidelity`` are traversal stops:
recorder counters are the sanctioned instrumentation channel, and the
fidelity policy is the *only* sanctioned scheduler of exact solves —
calling it from a kernel is the designed escape hatch, calling the
solver directly is not.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from tools.analysis.findings import Finding
from tools.analysis.passes import (AnalysisContext, AnalysisPass,
                                   finding_at, register_pass)
from tools.analysis.symbols import FunctionInfo

STOP_MODULES = ("repro.obs", "repro.thermal.fidelity")

#: Logging-ish callables (dotted prefixes or exact names).
LOGGING_CALLS = ("logging.", "print", "warnings.warn", "sys.stdout",
                 "sys.stderr")

#: File-I/O callables.
IO_CALLS = ("open", "numpy.save", "numpy.savez", "numpy.load",
            "numpy.savetxt", "numpy.loadtxt", "json.dump",
            "json.dumps", "json.load", "json.loads", "pickle.dump",
            "pickle.dumps", "pickle.load", "pickle.loads")

#: Method names that are file I/O on any receiver (pathlib etc.).
IO_METHODS = ("read_text", "write_text", "read_bytes", "write_bytes",
              "mkdir", "unlink", "rename")

#: Exact-factorization entry points (RPA203): the solver's assembly +
#: LU path and scipy's factorizer itself.
EXACT_SOLVER_CALLS = ("repro.thermal.solver.ThermalSolver._factorize",
                      "repro.thermal.solver.ThermalSolver._assemble",
                      "repro.thermal.solver.ThermalSolver.solve_powers",
                      "repro.thermal.solver.ThermalSolver"
                      ".solve_placement",
                      "scipy.sparse.linalg.splu")

#: Reallocating numpy calls that must not sit inside a loop (RPA204).
ALLOC_HEAVY = ("concatenate", "hstack", "vstack", "append", "tile",
               "repeat", "insert", "delete")


def hot_path_roots(ctx: AnalysisContext) -> List[str]:
    """Qualnames of every ``@hot_path``-decorated function."""
    return sorted(fn.qualname
                  for fn in ctx.program.functions.values()
                  if fn.has_decorator("hot_path"))


def _dotted(ctx: AnalysisContext, fn: FunctionInfo,
            func: ast.AST) -> Optional[str]:
    try:
        text = ast.unparse(func)
    except Exception:  # pragma: no cover
        return None
    if not all(p.isidentifier() for p in text.split(".")):
        return None
    return ctx.program.resolve(fn.module, text)


@register_pass
class PurityPass(AnalysisPass):
    name = "purity"
    description = ("logging, file I/O, exact thermal factorization "
                   "and allocation-heavy numpy reachable from "
                   "@hot_path kernels (RPA201-RPA204)")

    stop_modules = STOP_MODULES

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        roots = hot_path_roots(ctx)
        closure = ctx.graph.reachable(roots, self.stop_modules)
        for qualname in sorted(closure):
            fn = ctx.program.functions.get(qualname)
            if fn is None:
                continue
            if any(fn.module == p or fn.module.startswith(p + ".")
                   for p in self.stop_modules):
                continue
            findings.extend(self._scan(ctx, fn))
        return findings

    def _scan(self, ctx: AnalysisContext,
              fn: FunctionInfo) -> List[Finding]:
        findings: List[Finding] = []
        loop_nodes = _nodes_inside_loops(fn.node)
        for site in ctx.graph.callees(fn.qualname):
            if site.is_reference \
                    or not isinstance(site.node, ast.Call):
                continue
            call = site.node
            callee = site.callee
            dotted = callee if site.internal \
                else (_dotted(ctx, fn, call.func) or callee)
            self._check_logging(ctx, fn, call, dotted, findings)
            self._check_io(ctx, fn, call, dotted, findings)
            self._check_solver(ctx, fn, call, dotted, findings)
            self._check_alloc(ctx, fn, call, dotted, loop_nodes,
                              findings)
        return findings

    def _check_logging(self, ctx, fn, call, dotted, findings) -> None:
        for entry in LOGGING_CALLS:
            if dotted == entry.rstrip(".") \
                    or (entry.endswith(".")
                        and dotted.startswith(entry)):
                findings.append(finding_at(
                    ctx, fn, call, "RPA201",
                    f"{dotted}() in the hot-path closure — kernels "
                    f"must not log; use a Recorder counter",
                    "error", self.name))
                return

    def _check_io(self, ctx, fn, call, dotted, findings) -> None:
        if dotted in IO_CALLS:
            findings.append(finding_at(
                ctx, fn, call, "RPA202",
                f"{dotted}() performs file I/O in the hot-path "
                f"closure", "error", self.name))
            return
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in IO_METHODS:
            findings.append(finding_at(
                ctx, fn, call, "RPA202",
                f".{call.func.attr}() performs file I/O in the "
                f"hot-path closure", "error", self.name))

    def _check_solver(self, ctx, fn, call, dotted, findings) -> None:
        if dotted in EXACT_SOLVER_CALLS:
            findings.append(finding_at(
                ctx, fn, call, "RPA203",
                f"{dotted}() runs an exact thermal solve in the "
                f"hot-path closure — route through the thermal "
                f"fidelity policy", "error", self.name))

    def _check_alloc(self, ctx, fn, call, dotted, loop_nodes,
                     findings) -> None:
        head, _, attr = dotted.rpartition(".")
        if head in ("numpy", "numpy.ma") and attr in ALLOC_HEAVY \
                and id(call) in loop_nodes:
            findings.append(finding_at(
                ctx, fn, call, "RPA204",
                f"np.{attr}() inside a loop in the hot-path closure "
                f"— reallocates every iteration; preallocate",
                "warning", self.name))


def _nodes_inside_loops(root: ast.AST) -> Set[int]:
    """ids of AST nodes lexically inside a for/while loop of ``root``
    (nested function bodies excluded)."""
    inside: Set[int] = set()

    def walk(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            child_in_loop = in_loop or isinstance(
                node, (ast.For, ast.AsyncFor, ast.While))
            if child_in_loop:
                inside.add(id(child))
            walk(child, child_in_loop)

    walk(root, False)
    return inside
