"""SARIF 2.1.0 serialization of analyzer findings.

One run, one driver (``repro-analysis``); every rule that produced a
finding gets a ``reportingDescriptor`` so viewers can group by rule.
Suppressed (baselined) findings are emitted with a ``suppressions``
entry instead of being dropped — SARIF consumers show them greyed out
rather than losing the information.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from tools.analysis.findings import Finding

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVEL_MAP = {"error": "error", "warning": "warning", "note": "note"}


def to_sarif(findings: Sequence[Finding],
             suppressed: Sequence[Finding] = (),
             rule_docs: Optional[Dict[str, str]] = None,
             tool_version: str = "1.0.0") -> dict:
    """Build the SARIF log object (serialize with ``json.dumps``)."""
    rule_docs = rule_docs or {}
    rule_ids: List[str] = []
    for finding in list(findings) + list(suppressed):
        if finding.rule not in rule_ids:
            rule_ids.append(finding.rule)
    rule_ids.sort()
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}
    rules = [{
        "id": rule,
        "shortDescription": {
            "text": rule_docs.get(rule, rule),
        },
    } for rule in rule_ids]

    def result(finding: Finding, is_suppressed: bool) -> dict:
        entry = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _LEVEL_MAP[finding.level],
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
                "logicalLocations": [{
                    "fullyQualifiedName": finding.symbol,
                }],
            }],
            "partialFingerprints": {
                "reproAnalysis/v1": finding.fingerprint(),
            },
        }
        if finding.pass_name:
            entry["properties"] = {"pass": finding.pass_name}
        if is_suppressed:
            entry["suppressions"] = [{"kind": "external",
                                      "status": "accepted"}]
        return entry

    results = [result(f, False) for f in findings]
    results += [result(f, True) for f in suppressed]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def dumps(log: dict) -> str:
    return json.dumps(log, indent=2, sort_keys=False) + "\n"
