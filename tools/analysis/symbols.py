"""Module loading and symbol tables for the whole-program analyzer.

The analyzer works on a *program*: every module of a Python package
tree parsed into ASTs, with a qualified-name symbol table over the
functions, classes and imports each module defines.  Names are fully
qualified dotted paths (``repro.core.objective.ObjectiveState.rebuild``)
so that passes can speak about symbols unambiguously across modules.

Resolution is deliberately syntactic and best-effort: the goal is a
call graph precise enough to prove repo-specific invariants over
``src/repro`` (see :mod:`tools.analysis.callgraph`), not a general
type checker.  Anything the resolver cannot pin down stays *external*
and is reported as such — passes must treat unresolved names as
"unknown", never as "safe".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "Program",
           "load_program"]


@dataclass
class FunctionInfo:
    """One function or method definition.

    Attributes:
        qualname: fully qualified name, e.g.
            ``repro.core.moves.MoveOptimizer.global_pass``.  Nested
            functions append their own name to the enclosing
            function's qualname.
        module: qualified name of the defining module.
        name: bare function name.
        node: the defining AST node.
        class_qualname: qualified name of the enclosing class, if any.
        parent: qualname of the enclosing *function* for nested defs.
        decorators: resolved decorator names (dotted, best effort).
        path: source file path (for findings).
    """

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_qualname: Optional[str] = None
    parent: Optional[str] = None
    decorators: Tuple[str, ...] = ()
    path: str = ""

    @property
    def lineno(self) -> int:
        """Definition line (1-based)."""
        return getattr(self.node, "lineno", 0)

    def has_decorator(self, suffix: str) -> bool:
        """Whether any decorator's dotted name ends with ``suffix``."""
        return any(d == suffix or d.endswith("." + suffix)
                   for d in self.decorators)


@dataclass
class ClassInfo:
    """One class definition with its statically visible members.

    Attributes:
        qualname: fully qualified class name.
        module: qualified name of the defining module.
        name: bare class name.
        node: the ``ast.ClassDef``.
        bases: resolved base-class qualnames (best effort).
        methods: bare method name -> :class:`FunctionInfo`.
        fields: dataclass/annotated class-level fields, in declaration
            order: name -> annotation source text (``None`` when the
            assignment carries no annotation).
        attr_types: instance attribute name -> resolved type qualname,
            harvested from class-level annotations, ``self.x = Cls(...)``
            constructor assignments and ``@property`` return
            annotations.
        is_dataclass: whether a ``dataclass`` decorator is present.
        path: source file path.
    """

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    fields: Dict[str, Optional[str]] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    path: str = ""


@dataclass
class ModuleInfo:
    """One parsed module with its local symbol table.

    Attributes:
        qualname: dotted module name (``repro.core.objective``).
        path: source file path.
        source: the module text (kept so single-file passes can re-lint
            without re-reading).
        tree: the parsed AST.
        imports: local binding -> imported target qualname
            (``np`` -> ``numpy``, ``create_stage`` ->
            ``repro.core.stages.create_stage``).
        functions: bare name -> module-level :class:`FunctionInfo`.
        classes: bare name -> :class:`ClassInfo`.
        var_types: module-level variable -> resolved type qualname for
            ``X = SomeClass(...)`` / annotated module-level assignments.
        mutable_globals: module-level names bound to mutable literals
            or mutable constructor calls (``{}``, ``[]``, ``set()``,
            ``OrderedDict()`` …) — candidate process-local state for
            the fork-safety pass.
    """

    qualname: str
    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    var_types: Dict[str, str] = field(default_factory=dict)
    mutable_globals: Set[str] = field(default_factory=set)


#: Constructor names whose module-level result is mutable state.
_MUTABLE_FACTORIES = ("dict", "list", "set", "OrderedDict", "defaultdict",
                      "deque", "Counter", "bytearray")


def _annotation_text(node: Optional[ast.AST]) -> Optional[str]:
    """Source text of an annotation expression (``None`` if absent)."""
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_literal(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = _dotted_name(value.func)
        if name is not None \
                and name.split(".")[-1] in _MUTABLE_FACTORIES:
            return True
    return False


class Program:
    """All modules of one or more package trees, with lookup helpers."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: every function in the program, including methods and
        #: nested functions, by qualname
        self.functions: Dict[str, FunctionInfo] = {}
        #: every class, by qualname
        self.classes: Dict[str, ClassInfo] = {}
        #: class qualname -> direct subclasses' qualnames
        self.subclasses: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------
    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.qualname] = info

    def finalize(self) -> None:
        """Build the cross-module indexes after all modules are added."""
        self.functions.clear()
        self.classes.clear()
        self.subclasses.clear()
        for mod in self.modules.values():
            for fn in _iter_functions(mod):
                self.functions[fn.qualname] = fn
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
        for cls in self.classes.values():
            # bases named without a module prefix (defined in the same
            # module) only become resolvable once every module is
            # loaded, so qualify them here
            cls.bases = tuple(
                base if base in self.classes
                else self.resolve(cls.module, base)
                for base in cls.bases)
            for base in cls.bases:
                self.subclasses.setdefault(base, set()).add(cls.qualname)

    # -- name resolution -----------------------------------------------
    def resolve(self, module: str, dotted: str) -> str:
        """Resolve a dotted name as seen from ``module``.

        The first segment is looked up in the module's imports and
        local definitions; the remainder is appended verbatim.  Names
        that resolve to nothing local come back unchanged (external).
        """
        mod = self.modules.get(module)
        if mod is None:
            return dotted
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in mod.imports:
            target = mod.imports[head]
        elif head in mod.functions or head in mod.classes \
                or head in mod.var_types:
            target = f"{module}.{head}"
        if target is None:
            return dotted
        resolved = target if not rest else f"{target}.{rest}"
        # an imported *module* member may itself be a re-export; one
        # more hop covers the common ``from repro import obs`` pattern
        return resolved

    def resolve_type(self, module: str, annotation: Optional[str]
                     ) -> Optional[str]:
        """Resolve an annotation's core class name to a qualname.

        Strips ``Optional[...]`` / quotes, so ``Optional["Foo"]``
        resolves like ``Foo``.  Container annotations resolve to the
        container head (``Tuple``, ``List`` …) and are left to the
        passes that care about element types.
        """
        if not annotation:
            return None
        text = annotation.strip().strip("\"'")
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1].strip().strip("\"'")
        # leave subscripted containers to the caller
        if "[" in text:
            text = text.split("[", 1)[0]
        resolved = self.resolve(module, text)
        return resolved

    def lookup_class(self, qualname: Optional[str]) -> Optional[ClassInfo]:
        """The class for a qualname, following one import indirection."""
        if qualname is None:
            return None
        cls = self.classes.get(qualname)
        if cls is not None:
            return cls
        # maybe it resolves through a package re-export:
        # repro.thermal.ThermalSolver -> repro.thermal.solver.ThermalSolver
        head, _, name = qualname.rpartition(".")
        mod = self.modules.get(head)
        if mod is not None and name in mod.imports:
            return self.classes.get(mod.imports[name])
        return None

    def resolve_method(self, class_qualname: str, method: str,
                       _seen: Optional[Set[str]] = None
                       ) -> Optional[FunctionInfo]:
        """Find ``method`` on a class or its statically known bases."""
        seen = _seen if _seen is not None else set()
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        cls = self.lookup_class(class_qualname)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            found = self.resolve_method(base, method, seen)
            if found is not None:
                return found
        return None

    def overrides(self, class_qualname: str, method: str
                  ) -> List[FunctionInfo]:
        """Every subclass override of ``method`` (transitively).

        This is how the call graph models dynamic dispatch: a call on a
        base-typed receiver (``Stage.run``, ``ExecutionBackend.map``)
        fans out to every registered implementation.
        """
        out: List[FunctionInfo] = []
        stack = list(self.subclasses.get(class_qualname, ()))
        seen: Set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            cls = self.classes.get(sub)
            if cls is not None and method in cls.methods:
                out.append(cls.methods[method])
            stack.extend(self.subclasses.get(sub, ()))
        out.sort(key=lambda f: f.qualname)
        return out


# ----------------------------------------------------------------------
# module parsing
# ----------------------------------------------------------------------
def _collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    package_parts = module.split(".")
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    imports[item.asname] = item.name
                else:
                    # ``import a.b`` binds ``a``; attribute chains on it
                    # resolve naturally because the binding equals the
                    # top-level package name
                    top = item.name.split(".", 1)[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                # relative import: resolve against this module's package
                base_parts = package_parts[:-node.level] \
                    if node.level <= len(package_parts) else []
                if node.module:
                    base_parts = base_parts + node.module.split(".")
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname or item.name
                imports[bound] = f"{base}.{item.name}" if base \
                    else item.name
    return imports


def _decorator_names(node: ast.AST, module: str,
                     imports: Dict[str, str]) -> Tuple[str, ...]:
    names: List[str] = []
    for deco in getattr(node, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = _dotted_name(target)
        if dotted is None:
            continue
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head)
        if resolved is None:
            names.append(dotted)
        else:
            names.append(f"{resolved}.{rest}" if rest else resolved)
    return tuple(names)


def _harvest_attr_types(cls: ClassInfo, module: str,
                        program_imports: Dict[str, str]) -> None:
    """Fill ``cls.attr_types`` from annotations, ``__init__`` and
    properties.  Resolution of the type *names* happens lazily in
    :meth:`Program.resolve_type`; here we record annotation text."""
    # class-level annotated fields double as instance attribute types
    for name, ann in cls.fields.items():
        if ann:
            cls.attr_types.setdefault(name, ann)
    for method in cls.methods.values():
        node = method.node
        decorators = method.decorators
        returns = getattr(node, "returns", None)
        if any(d == "property" or d.endswith(".property")
               or d.endswith(".cached_property") for d in decorators):
            text = _annotation_text(returns)
            if text:
                cls.attr_types.setdefault(method.name, text)
            continue
        args = getattr(node, "args", None)
        param_anns: Dict[str, str] = {}
        if args is not None:
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                text = _annotation_text(arg.annotation)
                if text:
                    param_anns[arg.arg] = text
        for stmt in ast.walk(node):  # self.x assignments in any method
            target: Optional[ast.expr] = None
            ann_text: Optional[str] = None
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                ann_text = _annotation_text(stmt.annotation)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(stmt.value, ast.Call):
                    ann_text = _dotted_name(stmt.value.func)
                elif isinstance(stmt.value, ast.Name):
                    # self.x = <annotated parameter>
                    ann_text = param_anns.get(stmt.value.id)
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if ann_text:
                cls.attr_types.setdefault(target.attr, ann_text)


def _parse_class(node: ast.ClassDef, module: str, path: str,
                 imports: Dict[str, str]) -> ClassInfo:
    qualname = f"{module}.{node.name}"
    bases: List[str] = []
    for base in node.bases:
        dotted = _dotted_name(base)
        if dotted is None:
            continue
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head)
        bases.append((f"{resolved}.{rest}" if rest else resolved)
                     if resolved else dotted)
    decorators = _decorator_names(node, module, imports)
    is_dataclass = any(d == "dataclass" or d.endswith(".dataclass")
                       for d in decorators)
    cls = ClassInfo(qualname=qualname, module=module, name=node.name,
                    node=node, bases=tuple(bases),
                    is_dataclass=is_dataclass, path=path)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            cls.fields[stmt.target.id] = _annotation_text(stmt.annotation)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(
                qualname=f"{qualname}.{stmt.name}", module=module,
                name=stmt.name, node=stmt, class_qualname=qualname,
                decorators=_decorator_names(stmt, module, imports),
                path=path)
            cls.methods[stmt.name] = fn
    _harvest_attr_types(cls, module, imports)
    return cls


def _parse_module(path: Path, qualname: str) -> ModuleInfo:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    imports = _collect_imports(tree, qualname)
    info = ModuleInfo(qualname=qualname, path=str(path), source=source,
                      tree=tree, imports=imports)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = FunctionInfo(
                qualname=f"{qualname}.{stmt.name}", module=qualname,
                name=stmt.name, node=stmt,
                decorators=_decorator_names(stmt, qualname, imports),
                path=str(path))
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _parse_class(stmt, qualname,
                                                   str(path), imports)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if _is_mutable_literal(stmt.value):
                info.mutable_globals.add(name)
            if isinstance(stmt.value, ast.Call):
                ctor = _dotted_name(stmt.value.func)
                if ctor:
                    info.var_types[name] = ctor
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if stmt.value is not None \
                    and _is_mutable_literal(stmt.value):
                info.mutable_globals.add(name)
            ann = _annotation_text(stmt.annotation)
            if ann:
                info.var_types[name] = ann
    return info


def _iter_functions(mod: ModuleInfo) -> Iterable[FunctionInfo]:
    """Every function in a module: top-level, methods, and nested."""
    pending: List[FunctionInfo] = list(mod.functions.values())
    for cls in mod.classes.values():
        pending.extend(cls.methods.values())
    seen: Set[str] = set()
    while pending:
        fn = pending.pop()
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        yield fn
        for stmt in ast.walk(fn.node):
            if stmt is fn.node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{fn.qualname}.<locals>.{stmt.name}"
                if nested_qual in seen:
                    continue
                pending.append(FunctionInfo(
                    qualname=nested_qual, module=fn.module,
                    name=stmt.name, node=stmt,
                    class_qualname=fn.class_qualname,
                    parent=fn.qualname,
                    decorators=_decorator_names(stmt, fn.module,
                                                mod.imports),
                    path=fn.path))


def _module_qualname(file_path: Path, root: Path, package: str) -> str:
    rel = file_path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


def load_program(roots: Sequence[str]) -> Program:
    """Parse every ``.py`` file under the given package directories.

    Each root directory is treated as one package whose name is the
    directory's basename (``src/repro`` -> package ``repro``), matching
    how the repository is laid out on ``PYTHONPATH=src``.  A root that
    is a single file becomes a top-level module.
    """
    program = Program()
    for root in roots:
        root_path = Path(root)
        if root_path.is_file():
            program.add_module(_parse_module(root_path, root_path.stem))
            continue
        package = root_path.name
        for file_path in sorted(root_path.rglob("*.py")):
            qualname = _module_qualname(file_path, root_path, package)
            try:
                program.add_module(_parse_module(file_path, qualname))
            except SyntaxError:
                # single-file lint reports the syntax error; the
                # whole-program passes simply skip the module
                continue
    program.finalize()
    return program
