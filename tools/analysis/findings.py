"""Finding model shared by every analysis pass.

A :class:`Finding` is one rule violation at a source location, tagged
with the *symbol* (enclosing function or module qualname) it lives in.
Fingerprints deliberately exclude line/column — so a committed
baseline survives unrelated edits above the finding — and the file
path — so absolute vs relative invocation roots agree; the symbol
qualname already pins the module.  They cover rule, symbol and
message text.

Severity levels:

``error``
    A proven invariant violation.  Gates the exit code.
``warning``
    A violation the analysis cannot prove harmless (e.g. mutation of
    module-level state from a fork-dispatched closure).  Gates the
    exit code; baseline entries need a justification.
``note``
    Informational (e.g. ``dict.keys()`` iteration feeding an ordering
    output: insertion-ordered in CPython, flagged for review only).
    Never gates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["Finding", "GATING_LEVELS", "LEVELS"]

LEVELS: Tuple[str, ...] = ("error", "warning", "note")
GATING_LEVELS: Tuple[str, ...] = ("error", "warning")


def _normalize_path(path: str) -> str:
    return path.replace("\\", "/")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        rule: rule id (``RPL004``, ``RPA103`` …).
        path: source file path.
        line: 1-based line number.
        col: 0-based column.
        symbol: qualname of the enclosing function, class or module.
        message: human-readable description (line-number free, so the
            fingerprint is stable under drift).
        level: ``error`` | ``warning`` | ``note``.
        pass_name: the pass that produced the finding.
    """

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    level: str = "error"
    pass_name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"unknown finding level {self.level!r}")

    @property
    def gating(self) -> bool:
        """Whether this finding can fail the run (unless baselined)."""
        return self.level in GATING_LEVELS

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (no line numbers,
        no file path)."""
        key = "|".join((self.rule, self.symbol, self.message))
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """One-line human-readable form."""
        tag = "" if self.level == "error" else f" [{self.level}]"
        return (f"{self.path}:{self.line}:{self.col}: {self.rule}"
                f"{tag} {self.message}  ({self.symbol})")

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (_normalize_path(self.path), self.line, self.col,
                self.rule)
