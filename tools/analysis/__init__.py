"""Whole-program static analysis for the placement pipeline.

``python -m tools.analysis src/repro`` builds a symbol table and a
module-resolved call graph over the package trees given on the command
line, then runs every registered pass:

* ``lint`` — the single-node RPL000-RPL013 rules (``tools.lint`` is
  now a shim over this engine);
* ``determinism`` — RNG/entropy/unordered-iteration closure from
  ``PlacementPipeline.run`` (RPA1xx);
* ``purity`` — logging/IO/exact-solve/allocation closure from every
  ``@hot_path`` kernel (RPA2xx);
* ``fork-safety`` — payload picklability and worker-closure
  module-state writes for ``repro.parallel`` dispatch (RPA3xx);
* ``contracts`` — ``@contract`` specs vs caller-side array
  construction (RPA4xx).

Gating findings (error/warning) fail the run unless their fingerprint
appears in the committed baseline (``tools/analysis/baseline.json``)
with a justification.  ``--sarif`` writes a SARIF 2.1.0 log for CI
artifact upload; ``--write-baseline`` snapshots the current findings.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from tools.analysis.baseline import (Baseline, BaselineError,
                                     apply_baseline)
from tools.analysis.callgraph import (CallGraph, CallSite,
                                      build_callgraph)
from tools.analysis.findings import Finding
from tools.analysis.symbols import Program, load_program

__all__ = [
    "Baseline",
    "CallGraph",
    "CallSite",
    "Finding",
    "Program",
    "analyze",
    "build_callgraph",
    "load_program",
    "main",
]

#: Default committed baseline, next to this package.
DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"

ANALYZER_VERSION = "1.0.0"


def _rule_docs() -> Dict[str, str]:
    from tools.analysis import lintrules, passes  # noqa: F401
    docs: Dict[str, str] = dict(lintrules.RULES)
    docs.update({
        "RPA101": "unseeded / global-state RNG on a pipeline path",
        "RPA102": "entropy or wall-clock source on a pipeline path",
        "RPA103": "set iteration on a pipeline path (arbitrary order)",
        "RPA104": "dict.keys() ordering dependence on a pipeline path",
        "RPA201": "logging in the @hot_path closure",
        "RPA202": "file I/O in the @hot_path closure",
        "RPA203": "exact thermal factorization in the @hot_path "
                  "closure",
        "RPA204": "allocation-heavy numpy call in a loop in the "
                  "@hot_path closure",
        "RPA301": "unpicklable task-payload field type",
        "RPA302": "task-payload field not provably picklable",
        "RPA303": "module-level mutable state written in a worker "
                  "closure",
        "RPA401": "caller array rank contradicts the @contract shape "
                  "spec",
        "RPA402": "caller array dtype contradicts the @contract dtype "
                  "spec",
    })
    return docs


def analyze(roots: Sequence[str],
            pass_names: Optional[Sequence[str]] = None
            ) -> List[Finding]:
    """Run the registered passes over the package trees in ``roots``."""
    from tools.analysis import passes

    program = load_program(roots)
    ctx = passes.build_context(program)
    selected = list(pass_names) if pass_names \
        else list(passes.PASS_REGISTRY)
    findings: List[Finding] = []
    for name in selected:
        factory = passes.PASS_REGISTRY.get(name)
        if factory is None:
            raise ValueError(f"unknown pass {name!r} (have: "
                             f"{', '.join(passes.PASS_REGISTRY)})")
        findings.extend(factory().run(ctx))
    findings.sort(key=lambda f: f.sort_key())
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from tools.analysis import passes
    from tools.analysis import sarif as sarif_mod

    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Interprocedural invariant analyzer "
                    "(RPL and RPA rule families).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="package roots to analyze "
                             "(default: src/repro)")
    parser.add_argument("--pass", dest="passes", action="append",
                        metavar="NAME",
                        help="run only the named pass (repeatable)")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the pass table and exit")
    parser.add_argument("--baseline", type=Path,
                        default=DEFAULT_BASELINE, metavar="FILE",
                        help="baseline file (default: the committed "
                             "tools/analysis/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report everything)")
    parser.add_argument("--write-baseline", metavar="REASON",
                        help="snapshot current gating findings into "
                             "the baseline file with this "
                             "justification, then exit 0")
    parser.add_argument("--sarif", type=Path, metavar="FILE",
                        help="write a SARIF 2.1.0 log to FILE")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail if the analysis takes longer "
                             "(CI bench guard)")
    args = parser.parse_args(argv)

    if args.list_passes:
        for name, factory in passes.PASS_REGISTRY.items():
            instance = factory()
            print(f"{name:14s} {instance.description}")
        return 0

    start = time.perf_counter()
    try:
        findings = analyze(args.paths, args.passes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    if args.write_baseline is not None:
        reason = args.write_baseline.strip()
        if not reason:
            print("error: --write-baseline needs a non-empty "
                  "justification", file=sys.stderr)
            return 2
        Baseline.from_findings(findings, reason).dump(args.baseline)
        gating = sum(1 for f in findings if f.gating)
        print(f"baseline: wrote {gating} gating finding(s) to "
              f"{args.baseline}")
        return 0

    baseline = Baseline(entries={})
    if not args.no_baseline and args.baseline.exists():
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    active, suppressed, stale = apply_baseline(findings, baseline)

    gating = [f for f in active if f.gating]
    notes = [f for f in active if not f.gating]
    for finding in gating + notes:
        print(finding.render())
    if suppressed:
        print(f"analysis: {len(suppressed)} finding(s) suppressed by "
              f"{args.baseline.name}", file=sys.stderr)
    for fingerprint in stale:
        print(f"analysis: stale baseline entry {fingerprint} "
              f"(no longer produced — remove it)", file=sys.stderr)

    if args.sarif is not None:
        log = sarif_mod.to_sarif(active, suppressed,
                                 rule_docs=_rule_docs(),
                                 tool_version=ANALYZER_VERSION)
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(sarif_mod.dumps(log))

    print(f"analysis: {len(gating)} gating, {len(notes)} note, "
          f"{len(suppressed)} suppressed finding(s) in "
          f"{elapsed:.2f}s", file=sys.stderr)
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"analysis: wall time {elapsed:.2f}s exceeds the "
              f"--max-seconds {args.max_seconds:.2f}s bench guard",
              file=sys.stderr)
        return 1
    return 1 if gating else 0
