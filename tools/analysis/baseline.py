"""Committed baseline / suppression file for analyzer findings.

The baseline is a JSON document mapping finding fingerprints (stable
under line drift — see :meth:`Finding.fingerprint`) to a required,
non-empty justification.  A gating finding whose fingerprint appears
in the baseline is reported as suppressed and does not fail the run;
an entry without a justification is itself an error, mirroring the
RPL000 waiver rule.

Stale entries (fingerprints no longer produced) are reported so the
baseline shrinks as violations are fixed, but they do not fail the
run — a fix should not force a lockstep baseline edit in the same
commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from tools.analysis.findings import Finding

__all__ = ["Baseline", "BaselineError", "apply_baseline"]

_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file."""


@dataclass
class Baseline:
    """fingerprint -> entry (rule/symbol are informational; only the
    fingerprint and the justification are load-bearing)."""

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(raw, dict) or "findings" not in raw:
            raise BaselineError(
                f"{path}: expected an object with a 'findings' key")
        version = raw.get("version")
        if version != _VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {version!r}")
        entries = raw["findings"]
        if not isinstance(entries, dict):
            raise BaselineError(f"{path}: 'findings' must be an object")
        for fingerprint, entry in entries.items():
            if not isinstance(entry, dict) \
                    or not str(entry.get("reason", "")).strip():
                raise BaselineError(
                    f"{path}: baseline entry {fingerprint} has no "
                    f"justification 'reason' — suppressions must say "
                    f"why (like RPL000 waivers)")
        return cls(dict(entries))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      reason: str) -> "Baseline":
        """Baseline every gating finding with one shared reason."""
        entries: Dict[str, Dict[str, str]] = {}
        for finding in findings:
            if not finding.gating:
                continue
            entries[finding.fingerprint()] = {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
                "reason": reason,
            }
        return cls(entries)

    def dump(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "findings": {k: self.entries[k]
                         for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2,
                                   sort_keys=False) + "\n")


def apply_baseline(findings: Sequence[Finding], baseline: Baseline
                   ) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings against the baseline.

    Returns ``(active, suppressed, stale_fingerprints)``: gating
    findings not in the baseline, findings matched by it, and baseline
    fingerprints that matched nothing this run.
    """
    active: List[Finding] = []
    suppressed: List[Finding] = []
    matched: set = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline.entries:
            matched.add(fingerprint)
            suppressed.append(finding)
        else:
            active.append(finding)
    stale = sorted(set(baseline.entries) - matched)
    return active, suppressed, stale
