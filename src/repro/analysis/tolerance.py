"""Sanctioned floating-point comparison helpers.

The lint rule RPL003 (``tools.lint``) forbids raw ``==``/``!=``
against float literals anywhere in ``src/repro``: half of those
comparisons *should* be tolerance-based (geometry, objective deltas
accumulated through long incremental chains), and the other half are
*intentionally exact* (cache-coherence shortcuts comparing a value
against a cached copy of itself), which is impossible to tell apart at
review time.  This module is the one place each intent is spelled out:

- :func:`near` / :func:`is_zero` — tolerance comparisons for quantities
  carrying accumulated rounding error.
- :func:`exact_eq` / :func:`exact_zero` / :func:`exact_nonzero` —
  documented bit-exact comparisons.  Use these only when the two sides
  derive from the *same* floating-point computation (e.g. "did this
  cached delta change at all"), where a tolerance would be a bug: it
  would skip small-but-real updates and let incremental caches drift.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from numpy.typing import NDArray

Number = Union[float, int]
ArrayOrFloat = Union[float, NDArray[np.float64]]

#: Default relative/absolute tolerance for coordinate-scale quantities.
#: Coordinates are metres at ~1e-5 scale; 1e-9 relative keeps ~6 digits
#: of slack above float64 rounding while catching any genuine mismatch.
DEFAULT_TOL = 1e-9


def near(a: float, b: float, tol: float = DEFAULT_TOL) -> bool:
    """Whether two scalars agree within a mixed abs/rel tolerance."""
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def is_zero(x: float, tol: float = DEFAULT_TOL) -> bool:
    """Whether a scalar is zero within an absolute tolerance."""
    return abs(x) <= tol


def exact_eq(a: ArrayOrFloat, b: ArrayOrFloat
             ) -> Union[bool, NDArray[np.bool_]]:
    """Bit-exact equality, for values sharing a computational origin."""
    return a == b


def exact_zero(x: float) -> bool:
    """Bit-exact zero test (e.g. "this cached delta did not change")."""
    return x == 0.0  # lint: ok[RPL003] this helper is the sanctioned home of the exact comparison


def exact_nonzero(x: float) -> bool:
    """Bit-exact non-zero test; see :func:`exact_zero`."""
    return x != 0.0  # lint: ok[RPL003] this helper is the sanctioned home of the exact comparison
