"""Correctness tooling for the kernel layer.

Static side: precise dtype-carrying array aliases (:data:`FloatArray`,
:data:`IntArray`, :data:`BoolArray`) used by annotations across
``src/repro``, and the :func:`hot_path` marker the ``tools.lint`` AST
linter keys on.  Dynamic side: the :func:`contract` decorator and
:func:`validate_arrays` probe, which turn into hard shape/dtype
preconditions when ``REPRO_CONTRACTS=1``.  See DESIGN.md
"Static analysis & contracts".
"""

from repro.analysis.contracts import (BoolArray, ContractViolation,
                                      FloatArray, IntArray, contract,
                                      contracts_enabled, expect,
                                      hot_path, set_contracts,
                                      validate_arrays)
from repro.analysis.tolerance import (DEFAULT_TOL, exact_eq,
                                      exact_nonzero, exact_zero,
                                      is_zero, near)

__all__ = [
    "BoolArray", "ContractViolation", "FloatArray", "IntArray",
    "contract", "contracts_enabled", "expect", "hot_path",
    "set_contracts", "validate_arrays",
    "DEFAULT_TOL", "exact_eq", "exact_nonzero", "exact_zero",
    "is_zero", "near",
]
