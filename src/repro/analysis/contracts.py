"""Opt-in runtime shape/dtype contracts for kernel entry points.

The placement kernels (DESIGN.md "kernel layer") keep their state in
flat NumPy arrays whose dtypes and shapes are load-bearing: an int32
pointer array silently truncates on huge designs, a float32 coordinate
array silently loses the resolution the tolerance helpers assume, and a
mis-shaped power map produces wrong—not crashing—objective values.

:func:`contract` attaches a declarative shape/dtype specification to a
function.  Checking is **off by default** (the wrapper costs one boolean
test per call); setting ``REPRO_CONTRACTS=1`` in the environment (or
calling :func:`set_contracts`) turns every contract into a hard
precondition that raises :class:`ContractViolation` with the offending
argument named.  Tier-1 CI runs the whole test suite with contracts
enabled, so every kernel entry point is exercised under validation.

Shape specifications are tuples of dimension entries.  Integers pin a
dimension exactly; strings are symbols unified *within one call* across
all declared arguments, so ``shapes={"xs": ("n",), "ys": ("n",)}``
asserts the two arguments have equal length without fixing it.

dtype specifications accept NumPy abstract scalar types
(``np.floating``, ``np.integer``, ``np.bool_``) or concrete dtypes;
abstract types match via :func:`numpy.issubdtype`.  Plain Python
sequences are only length-checked (first dimension), never converted —
contracts must not copy kernel inputs.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import (Any, Callable, Dict, Mapping, Optional, Sequence,
                    Tuple, TypeVar, Union)

import numpy as np
from numpy.typing import NDArray

#: Precise aliases for the kernel array dtypes (see DESIGN.md).
FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]
BoolArray = NDArray[np.bool_]

DimSpec = Union[int, str]
ShapeSpec = Tuple[DimSpec, ...]
DTypeSpec = Any  # np.floating / np.integer / concrete dtype-like
F = TypeVar("F", bound=Callable[..., Any])


class ContractViolation(AssertionError):
    """A kernel entry point was called with a mis-shaped or mis-typed
    argument while ``REPRO_CONTRACTS`` checking was enabled."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "0").strip().lower() \
        not in ("", "0", "false", "no")


_enabled: bool = _env_enabled()


def contracts_enabled() -> bool:
    """Whether runtime contract checking is currently active."""
    return _enabled


def set_contracts(enabled: bool) -> bool:
    """Enable/disable contract checking; returns the previous setting.

    Tests use this to exercise both modes in one process; production
    code should rely on the ``REPRO_CONTRACTS`` environment variable.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# validation primitives
# ----------------------------------------------------------------------
def _dtype_matches(dtype: np.dtype, spec: DTypeSpec) -> bool:
    if isinstance(spec, type) and issubclass(spec, np.generic):
        return bool(np.issubdtype(dtype, spec))
    return dtype == np.dtype(spec)


def expect(name: str, value: Any, dtype: Optional[DTypeSpec] = None,
           shape: Optional[ShapeSpec] = None,
           bindings: Optional[Dict[str, int]] = None) -> None:
    """Validate one value against a dtype/shape spec.

    Args:
        name: argument name used in error messages.
        value: an ``np.ndarray`` (fully checked) or a plain sequence
            (length-checked against 1-D shape specs only).
        dtype: required dtype (abstract scalar types match by kind).
        shape: required shape; string entries unify via ``bindings``.
        bindings: symbol table shared across one call's arguments.

    Raises:
        ContractViolation: on any mismatch.
    """
    is_array = isinstance(value, np.ndarray)
    if dtype is not None and is_array:
        if not _dtype_matches(value.dtype, dtype):
            want = getattr(dtype, "__name__", str(dtype))
            raise ContractViolation(
                f"{name}: dtype {value.dtype} does not satisfy {want}")
    if shape is None:
        return
    if is_array:
        actual: Tuple[int, ...] = value.shape
    elif hasattr(value, "__len__"):
        if len(shape) != 1:
            return  # cannot see nested structure without converting
        actual = (len(value),)
    else:
        raise ContractViolation(
            f"{name}: expected an array-like, got {type(value).__name__}")
    if len(actual) != len(shape):
        raise ContractViolation(
            f"{name}: expected {len(shape)}-D (spec {shape}), "
            f"got shape {actual}")
    table = bindings if bindings is not None else {}
    for axis, (want, got) in enumerate(zip(shape, actual)):
        if isinstance(want, str):
            bound = table.setdefault(want, got)
            if bound != got:
                raise ContractViolation(
                    f"{name}: axis {axis} is {got} but symbol "
                    f"{want!r} was already bound to {bound}")
        elif want != got:
            raise ContractViolation(
                f"{name}: axis {axis} is {got}, expected {want}")


# ----------------------------------------------------------------------
# the decorator
# ----------------------------------------------------------------------
def contract(shapes: Optional[Mapping[str, ShapeSpec]] = None,
             dtypes: Optional[Mapping[str, DTypeSpec]] = None
             ) -> Callable[[F], F]:
    """Declare shape/dtype preconditions on a kernel entry point.

    The declaration is stored on the function as ``__repro_contract__``
    whether or not checking is active, so tooling can introspect it.
    """
    shape_spec = dict(shapes or {})
    dtype_spec = dict(dtypes or {})
    names = sorted(set(shape_spec) | set(dtype_spec))

    def decorate(func: F) -> F:
        signature = inspect.signature(func)
        for arg in names:
            if arg not in signature.parameters:
                raise TypeError(
                    f"contract on {func.__qualname__} names unknown "
                    f"parameter {arg!r}")

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bindings: Dict[str, int] = {}
            for arg in names:
                if arg not in bound.arguments:
                    continue  # defaulted: nothing was passed to check
                value = bound.arguments[arg]
                if value is None:
                    continue
                try:
                    expect(arg, value, dtype=dtype_spec.get(arg),
                           shape=shape_spec.get(arg), bindings=bindings)
                except ContractViolation as exc:
                    raise ContractViolation(
                        f"{func.__qualname__}: {exc}") from None
            return func(*args, **kwargs)

        wrapper.__repro_contract__ = {  # type: ignore[attr-defined]
            "shapes": shape_spec, "dtypes": dtype_spec}
        return wrapper  # type: ignore[return-value]

    return decorate


def hot_path(func: F) -> F:
    """Mark a function as a designated vectorized kernel hot path.

    Purely declarative at runtime (the function is returned unchanged);
    the ``tools.lint`` rule RPL005 forbids Python ``for``/``while``
    loops inside functions carrying this marker, so accidental scalar
    fallbacks in the batched kernels fail CI instead of silently
    costing 10-100x.
    """
    func.__repro_hot_path__ = True  # type: ignore[attr-defined]
    return func


def validate_arrays(owner: str, **named: Tuple[Any, Optional[DTypeSpec],
                                               Optional[ShapeSpec]]
                    ) -> None:
    """Validate a bag of internal arrays in one shared symbol table.

    Used by ``check_consistency`` probes to assert that a kernel
    object's *internal* state arrays still have the dtypes and mutually
    consistent shapes the vectorized paths assume.  Each keyword maps a
    field name to ``(value, dtype_spec, shape_spec)``.
    """
    if not _enabled:
        return
    bindings: Dict[str, int] = {}
    for name, (value, dtype, shape) in named.items():
        expect(f"{owner}.{name}", value, dtype=dtype, shape=shape,
               bindings=bindings)
