"""Plain-text visualization of placements and temperature fields.

The library is dependency-light (numpy/scipy only), so visual inspection
happens in the terminal: density maps, temperature maps and layer
summaries rendered as character grids.  Each renderer returns a string;
print it.

Example::

    from repro.viz import density_map, temperature_map
    print(density_map(placement, layer=0))
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.density import DensityMesh
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig
from repro.thermal.solver import TemperatureField

#: Shade ramp from empty to overfull/hot.
_RAMP = " .:-=+*#%@"


def _shade(value: float, lo: float, hi: float) -> str:
    if hi <= lo:
        return _RAMP[0]
    t = (value - lo) / (hi - lo)
    idx = int(min(max(t, 0.0), 1.0) * (len(_RAMP) - 1))
    return _RAMP[idx]


def _render_grid(grid: np.ndarray, lo: float, hi: float,
                 title: str) -> str:
    """Render a 2D array (x right, y up) as shaded characters."""
    nx, ny = grid.shape
    lines = [title]
    for j in range(ny - 1, -1, -1):
        lines.append("|" + "".join(_shade(float(grid[i, j]), lo, hi)
                                   for i in range(nx)) + "|")
    lines.append(f"scale: '{_RAMP[0]}' = {lo:.3g} .. "
                 f"'{_RAMP[-1]}' = {hi:.3g}")
    return "\n".join(lines)


def density_map(placement: Placement, layer: int,
                nx: int = 48, ny: Optional[int] = None) -> str:
    """Cell-density map of one layer as shaded text.

    Args:
        placement: the placement to render.
        layer: active-layer index.
        nx: horizontal character resolution; ``ny`` scales with the die
            aspect ratio when omitted.
    """
    chip = placement.chip
    if not 0 <= layer < chip.num_layers:
        raise IndexError(f"layer {layer} out of range")
    if ny is None:
        ny = max(4, int(round(nx * chip.height / chip.width * 0.5)))
    mesh = DensityMesh(chip, nx, ny)
    areas = placement.netlist.areas
    for cid, x, y, z, in placement.iter_movable():
        if z == layer:
            mesh.add_cell(cid, x, y, z, float(areas[cid]))
    grid = mesh.densities[:, :, layer]
    return _render_grid(grid, 0.0, max(float(grid.max()), 1.0),
                        f"cell density, layer {layer} "
                        f"(max {grid.max():.2f})")


def temperature_map(field: TemperatureField, layer: int) -> str:
    """Temperature map of one layer of a solved field as shaded text."""
    if not 0 <= layer < field.active.shape[2]:
        raise IndexError(f"layer {layer} out of range")
    grid = field.active[:, :, layer]
    full_max = float(field.active.max())
    return _render_grid(grid, 0.0, max(full_max, 1e-30),
                        f"temperature above ambient, layer {layer} "
                        f"(layer max {grid.max():.3f} K, "
                        f"chip max {full_max:.3f} K)")


def layer_summary(placement: Placement,
                  cell_powers: Optional[np.ndarray] = None) -> str:
    """Per-layer table: cells, area utilization and (optionally) power."""
    chip = placement.chip
    counts = placement.layer_populations()
    areas = placement.layer_areas()
    # row capacity per layer: rows * width * row height
    capacity = chip.rows_per_layer * chip.width * chip.row_height
    lines = [f"{'layer':>5} {'cells':>7} {'area util':>10}"
             + (f" {'power':>10}" if cell_powers is not None else "")]
    layer_power = None
    if cell_powers is not None:
        layer_power = np.zeros(chip.num_layers)
        for cid in range(placement.netlist.num_cells):
            layer_power[int(placement.z[cid])] += cell_powers[cid]
    for z in range(chip.num_layers):
        row = f"{z:>5} {counts[z]:>7} {areas[z] / capacity:>9.1%}"
        if layer_power is not None:
            row += f" {layer_power[z] * 1e3:>8.3f}mW"
        lines.append(row)
    return "\n".join(lines)


def tradeoff_ascii(points: List[tuple], width: int = 60,
                   height: int = 16,
                   xlabel: str = "wirelength",
                   ylabel: str = "ILVs") -> str:
    """Scatter a tradeoff curve as an ASCII plot.

    Args:
        points: ``(x, y)`` pairs (e.g. wirelength vs via count).
    """
    if not points:
        raise ValueError("no points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    span_x = (x_hi - x_lo) or 1.0
    span_y = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        i = int((x - x_lo) / span_x * (width - 1))
        j = int((y - y_lo) / span_y * (height - 1))
        grid[height - 1 - j][i] = "o"
    lines = [f"{ylabel} ({y_lo:.3g} .. {y_hi:.3g})"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"{xlabel} ({x_lo:.3g} .. {x_hi:.3g})")
    return "\n".join(lines)
