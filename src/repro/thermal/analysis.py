"""Placement-level thermal summaries (the paper's evaluation metrics)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.wirelength import NetMetrics, compute_net_metrics
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig
from repro.thermal.power import PowerModel
from repro.thermal.solver import TemperatureField, ThermalSolver


@dataclass
class ThermalSummary:
    """Thermal evaluation of one placement.

    Attributes:
        total_power: total dynamic power, watts.
        average_temperature: mean cell temperature above ambient, kelvin
            (the "average temperature" of the paper's Figures 6, 8, 9).
        max_temperature: hottest cell temperature above ambient, kelvin.
        field: the full solved temperature field.
        cell_temperatures: kelvin above ambient, indexed by cell id.
    """

    total_power: float
    average_temperature: float
    max_temperature: float
    field: TemperatureField
    cell_temperatures: np.ndarray


def analyze_placement(placement: Placement,
                      tech: Optional[TechnologyConfig] = None,
                      power_model: Optional[PowerModel] = None,
                      solver: Optional[ThermalSolver] = None,
                      metrics: Optional[NetMetrics] = None
                      ) -> ThermalSummary:
    """Run the evaluation-side thermal flow on a placement.

    Computes net geometry, dynamic power (Eqs. 4-5), attributes power to
    driver cells (Eq. 10, no floors — real geometry is available at
    evaluation time), solves the full-chip temperature field, and reads
    back per-cell temperatures.
    """
    tech = tech or TechnologyConfig()
    power_model = power_model or PowerModel(placement.netlist, tech)
    solver = solver or ThermalSolver(placement.chip, tech)
    if metrics is None:
        metrics = compute_net_metrics(placement)
    cell_powers = power_model.cell_powers(metrics)
    field = solver.solve_placement(placement, cell_powers)
    cell_temps = field.cell_temperatures(placement)
    movable = np.array([c.movable for c in placement.netlist.cells],
                       dtype=bool)
    seen = cell_temps[movable] if movable.any() else cell_temps
    return ThermalSummary(
        total_power=float(power_model.net_powers(metrics).sum()
                          + power_model.leakage_powers().sum()),
        average_temperature=float(seen.mean()) if len(seen) else 0.0,
        max_temperature=float(seen.max()) if len(seen) else 0.0,
        field=field,
        cell_temperatures=cell_temps,
    )
