"""Dynamic power: Eqs. 4-5 (net power) and Eqs. 10-15 (cell attribution).

The paper assumes dynamic power dominates and is dissipated in the
driver cells (driver resistance >> interconnect resistance).  Net ``i``
dissipates

    P_i = 1/2 f Vdd^2 a_i C_i                                   (Eq. 4)
    C_i = C_wl WL_i + C_ilv ILV_i + C_pin n_i^input_pins         (Eq. 5)

and a cell's power is the share of its driven nets' power (Eq. 10),
split evenly among a net's drivers via the per-output-pin coefficients
``s_i^wl``, ``s_i^ilv`` and ``s_i^input pins`` (Eqs. 6, 11).

At the start of global placement all cells sit at the chip centre and
WL = ILV = 0, which would zero out the TRR net weights; Eqs. 13-15
provide PEKO-style *optimal* lower bounds used as floors in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis import FloatArray, exact_nonzero
from repro.metrics.wirelength import NetMetrics, compute_net_metrics
from repro.netlist.netlist import Netlist
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig


@dataclass
class PekoOptimal:
    """PEKO-3D optimal lower bounds per net (Eqs. 13-15).

    Attributes:
        wl_x, wl_y: optimal x/y bounding-box extents, metres.
        ilv: optimal interlayer-via counts (floats, clipped at >= 0).
    """

    wl_x: FloatArray
    wl_y: FloatArray
    ilv: FloatArray


class PowerModel:
    """Dynamic-power calculations bound to a netlist and technology.

    All per-net quantities are NumPy arrays indexed by net id; TRR nets
    get zeros (they are virtual and consume no power).
    """

    def __init__(self, netlist: Netlist, tech: Optional[TechnologyConfig]
                 = None) -> None:
        self.netlist = netlist
        self.tech = tech or TechnologyConfig()
        m = netlist.num_nets
        self._activity = np.zeros(m, dtype=np.float64)
        self._n_input = np.zeros(m, dtype=np.float64)
        self._n_output = np.zeros(m, dtype=np.float64)
        self._is_signal = np.zeros(m, dtype=bool)
        for net in netlist.nets:
            if net.is_trr:
                continue
            self._is_signal[net.id] = True
            self._activity[net.id] = net.activity
            self._n_input[net.id] = net.num_input_pins
            self._n_output[net.id] = max(1, net.num_output_pins)
        scale = self.tech.switching_energy_scale
        act = scale * self._activity
        # Eq. 6/11 coefficients, per output pin:
        self.s_wl = np.where(
            self._is_signal,
            act * self.tech.cap_per_wirelength / self._n_output_safe(), 0.0)
        self.s_ilv = np.where(
            self._is_signal,
            act * self.tech.cap_per_via / self._n_output_safe(), 0.0)
        self.s_input_pins = np.where(
            self._is_signal,
            act * self.tech.input_pin_cap * self._n_input
            / self._n_output_safe(), 0.0)

    def _n_output_safe(self) -> FloatArray:
        return np.where(self._n_output > 0, self._n_output, 1.0)

    # ------------------------------------------------------------------
    # net-level power (Eqs. 4-5)
    # ------------------------------------------------------------------
    def net_capacitances(self, metrics: NetMetrics) -> FloatArray:
        """Total capacitance per net (Eq. 5), farads."""
        tech = self.tech
        caps = (tech.cap_per_wirelength * (metrics.wl_x + metrics.wl_y)
                + tech.cap_per_via * metrics.ilv
                + tech.input_pin_cap * self._n_input)
        return np.where(self._is_signal, caps, 0.0)

    def net_powers(self, metrics: NetMetrics) -> FloatArray:
        """Dynamic power per net (Eq. 4), watts."""
        return (self.tech.switching_energy_scale * self._activity
                * self.net_capacitances(metrics))

    def total_power(self, placement: Placement,
                    metrics: Optional[NetMetrics] = None) -> float:
        """Total power (dynamic + leakage) of a placement, watts."""
        if metrics is None:
            metrics = compute_net_metrics(placement)
        return float(self.net_powers(metrics).sum()
                     + self.leakage_powers().sum())

    def leakage_powers(self) -> FloatArray:
        """Static power per cell, watts (Section 3.2's extension).

        Proportional to cell area; zero by default (the paper's
        dynamic-only model).
        """
        return (self.tech.leakage_power_density
                * self.netlist.areas)

    # ------------------------------------------------------------------
    # cell-level power (Eqs. 10-11)
    # ------------------------------------------------------------------
    def cell_powers(self, metrics: NetMetrics,
                    floors: Optional[PekoOptimal] = None) -> FloatArray:
        """Per-cell dissipated power (Eq. 10), watts, indexed by cell id.

        Args:
            metrics: current per-net geometry.
            floors: if given, WL and ILV are floored at the PEKO-3D
                optimal values (the paper's rule for computing TRR net
                weights while cells still sit on top of each other).
        """
        wl = metrics.wl_x + metrics.wl_y
        ilv = metrics.ilv.astype(np.float64)
        if floors is not None:
            wl = np.maximum(wl, floors.wl_x + floors.wl_y)
            ilv = np.maximum(ilv, floors.ilv)
        per_net_share = self.s_wl * wl + self.s_ilv * ilv + self.s_input_pins
        powers = self.leakage_powers().copy()
        for net in self.netlist.nets:
            if net.is_trr:
                continue
            share = float(per_net_share[net.id])
            if not exact_nonzero(share):
                continue
            for driver in net.driver_ids:
                powers[driver] += share
        return powers

    # ------------------------------------------------------------------
    # PEKO-3D optimal floors (Eqs. 13-15)
    # ------------------------------------------------------------------
    def peko_optimal(self, alpha_ilv: float) -> PekoOptimal:
        """Approximate optimal WL/ILV per net for a given via coefficient.

        Eqs. 13-15 of the paper: with average cell width ``w`` and height
        ``h`` and total pin count ``n``, the optimal placement of one net
        occupies a box of volume ``w*h*alpha_ilv*n`` (the via coefficient
        acting as the "height" cost of the z direction), giving

            WL_x_opt = cbrt(alpha_ilv w h n) - w
            WL_y_opt = cbrt(alpha_ilv w h n) - h
            ILV_opt  = cbrt(w h n / alpha_ilv^2) - 1

        all clipped at zero.
        """
        if alpha_ilv <= 0:
            raise ValueError("alpha_ilv must be positive for PEKO floors")
        w = self.netlist.average_cell_width
        h = self.netlist.average_cell_height
        m = self.netlist.num_nets
        n_pins = np.zeros(m)
        for net in self.netlist.nets:
            if not net.is_trr:
                n_pins[net.id] = net.degree
        side = np.cbrt(alpha_ilv * w * h * n_pins)
        wl_x = np.clip(side - w, 0.0, None)
        wl_y = np.clip(side - h, 0.0, None)
        ilv = np.clip(side / alpha_ilv - 1.0, 0.0, None)
        ilv = np.where(self._is_signal, ilv, 0.0)
        return PekoOptimal(wl_x=np.where(self._is_signal, wl_x, 0.0),
                           wl_y=np.where(self._is_signal, wl_y, 0.0),
                           ilv=ilv)
