"""Thermal fidelity policy: who computes temperature fields, when.

One placement run wants two incompatible things from its thermal
model: exactness where results are reported (stage boundaries,
checkpoints, the final manifest) and speed where fields are evaluated
often (inner-loop telemetry on every move/shift/refine stage).  The
:class:`ThermalFidelityPolicy` arbitrates between the exact
finite-volume :class:`~repro.thermal.solver.ThermalSolver` and the
calibrated closed-form :class:`~repro.thermal.surrogate
.SurrogateThermalModel` according to the ``thermal_fidelity`` config
knob:

``exact``
    Every evaluation uses the finite-volume solver.  The surrogate is
    never built.
``surrogate``
    Every evaluation uses the surrogate (calibrated lazily against
    the exact solver on first use — the exact solver still answers
    the calibration probes, nothing else).
``adaptive`` (default)
    Boundary evaluations (stage/round ends, final reporting) use the
    exact solver and double as *drift checks*: the surrogate answers
    the same power map, and if its relative error exceeds
    ``thermal_drift_tolerance`` the policy recalibrates against the
    live power map and logs a telemetry event.  Non-boundary
    evaluations use the surrogate.

The policy is deliberately *trajectory-neutral*: the Eq. 3 objective
prices thermal resistance through the closed-form per-layer table in
:class:`~repro.core.objective.ObjectiveState` in every mode, so the
search trajectory — and therefore the final placement and reported
objective — is bit-identical across fidelity modes.  Fidelity changes
only who computes temperature *fields* and how often, which is why
``thermal_fidelity`` and ``thermal_drift_tolerance`` are
execution-only config keys (excluded from the scientific config
hash, like ``num_workers``).

Everything the policy does is observable: per-fidelity call counters
(``thermal/fidelity/*``), calibration spans and residual gauges
(``thermal/surrogate*``, emitted by the surrogate itself), a
``thermal/surrogate`` series row per drift check, and a
:meth:`~ThermalFidelityPolicy.metadata` document (fit coefficients,
inputs hash, event log) recorded in the run manifest.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis import FloatArray
from repro.core.config import THERMAL_FIDELITY_MODES
from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.obs import get_recorder
from repro.obs.manifest import content_hash
from repro.technology import TechnologyConfig
from repro.thermal.solver import TemperatureField, ThermalSolver
from repro.thermal.surrogate import (SurrogateThermalModel, power_map_of,
                                     relative_error)

__all__ = ["THERMAL_FIDELITY_MODES", "ThermalFidelityPolicy"]


class ThermalFidelityPolicy:
    """Routes temperature-field evaluations by fidelity mode.

    Both underlying models are built lazily: an ``exact`` run never
    pays for surrogate calibration, and a run that never evaluates a
    field (``alpha_temp = 0``) never pays for either.

    Args:
        chip: the placement volume both models are bound to.
        tech: technology parameters.
        mode: one of :data:`THERMAL_FIDELITY_MODES`.
        drift_tolerance: relative-error threshold above which a
            boundary drift check triggers recalibration.
        nx, ny: lateral grid resolution shared by both models.
    """

    def __init__(self, chip: ChipGeometry,
                 tech: Optional[TechnologyConfig] = None,
                 mode: str = "adaptive",
                 drift_tolerance: float = 0.05,
                 nx: int = 16, ny: int = 16) -> None:
        if mode not in THERMAL_FIDELITY_MODES:
            raise ValueError(
                f"thermal_fidelity must be one of "
                f"{THERMAL_FIDELITY_MODES}, got {mode!r}")
        if drift_tolerance <= 0:
            raise ValueError("thermal_drift_tolerance must be positive")
        self.chip = chip
        self.tech = tech or TechnologyConfig()
        self.mode = mode
        self.drift_tolerance = drift_tolerance
        self.nx = nx
        self.ny = ny
        self._solver: Optional[ThermalSolver] = None
        self._surrogate: Optional[SurrogateThermalModel] = None
        self.exact_calls = 0
        self.surrogate_calls = 0
        self.calibrations = 0
        self.recalibrations = 0
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    @property
    def solver(self) -> ThermalSolver:
        """The exact finite-volume solver, built on first use."""
        if self._solver is None:
            self._solver = ThermalSolver(self.chip, self.tech,
                                         nx=self.nx, ny=self.ny)
        return self._solver

    @property
    def surrogate(self) -> SurrogateThermalModel:
        """The closed-form surrogate, built (uncalibrated) on first
        use; :meth:`evaluate_map` calibrates it when first needed."""
        if self._surrogate is None:
            self._surrogate = SurrogateThermalModel(
                self.chip, self.tech, nx=self.nx, ny=self.ny)
        return self._surrogate

    def inputs_hash(self) -> str:
        """Content hash of everything calibration depends on.

        Covers the chip geometry, the thermally relevant technology
        parameters and the grid — recorded in the manifest so two runs
        whose surrogates saw identical calibration inputs can be told
        apart from runs that merely share a config.
        """
        chip = self.chip
        tech = self.tech
        return content_hash({
            "width": chip.width,
            "height": chip.height,
            "num_layers": chip.num_layers,
            "layer_thickness": chip.layer_thickness,
            "interlayer_thickness": chip.interlayer_thickness,
            "substrate_thickness": chip.substrate_thickness,
            "thermal_conductivity": tech.thermal_conductivity,
            "substrate_conductivity": tech.substrate_conductivity,
            "heat_sink_convection": tech.heat_sink_convection,
            "secondary_convection": tech.secondary_convection,
            "substrate_in_thermal_path": tech.substrate_in_thermal_path,
            "ambient_temperature": tech.ambient_temperature,
            "nx": self.nx,
            "ny": self.ny,
        })

    # ------------------------------------------------------------------
    def _calibrate(self, power_map: FloatArray, *,
                   recalibration: bool) -> None:
        """(Re)fit the surrogate, including the live power map."""
        rec = get_recorder()
        self.surrogate.calibrate(self.solver,
                                 extra_power_maps=[power_map])
        self.calibrations += 1
        if recalibration:
            self.recalibrations += 1
            rec.count("thermal/surrogate/recalibrations")

    def _ensure_calibrated(self, power_map: FloatArray) -> None:
        if not self.surrogate.calibrated:
            self._calibrate(power_map, recalibration=False)

    def evaluate(self, placement: Placement, cell_powers: FloatArray,
                 boundary: bool = False) -> TemperatureField:
        """Temperature field of a placement under the fidelity policy.

        Args:
            placement: the placement to evaluate.
            cell_powers: per-cell attributed powers, watts.
            boundary: whether this is a stage/round boundary (or final
                reporting) evaluation — the points where ``adaptive``
                uses the exact solver and runs its drift check.
        """
        return self.evaluate_map(
            power_map_of(placement, cell_powers, self.nx, self.ny),
            boundary=boundary)

    def evaluate_map(self, power_map: FloatArray,
                     boundary: bool = False) -> TemperatureField:
        """Temperature field of a binned power map (see
        :meth:`evaluate`)."""
        rec = get_recorder()
        if self.mode == "exact":
            self.exact_calls += 1
            rec.count("thermal/fidelity/exact_calls")
            return self.solver.solve_powers(power_map)
        if self.mode == "surrogate" or not boundary:
            self._ensure_calibrated(power_map)
            self.surrogate_calls += 1
            rec.count("thermal/fidelity/surrogate_calls")
            return self.surrogate.solve_powers(power_map)
        # adaptive boundary: exact field, plus a surrogate drift check
        self.exact_calls += 1
        rec.count("thermal/fidelity/exact_calls")
        exact = self.solver.solve_powers(power_map)
        self._ensure_calibrated(power_map)
        error = relative_error(self.surrogate.solve_powers(power_map),
                               exact)
        drifted = error > self.drift_tolerance
        rec.gauge("thermal/surrogate/drift", error)
        rec.record("thermal/surrogate", error=error,
                   recalibrated=float(drifted))
        self.events.append({"error": error, "recalibrated": drifted})
        if drifted:
            self._calibrate(power_map, recalibration=True)
        return exact

    # ------------------------------------------------------------------
    def metadata(self) -> Dict[str, Any]:
        """JSON-safe summary for the run manifest.

        Includes the fit coefficients and residual (when the surrogate
        was calibrated), the calibration inputs hash, per-fidelity
        call counts and the drift-check event log.
        """
        calibration: Optional[Dict[str, Any]] = None
        if self._surrogate is not None and self._surrogate.calibrated:
            calibration = self._surrogate.coefficients.to_dict()
        return {
            "mode": self.mode,
            "drift_tolerance": float(self.drift_tolerance),
            "grid": [int(self.nx), int(self.ny)],
            "inputs_hash": self.inputs_hash(),
            "exact_calls": int(self.exact_calls),
            "surrogate_calls": int(self.surrogate_calls),
            "calibrations": int(self.calibrations),
            "recalibrations": int(self.recalibrations),
            "calibration": calibration,
            "events": [dict(e) for e in self.events],
        }
