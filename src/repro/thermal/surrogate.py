"""Closed-form compact thermal surrogate (image-source superposition).

The exact finite-volume solve in :mod:`repro.thermal.solver` costs a
sparse triangular solve per temperature-field evaluation.  This module
replaces it, inside inner loops, with the analytic spreading model of
ATPlace2.5D-style compact thermal estimators: every heat source tile
contributes a closed-form spreading kernel

    ``F(a, b, c) = (2 / sqrt(pi)) * (b * log((c + d) / sqrt(a^2 + b^2))
                   + c * log((b + d) / sqrt(a^2 + c^2))
                   - a * atan(b c / (a d)))``,  ``d = |(a, b, c)|``,

summed over the four image terms of its rectangular footprint *and*
over first-order mirror images of the source across the four die
edges.  The mirrors matter: the die sidewalls are nearly adiabatic
(the secondary film coefficient is six orders of magnitude below the
heat-sink one), so heat piles up against the edges in a way a
free-space kernel badly underpredicts — reflecting each source across
``x = 0``, ``x = W``, ``y = 0`` and ``y = H`` reproduces that
confinement and cuts the fit error by roughly 5x on real chips, whose
extreme aspect ratios also demand independent (anisotropic) ``lx`` and
``ly`` spreading lengths per source layer.

Because the model is *linear in the injected powers*, calibration
against the exact solver is a linear least-squares fit (per-layer-pair
couplings plus a per-layer bias) on top of a small deterministic
search over the spreading lengths — no randomness, so calibration is
bit-reproducible for a given chip.

Evaluation is a precomputed dense-operator contraction: sources are
binned to the same ``nx x ny x L`` grid the exact solver uses, each
source layer's spatial kernel is one ``(nx*ny, nx*ny)`` matrix, and a
full-field solve is a batched matvec plus a tiny layer-coupling
product.  The real speed lever is :meth:`~SurrogateThermalModel
.move_delta`: calibration also bakes the couplings *into* the spatial
operators, so the field change from moving one source between tiles is
a single scaled row difference of a precomputed matrix — a few
microseconds against the exact path's full sparse back-substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import FloatArray, contract
from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.obs import get_recorder
from repro.technology import TechnologyConfig
from repro.thermal.solver import (TemperatureField, ThermalSolver,
                                  grid_bin_indices)

__all__ = ["SurrogateCoefficients", "SurrogateThermalModel",
           "power_map_of", "relative_error", "spreading_kernel"]

#: Spreading-length search grid, as multiples of the tile half-pitch.
#: Log-spaced and wide because real dies are strongly anisotropic: the
#: short axis often wants near-uniform mixing (scale >> 1) while the
#: long axis stays localized (scale ~ 1).
_SCALE_GRID: Tuple[float, ...] = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0)

#: Domain guard for the kernel's logs/atan at coincident source/query.
_EPS = 1e-12


def spreading_kernel(a: FloatArray, b: FloatArray,
                     c: FloatArray) -> FloatArray:
    """The analytic image-source spreading function ``F(a, b, c)``.

    Vectorized over broadcastable inputs.  ``a`` is the normalized
    source depth, ``b``/``c`` the normalized lateral offsets of one
    image corner; the guards keep the logs and the arctangent defined
    at coincident source/query points (``b`` or ``c`` -> 0).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    delta = np.sqrt(a * a + b * b + c * c)
    term_b = b * np.log((c + delta + _EPS)
                        / np.sqrt(a * a + b * b + _EPS))
    term_c = c * np.log((b + delta + _EPS)
                        / np.sqrt(a * a + c * c + _EPS))
    term_a = a * np.arctan(b * c / (a * delta + _EPS))
    out = (2.0 / np.sqrt(np.pi)) * (term_b + term_c - term_a)
    assert isinstance(out, np.ndarray)
    return out


def relative_error(candidate: TemperatureField,
                   reference: TemperatureField) -> float:
    """Relative L2 error of one active field against a reference."""
    if candidate.active.shape != reference.active.shape:
        raise ValueError("temperature fields have different grids")
    norm = float(np.linalg.norm(reference.active))
    diff = float(np.linalg.norm(candidate.active - reference.active))
    return diff / max(norm, _EPS)


@dataclass(frozen=True)
class SurrogateCoefficients:
    """The calibrated parameters of one surrogate fit.

    Attributes:
        lx: per-source-layer x spreading length, metres.
        ly: per-source-layer y spreading length, metres.
        depth: the kernel's normalized source depth ``a``.
        amplitude: global amplitude ``A`` (RMS of the layer-pair
            couplings), K/W.
        bias: global bias ``B`` (mean per-query-layer bias), K/W.
        gains: layer-pair couplings relative to ``amplitude``,
            ``gains[ls][lq]`` (dimensionless).
        layer_bias: per-query-layer bias, K/W (``bias`` is its mean).
        residual: relative L2 fit error over the calibration probes.
    """

    lx: Tuple[float, ...]
    ly: Tuple[float, ...]
    depth: float
    amplitude: float
    bias: float
    gains: Tuple[Tuple[float, ...], ...]
    layer_bias: Tuple[float, ...]
    residual: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (recorded in run manifests)."""
        return {
            "lx": list(self.lx),
            "ly": list(self.ly),
            "depth": self.depth,
            "amplitude": self.amplitude,
            "bias": self.bias,
            "gains": [list(row) for row in self.gains],
            "layer_bias": list(self.layer_bias),
            "residual": self.residual,
        }


class SurrogateThermalModel:
    """Calibrated closed-form surrogate bound to one chip geometry.

    Mirrors the :class:`~repro.thermal.solver.ThermalSolver` interface
    (``solve_powers`` / ``solve_placement`` on the same lateral grid)
    but must be :meth:`calibrate`-d against an exact solver before the
    first solve.

    Args:
        chip: the placement volume.
        tech: technology parameters (only used for bookkeeping; the
            physics enters through the calibration targets).
        nx, ny: lateral grid resolution; must match the exact solver
            the model is calibrated against.
    """

    def __init__(self, chip: ChipGeometry,
                 tech: Optional[TechnologyConfig] = None,
                 nx: int = 16, ny: int = 16) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("grid resolutions must be positive")
        self.chip = chip
        self.tech = tech or TechnologyConfig()
        self.nx = nx
        self.ny = ny
        self._coeffs: Optional[SurrogateCoefficients] = None
        # batched per-source-layer spatial operators (L, nx*ny, nx*ny)
        self._ops: Optional[FloatArray] = None
        # raw layer couplings (L_source, L_query) and per-layer bias
        self._raw_gains: Optional[FloatArray] = None
        self._beta: Optional[FloatArray] = None
        # couplings baked into the operators for O(tiles) move deltas:
        # (L_source, n_tiles, n_tiles * L_query)
        self._combined: Optional[FloatArray] = None
        # mirror-image index sets into the extended kernel table: the
        # direct offset plus first-order reflections across both edges
        # of each axis (the table is indexed at offset + extent - 1)
        ix = np.arange(nx, dtype=np.int64)
        jy = np.arange(ny, dtype=np.int64)
        shift_x = 2 * nx - 1
        shift_y = 2 * ny - 1
        self._ux: Tuple[FloatArray, ...] = tuple(
            np.asarray(u + shift_x, dtype=np.int64) for u in (
                ix[:, None] - ix[None, :],
                ix[:, None] + ix[None, :] + 1,
                ix[:, None] + ix[None, :] + 1 - 2 * nx))
        self._vy: Tuple[FloatArray, ...] = tuple(
            np.asarray(v + shift_y, dtype=np.int64) for v in (
                jy[:, None] - jy[None, :],
                jy[:, None] + jy[None, :] + 1,
                jy[:, None] + jy[None, :] + 1 - 2 * ny))

    # ------------------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        """Whether :meth:`calibrate` has run."""
        return self._coeffs is not None

    @property
    def coefficients(self) -> SurrogateCoefficients:
        """The current fit; raises before the first calibration."""
        if self._coeffs is None:
            raise RuntimeError("surrogate model is not calibrated")
        return self._coeffs

    # ------------------------------------------------------------------
    def _kernel_table(self, lx: float, ly: float,
                      depth: float) -> FloatArray:
        """Summed four-image-term kernel over all *extended* offsets.

        Returns shape ``(4*nx - 1, 4*ny - 1)``: entry ``[u, v]`` is the
        response at lateral offset ``(u - (2*nx - 1), v - (2*ny - 1))``
        tiles from a source tile of the grid pitch's footprint.  The
        extended range covers mirror-image sources reflected across the
        die edges, whose offsets reach ``+-(2n - 1)`` tiles.
        """
        dx = self.chip.width / self.nx
        dy = self.chip.height / self.ny
        ox = (np.arange(-(2 * self.nx - 1), 2 * self.nx,
                        dtype=np.float64) * dx)
        oy = (np.arange(-(2 * self.ny - 1), 2 * self.ny,
                        dtype=np.float64) * dy)
        ddx = ox[:, None]
        ddy = oy[None, :]
        total = np.zeros((ox.size, oy.size), dtype=np.float64)
        for sx in (-1.0, 1.0):
            for sy in (-1.0, 1.0):
                b = (0.5 * dx - sx * ddx) / lx
                c = (0.5 * dy - sy * ddy) / ly
                total += spreading_kernel(
                    np.asarray(depth, dtype=np.float64), b, c)
        return total

    def _spatial_operator(self, table: FloatArray) -> FloatArray:
        """Dense ``(nx*ny, nx*ny)`` operator from one kernel table.

        Rows are query tiles, columns source tiles, both raveled in C
        order over ``(i, j)`` — the same ordering ``solve_powers``
        ravels power maps with.  Sums the direct term and the eight
        first-order mirror images (3 x-positions times 3 y-positions).
        """
        shape = (self.nx, self.ny, self.nx, self.ny)
        op = np.zeros(shape, dtype=np.float64)
        for u in self._ux:
            for v in self._vy:
                op += table[u[:, None, :, None], v[None, :, None, :]]
        return op.reshape(self.nx * self.ny, self.nx * self.ny)

    def probe_power_maps(self) -> List[FloatArray]:
        """Deterministic calibration probes: per-layer unit sources.

        Three point sources per layer (centre and two off-centre
        tiles) plus one uniform all-layer map — enough excitations to
        pin the layer-pair couplings and the lateral spreading shape.
        """
        num_layers = self.chip.num_layers
        shape = (self.nx, self.ny, num_layers)
        spots = ((self.nx // 2, self.ny // 2),
                 (self.nx // 4, self.ny // 4),
                 ((3 * self.nx) // 4, (3 * self.ny) // 4))
        probes: List[FloatArray] = []
        for layer in range(num_layers):
            for i, j in spots:
                pmap = np.zeros(shape, dtype=np.float64)
                pmap[i, j, layer] = 1.0
                probes.append(pmap)
        probes.append(np.full(shape, 1.0 / (self.nx * self.ny),
                              dtype=np.float64))
        return probes

    # ------------------------------------------------------------------
    def _fit(self, ops: FloatArray, probes: FloatArray,
             targets: FloatArray, ptot: FloatArray
             ) -> Tuple[float, FloatArray, FloatArray]:
        """LSQ-fit couplings/bias for fixed spatial operators.

        Args:
            ops: batched per-source-layer operators, ``(L, nt, nt)``.
            probes: stacked probe power maps, ``(N, nx, ny, L)``.
            targets: exact active fields for the probes, same shape.
            ptot: total power per probe, ``(N,)``.

        Returns:
            ``(residual, raw_gains, beta)`` — the relative L2 error
            over all probes, the ``(L, L)`` coupling matrix and the
            per-query-layer bias.
        """
        num_layers = self.chip.num_layers
        n_probes = probes.shape[0]
        n_tiles = self.nx * self.ny
        # features[n, q, ls] = sum_s ops[ls][q, s] * probes[n, s, ls]
        p_flat = probes.reshape(n_probes, n_tiles, num_layers)
        features = np.einsum("lqs,nsl->nql", ops, p_flat)
        design = np.concatenate(
            [features.reshape(n_probes * n_tiles, num_layers),
             np.repeat(ptot, n_tiles)[:, None]], axis=1)
        t_flat = targets.reshape(n_probes, n_tiles, num_layers)
        # one multi-RHS solve: the design matrix is shared by every
        # query layer, only the target column differs
        sol, _, _, _ = np.linalg.lstsq(
            design, t_flat.reshape(n_probes * n_tiles, num_layers),
            rcond=None)
        raw_gains = np.ascontiguousarray(sol[:num_layers],
                                         dtype=np.float64)
        beta = np.ascontiguousarray(sol[num_layers], dtype=np.float64)
        pred = (np.einsum("nql,lm->nqm", features, raw_gains)
                + ptot[:, None, None] * beta[None, None, :])
        norm = float(np.linalg.norm(t_flat))
        residual = (float(np.linalg.norm(pred - t_flat))
                    / max(norm, _EPS))
        return residual, raw_gains, beta

    def calibrate(self, solver: ThermalSolver,
                  extra_power_maps: Sequence[FloatArray] = (),
                  ) -> SurrogateCoefficients:
        """Fit the surrogate against the exact solver.

        Solves the deterministic probe set (plus any caller-supplied
        power maps, e.g. the current placement's) with the exact
        solver, then fits couplings/bias by linear least squares
        inside a deterministic search over anisotropic per-layer
        spreading lengths: a shared ``(sx, sy)`` grid scan followed by
        one per-layer, per-axis refinement pass.  No RNG anywhere.

        Args:
            solver: the exact solver to calibrate against; must share
                the chip geometry and lateral grid.
            extra_power_maps: additional ``(nx, ny, L)`` power maps to
                include as fit targets (recalibration passes the live
                power map so drift is corrected where it matters).

        Returns:
            The fitted :class:`SurrogateCoefficients` (also retained
            on the model for :meth:`solve_powers`).
        """
        if (solver.nx, solver.ny) != (self.nx, self.ny) \
                or solver.chip.num_layers != self.chip.num_layers:
            raise ValueError("exact solver grid disagrees with surrogate")
        rec = get_recorder()
        with rec.span("thermal/surrogate"):
            probe_list = self.probe_power_maps() + [
                np.asarray(p, dtype=np.float64)
                for p in extra_power_maps]
            probes = np.stack(probe_list, axis=0)
            targets = np.stack([solver.solve_powers(p).active
                                for p in probe_list], axis=0)
            ptot = probes.sum(axis=(1, 2, 3))
            num_layers = self.chip.num_layers
            half_x = 0.5 * self.chip.width / self.nx
            half_y = 0.5 * self.chip.height / self.ny
            depth = 1.0
            n_tiles = self.nx * self.ny

            op_cache: Dict[Tuple[float, float], FloatArray] = {}

            def op_of(sx: float, sy: float) -> FloatArray:
                key = (float(sx), float(sy))
                if key not in op_cache:
                    table = self._kernel_table(
                        key[0] * half_x, key[1] * half_y, depth)
                    op_cache[key] = self._spatial_operator(table)
                return op_cache[key]

            def fit_at(pairs: FloatArray) -> Tuple[float, FloatArray,
                                                   FloatArray]:
                ops = np.zeros((num_layers, n_tiles, n_tiles),
                               dtype=np.float64)
                for ls in range(num_layers):
                    ops[ls] = op_of(pairs[ls, 0], pairs[ls, 1])
                return self._fit(ops, probes, targets, ptot)

            # shared anisotropic (sx, sy) scan over the full grid ...
            best_pairs = np.full((num_layers, 2), _SCALE_GRID[0],
                                 dtype=np.float64)
            best = fit_at(best_pairs)
            for sx in _SCALE_GRID:
                for sy in _SCALE_GRID:
                    candidate = np.full((num_layers, 2), 0.0,
                                        dtype=np.float64)
                    candidate[:, 0] = sx
                    candidate[:, 1] = sy
                    if np.array_equal(candidate, best_pairs):
                        continue
                    fit = fit_at(candidate)
                    if fit[0] < best[0]:
                        best, best_pairs = fit, candidate
            # ... then one per-layer, per-axis coordinate refinement
            for layer in range(num_layers):
                for axis in (0, 1):
                    for scale in _SCALE_GRID:
                        candidate = best_pairs.copy()
                        candidate[layer, axis] = scale
                        if np.array_equal(candidate, best_pairs):
                            continue
                        fit = fit_at(candidate)
                        if fit[0] < best[0]:
                            best, best_pairs = fit, candidate
            residual, raw_gains, beta = best
            ops = np.zeros((num_layers, n_tiles, n_tiles),
                           dtype=np.float64)
            for ls in range(num_layers):
                ops[ls] = op_of(best_pairs[ls, 0], best_pairs[ls, 1])
            self._ops = ops
            self._raw_gains = raw_gains
            self._beta = beta
            # bake couplings into the operators: combined[ls, s] is the
            # flattened (q, lq) field response to one watt in (s, ls)
            self._combined = np.ascontiguousarray(
                np.einsum("lqs,lm->lsqm", ops, raw_gains).reshape(
                    num_layers, n_tiles, n_tiles * num_layers),
                dtype=np.float64)
            amplitude = float(np.sqrt(np.mean(raw_gains ** 2)))
            self._coeffs = SurrogateCoefficients(
                lx=tuple(float(s) * half_x for s in best_pairs[:, 0]),
                ly=tuple(float(s) * half_y for s in best_pairs[:, 1]),
                depth=depth,
                amplitude=amplitude,
                bias=float(beta.mean()),
                gains=tuple(
                    tuple(float(g) / max(amplitude, _EPS) for g in row)
                    for row in raw_gains),
                layer_bias=tuple(float(b) for b in beta),
                residual=float(residual),
            )
            rec.count("thermal/surrogate/calibrations")
            rec.gauge("thermal/surrogate/residual", float(residual))
        return self._coeffs

    # ------------------------------------------------------------------
    @contract(dtypes={"power_density": np.floating})
    def solve_powers(self, power_density: FloatArray
                     ) -> TemperatureField:
        """Surrogate temperature field for an active-layer power map.

        Same contract as :meth:`ThermalSolver.solve_powers`, evaluated
        as one batched dense contraction against the calibrated
        operators (the substrate block is empty — the surrogate only
        models active layers, which is all the placer reads).
        """
        expected = (self.nx, self.ny, self.chip.num_layers)
        if power_density.shape != expected:
            raise ValueError(f"power map shape {power_density.shape}, "
                             f"expected {expected}")
        if self._ops is None or self._raw_gains is None \
                or self._beta is None:
            raise RuntimeError("surrogate model is not calibrated")
        num_layers = self.chip.num_layers
        n_tiles = self.nx * self.ny
        # (L_s, n_tiles, 1): per-source-layer flattened power columns
        p_cols = np.ascontiguousarray(
            power_density.transpose(2, 0, 1).reshape(
                num_layers, n_tiles, 1), dtype=np.float64)
        spread = np.matmul(self._ops, p_cols)[:, :, 0]
        active = spread.T @ self._raw_gains
        active += self._beta[None, :] * float(power_density.sum())
        get_recorder().count("thermal/surrogate/solves")
        return TemperatureField(
            chip=self.chip, nx=self.nx, ny=self.ny,
            active=active.reshape(self.nx, self.ny, num_layers),
            substrate=np.zeros((self.nx, self.ny, 0), dtype=np.float64))

    @contract(shapes={"cell_powers": ("c",)},
              dtypes={"cell_powers": np.floating})
    def solve_placement(self, placement: Placement,
                        cell_powers: FloatArray) -> TemperatureField:
        """Surrogate field of a placement (mirrors the exact solver).

        Cells are binned with the shared :func:`grid_bin_indices`
        helper, so surrogate and exact evaluations see bit-identical
        power maps for the same placement.
        """
        if cell_powers.shape != (placement.netlist.num_cells,):
            raise ValueError("cell_powers must be indexed by cell id")
        return self.solve_powers(power_map_of(
            placement, cell_powers, self.nx, self.ny))

    # ------------------------------------------------------------------
    def source_column(self, tile: int, layer: int) -> FloatArray:
        """Per-watt field response of one source tile, flattened.

        Returns a read-only view of shape ``(n_tiles * L,)``: the
        active-field change per watt injected at raveled tile ``tile``
        on source layer ``layer``, in the same ``(q, lq)`` C-order as
        ``TemperatureField.active.reshape(-1)``.
        """
        if self._combined is None:
            raise RuntimeError("surrogate model is not calibrated")
        n_tiles = self.nx * self.ny
        if not 0 <= tile < n_tiles:
            raise ValueError(f"tile {tile} out of range [0, {n_tiles})")
        if not 0 <= layer < self.chip.num_layers:
            raise ValueError(f"layer {layer} out of range")
        out = self._combined[layer, tile]
        assert isinstance(out, np.ndarray)
        return out

    def move_delta(self, old_tile: int, old_layer: int, new_tile: int,
                   new_layer: int, power: float) -> FloatArray:
        """Field change from moving ``power`` watts between tiles.

        The inner-loop primitive: the active-field delta (flattened
        ``(n_tiles * L,)``, same ordering as :meth:`source_column`)
        when a source of ``power`` watts moves from ``(old_tile,
        old_layer)`` to ``(new_tile, new_layer)``.  Total power is
        conserved, so the bias term cancels and the delta is one
        scaled row difference of the precomputed combined operator —
        no solve, no binning, O(n_tiles * L) flops.
        """
        old_col = self.source_column(old_tile, old_layer)
        new_col = self.source_column(new_tile, new_layer)
        out = power * (new_col - old_col)
        assert isinstance(out, np.ndarray)
        return out

    def tile_of(self, x: float, y: float) -> int:
        """Raveled grid-tile index of one lateral position."""
        i, j = grid_bin_indices(
            self.chip, self.nx, self.ny,
            np.asarray([x], dtype=np.float64),
            np.asarray([y], dtype=np.float64))
        return int(i[0]) * self.ny + int(j[0])


def power_map_of(placement: Placement, cell_powers: FloatArray,
                 nx: int, ny: int) -> FloatArray:
    """Bin per-cell powers to an ``(nx, ny, L)`` active-layer map."""
    chip = placement.chip
    pmap = np.zeros((nx, ny, chip.num_layers), dtype=np.float64)
    i, j = grid_bin_indices(chip, nx, ny, placement.x, placement.y)
    np.add.at(pmap, (i, j, placement.z.astype(np.int64)),
              np.asarray(cell_powers, dtype=np.float64))
    return pmap
