"""Simple per-cell thermal resistances (Section 2 / 3.2 of the paper).

The placer cannot afford a full thermal solve per candidate move, so the
paper models the thermal resistance from a cell to ambient with simple
heat conduction/convection formulas, "assuming that heat flows in a
straight path from the cell to the chip surface in all three directions
and that the cross sectional area of each path is the same size as the
cell".  Each of the six straight paths is a series conduction resistance
to the corresponding chip surface plus a convective film resistance at
that surface; the six paths act in parallel.  The heat-sink face (bottom)
has a forced-convection coefficient six orders of magnitude larger than
the other faces, which is why ``R`` grows almost linearly with distance
from the heat sink — the ``R ~ R0^z + Rslope^z * d^z`` profile that the
thermal-resistance-reduction nets (Section 3.2) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig


@dataclass(frozen=True)
class VerticalProfile:
    """Linear fit of the vertical thermal-resistance profile.

    ``R(z) ~ r0 + slope * height(z)`` where ``height`` is the physical
    distance of a layer's mid-plane from the bottom of the active stack.

    Attributes:
        r0: intercept, K/W.
        slope: K/W per metre of height.
    """

    r0: float
    slope: float

    def at_layer(self, chip: ChipGeometry, layer: int) -> float:
        """Profile value at a layer's mid-plane."""
        return self.r0 + self.slope * chip.layer_center_height(layer)


class ResistanceModel:
    """Straight-path conduction/convection resistances for one chip.

    Args:
        chip: the placement volume (provides all distances).
        tech: technology parameters (conductivity, film coefficients).
    """

    def __init__(self, chip: ChipGeometry,
                 tech: Optional[TechnologyConfig] = None) -> None:
        self.chip = chip
        self.tech = tech or TechnologyConfig()

    # ------------------------------------------------------------------
    def cell_resistance(self, x: float, y: float, layer: int,
                        area: float) -> float:
        """Thermal resistance from a cell to ambient, K/W.

        Six straight paths in parallel, each with cross-section equal to
        the cell area: down through the substrate to the heat sink, up to
        the top surface, and laterally to the four die edges.
        """
        if area <= 0:
            raise ValueError("cell area must be positive")
        k = self.tech.thermal_conductivity
        chip = self.chip
        conduct = 0.0  # accumulate path conductances (parallel paths)

        # downward path: stack below the layer (effective k), the bulk
        # substrate (silicon k) when it is in the thermal path, and the
        # heat-sink film
        r_down = (chip.layer_center_height(layer) / (k * area)
                  + 1.0 / (self.tech.heat_sink_convection * area))
        if self.tech.substrate_in_thermal_path:
            r_down += (chip.substrate_thickness
                       / (self.tech.substrate_conductivity * area))
        conduct += 1.0 / r_down

        h2 = self.tech.secondary_convection
        if h2 > 0:
            # upward path to the top of the stack
            up_len = chip.stack_height - chip.layer_center_height(layer)
            conduct += 1.0 / (up_len / (k * area) + 1.0 / (h2 * area))
            # four lateral paths to the die edges
            for dist in (x, chip.width - x, y, chip.height - y):
                dist = max(dist, 0.0)
                conduct += 1.0 / (dist / (k * area) + 1.0 / (h2 * area))
        return 1.0 / conduct

    def cell_resistances(self, placement: Placement) -> np.ndarray:
        """Resistances of every cell at its current position, K/W."""
        netlist = placement.netlist
        areas = netlist.areas
        out = np.zeros(netlist.num_cells)
        for cell in netlist.cells:
            cid = cell.id
            out[cid] = self.cell_resistance(
                float(placement.x[cid]), float(placement.y[cid]),
                int(placement.z[cid]), max(float(areas[cid]), 1e-18))
        return out

    # ------------------------------------------------------------------
    def layer_resistance(self, layer: int,
                         area: Optional[float] = None) -> float:
        """Resistance of a representative (chip-centre) cell on a layer.

        Args:
            layer: active layer index.
            area: cross-section; defaults to the footprint of a typical
                5 um^2 cell when not provided.
        """
        if area is None:
            area = 5e-12
        return self.cell_resistance(0.5 * self.chip.width,
                                    0.5 * self.chip.height, layer, area)

    def vertical_profile(self, area: Optional[float] = None
                         ) -> VerticalProfile:
        """Least-squares linear fit ``R(z) ~ r0 + slope * height(z)``.

        The slope is the ``Rslope^z`` of Eq. 12 — the strength with which
        TRR nets pull high-power cells toward the heat sink.  For a
        single-layer chip the slope is the *marginal* resistance per
        metre of height (conduction through the stack), computed
        analytically since a one-point fit is degenerate.
        """
        if area is None:
            area = 5e-12
        k = self.tech.thermal_conductivity
        if self.chip.num_layers == 1:
            r0 = self.layer_resistance(0, area)
            # marginal conduction resistance per metre of extra height,
            # discounted by the fraction of heat taking the downward path
            frac = self._down_fraction(0, area)
            return VerticalProfile(r0=r0, slope=frac / (k * area))
        heights = np.array([self.chip.layer_center_height(z)
                            for z in range(self.chip.num_layers)])
        rs = np.array([self.layer_resistance(z, area)
                       for z in range(self.chip.num_layers)])
        slope, r0 = np.polyfit(heights, rs, 1)
        return VerticalProfile(r0=float(r0), slope=float(slope))

    def _down_fraction(self, layer: int, area: float) -> float:
        """Fraction of a cell's heat taking the downward (heat-sink) path."""
        k = self.tech.thermal_conductivity
        chip = self.chip
        r_down = (chip.layer_center_height(layer) / (k * area)
                  + 1.0 / (self.tech.heat_sink_convection * area))
        if self.tech.substrate_in_thermal_path:
            r_down += (chip.substrate_thickness
                       / (self.tech.substrate_conductivity * area))
        g_down = 1.0 / r_down
        total = g_down
        h2 = self.tech.secondary_convection
        if h2 > 0:
            up_len = chip.stack_height - chip.layer_center_height(layer)
            total += 1.0 / (up_len / (k * area) + 1.0 / (h2 * area))
            half_w = 0.5 * chip.width
            half_h = 0.5 * chip.height
            for dist in (half_w, half_w, half_h, half_h):
                total += 1.0 / (dist / (k * area) + 1.0 / (h2 * area))
        return g_down / total
