"""Thermal and power models for 3D ICs.

- :class:`~repro.thermal.power.PowerModel` — the dynamic power model of
  Eqs. 4-5 and the per-cell attribution of Eqs. 10-11, with the PEKO-3D
  optimal lower bounds of Eqs. 13-15.
- :class:`~repro.thermal.resistance.ResistanceModel` — the paper's
  simple straight-path conduction/convection thermal resistances and the
  vertical profile ``R ~ R0 + Rslope * dz`` that drives TRR nets.
- :class:`~repro.thermal.solver.ThermalSolver` — a full-chip
  finite-volume temperature solver (the evaluation-side substitute for
  the paper's FEA, see DESIGN.md substitution #3).
- :mod:`~repro.thermal.analysis` — temperature summaries of placements.
"""

from repro.thermal.power import PekoOptimal, PowerModel
from repro.thermal.resistance import ResistanceModel, VerticalProfile
from repro.thermal.solver import ThermalSolver, TemperatureField
from repro.thermal.analysis import ThermalSummary, analyze_placement

__all__ = [
    "PowerModel",
    "PekoOptimal",
    "ResistanceModel",
    "VerticalProfile",
    "ThermalSolver",
    "TemperatureField",
    "ThermalSummary",
    "analyze_placement",
]
