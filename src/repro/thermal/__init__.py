"""Thermal and power models for 3D ICs.

- :class:`~repro.thermal.power.PowerModel` — the dynamic power model of
  Eqs. 4-5 and the per-cell attribution of Eqs. 10-11, with the PEKO-3D
  optimal lower bounds of Eqs. 13-15.
- :class:`~repro.thermal.resistance.ResistanceModel` — the paper's
  simple straight-path conduction/convection thermal resistances and the
  vertical profile ``R ~ R0 + Rslope * dz`` that drives TRR nets.
- :class:`~repro.thermal.solver.ThermalSolver` — a full-chip
  finite-volume temperature solver (the evaluation-side substitute for
  the paper's FEA, see DESIGN.md substitution #3).
- :class:`~repro.thermal.surrogate.SurrogateThermalModel` — the
  calibrated closed-form image-source surrogate of the exact solver.
- :class:`~repro.thermal.fidelity.ThermalFidelityPolicy` — routes
  temperature-field evaluations between the exact solver and the
  surrogate by the ``thermal_fidelity`` config knob.
- :mod:`~repro.thermal.analysis` — temperature summaries of placements.
"""

from repro.thermal.power import PekoOptimal, PowerModel
from repro.thermal.resistance import ResistanceModel, VerticalProfile
from repro.thermal.solver import ThermalSolver, TemperatureField
from repro.thermal.surrogate import (SurrogateCoefficients,
                                     SurrogateThermalModel)
from repro.thermal.fidelity import (THERMAL_FIDELITY_MODES,
                                    ThermalFidelityPolicy)
from repro.thermal.analysis import ThermalSummary, analyze_placement

__all__ = [
    "PowerModel",
    "PekoOptimal",
    "ResistanceModel",
    "VerticalProfile",
    "ThermalSolver",
    "TemperatureField",
    "SurrogateCoefficients",
    "SurrogateThermalModel",
    "THERMAL_FIDELITY_MODES",
    "ThermalFidelityPolicy",
    "ThermalSummary",
    "analyze_placement",
]
