"""Full-chip steady-state temperature solver (finite-volume network).

The paper evaluates its placements with finite-element analysis [2],
with convective boundary conditions at the heat sink under the bulk
substrate.  We discretize the same physics as a finite-volume resistive
network: hexahedral control volumes on a regular ``nx x ny`` lateral
grid, one volume plane per active layer plus several planes through the
bulk substrate, conduction conductances between face-adjacent volumes
(``G = k A / d``) and a convective film conductance (``G = h A``) from
every boundary face to ambient.  On a regular hexahedral mesh with
piecewise-constant material properties this is the same discrete system
first-order FEA produces (DESIGN.md substitution #3).

Temperatures are solved from ``G T = P``.  The conductance matrix
depends only on the geometry, so its sparse LU factorization is
computed once and cached: every solve after the first is a pair of
cheap triangular back-substitutions (the placer calls
:meth:`ThermalSolver.solve_powers` once per evaluation, and sweeps call
it hundreds of times on the same geometry).  Assembly itself is
vectorized — face couplings are generated from index grids, not a
triple Python loop.  Temperatures are reported relative to ambient.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import splu

from repro.analysis import FloatArray, IntArray, contract
from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.obs import get_recorder
from repro.technology import TechnologyConfig

#: Process-wide LU cache keyed by a content hash of the resistance
#: -model inputs (chip geometry + layer stack + thermal technology +
#: grid), not object identity: rebuilding a solver — or a
#: ``ResistanceModel``/chip — with identical parameters reuses the warm
#: factorization instead of re-running ``splu``.  Bounded LRU so sweeps
#: over many geometries cannot grow it without limit.
_LU_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_LU_CACHE_MAX = 8


@contract(shapes={"x": ("n",), "y": ("n",)},
          dtypes={"x": np.floating, "y": np.floating})
def grid_bin_indices(chip: ChipGeometry, nx: int, ny: int,
                     x: FloatArray, y: FloatArray
                     ) -> Tuple[IntArray, IntArray]:
    """Lateral grid bin of each ``(x, y)`` position, clamped to the die.

    Shared by power-map accumulation (:meth:`ThermalSolver.
    solve_placement`) and temperature lookups (:meth:`TemperatureField.
    cell_temperatures`), so both bin positions identically.
    """
    i = np.clip((np.asarray(x, dtype=np.float64) / chip.width
                 * nx).astype(np.int64), 0, nx - 1)
    j = np.clip((np.asarray(y, dtype=np.float64) / chip.height
                 * ny).astype(np.int64), 0, ny - 1)
    return i, j


@dataclass
class TemperatureField:
    """A solved temperature field.

    Attributes:
        chip: the geometry the field was solved on.
        nx, ny: lateral grid resolution.
        active: temperatures of the active-layer volumes above ambient,
            shape ``(nx, ny, num_layers)``, kelvin.
        substrate: temperatures of the substrate volume planes,
            shape ``(nx, ny, n_substrate)``, kelvin (plane 0 is adjacent
            to the heat sink).
    """

    chip: ChipGeometry
    nx: int
    ny: int
    active: FloatArray
    substrate: FloatArray

    def at(self, x: float, y: float, layer: int) -> float:
        """Temperature above ambient at a point on an active layer."""
        i = min(max(int(x / self.chip.width * self.nx), 0), self.nx - 1)
        j = min(max(int(y / self.chip.height * self.ny), 0), self.ny - 1)
        return float(self.active[i, j, layer])

    def cell_temperatures(self, placement: Placement) -> FloatArray:
        """Temperature above ambient at each cell's position."""
        i, j = grid_bin_indices(self.chip, self.nx, self.ny,
                                placement.x, placement.y)
        return self.active[i, j, placement.z.astype(np.int64)]

    @property
    def max_temperature(self) -> float:
        """Hottest active volume, kelvin above ambient."""
        return float(self.active.max())

    @property
    def mean_temperature(self) -> float:
        """Mean active-volume temperature, kelvin above ambient."""
        return float(self.active.mean())


class ThermalSolver:
    """Finite-volume thermal solver bound to a chip geometry.

    Args:
        chip: the placement volume.
        tech: technology parameters (conductivity, film coefficients).
        nx, ny: lateral grid resolution (defaults scale with aspect).
        n_substrate: number of volume planes through the bulk substrate;
            more planes capture lateral heat spreading more accurately.
            Forced to 0 when the technology excludes the substrate from
            the thermal path (the paper's [2]-style boundary condition,
            the default) — the heat-sink film then sits directly under
            layer 0.
    """

    def __init__(self, chip: ChipGeometry,
                 tech: Optional[TechnologyConfig] = None,
                 nx: int = 16, ny: int = 16,
                 n_substrate: int = 4) -> None:
        if nx < 1 or ny < 1 or n_substrate < 0:
            raise ValueError("grid resolutions must be positive")
        self.chip = chip
        self.tech = tech or TechnologyConfig()
        self.nx = nx
        self.ny = ny
        self.n_substrate = (n_substrate
                            if self.tech.substrate_in_thermal_path else 0)
        self._matrix: Optional[csr_matrix] = None
        # cached sparse LU of the conductance matrix (scipy SuperLU,
        # which ships no type stubs)
        self._factor: Optional[Any] = None

    # ------------------------------------------------------------------
    def factor_key(self) -> str:
        """Content hash of everything the conductance matrix depends
        on — the key of the process-wide LU cache."""
        from repro.obs.manifest import content_hash
        chip = self.chip
        tech = self.tech
        return content_hash({
            "width": chip.width,
            "height": chip.height,
            "num_layers": chip.num_layers,
            "layer_thickness": chip.layer_thickness,
            "interlayer_thickness": chip.interlayer_thickness,
            "substrate_thickness": chip.substrate_thickness,
            "thermal_conductivity": tech.thermal_conductivity,
            "substrate_conductivity": tech.substrate_conductivity,
            "heat_sink_convection": tech.heat_sink_convection,
            "secondary_convection": tech.secondary_convection,
            "substrate_in_thermal_path": tech.substrate_in_thermal_path,
            "nx": self.nx,
            "ny": self.ny,
            "n_substrate": self.n_substrate,
        })

    # ------------------------------------------------------------------
    @property
    def _nz(self) -> int:
        return self.chip.num_layers + self.n_substrate

    def _plane_thickness(self, kz: int) -> float:
        """Thickness of volume plane ``kz`` (0 = bottom substrate plane)."""
        if kz < self.n_substrate:
            return self.chip.substrate_thickness / self.n_substrate
        return self.chip.layer_thickness

    def _plane_conductivity(self, kz: int) -> float:
        """Conductivity of volume plane ``kz``: bulk silicon in the
        substrate, the effective stack value in the active layers."""
        if kz < self.n_substrate:
            return self.tech.substrate_conductivity
        return self.tech.thermal_conductivity

    def _vertical_resistance_per_area(self, kz: int) -> float:
        """Series thermal resistance (times area) between the centres of
        planes ``kz`` and ``kz+1``: half of each plane at its own
        conductivity, plus the bonding dielectric between active layers
        at the effective stack conductivity."""
        r = (0.5 * self._plane_thickness(kz) / self._plane_conductivity(kz)
             + 0.5 * self._plane_thickness(kz + 1)
             / self._plane_conductivity(kz + 1))
        if kz >= self.n_substrate:
            r += (self.chip.interlayer_thickness
                  / self.tech.thermal_conductivity)
        return r

    def _node(self, i: int, j: int, kz: int) -> int:
        return (kz * self.ny + j) * self.nx + i

    def _assemble(self) -> csr_matrix:
        """Build the conductance matrix once; it depends only on geometry.

        Couplings are generated per face direction from index grids:
        every x-face pairs ``node[kz, j, i]`` with ``node[kz, j, i+1]``
        and so on, with per-plane conductances broadcast across the
        plane — no Python loop over volumes.
        """
        if self._matrix is not None:
            return self._matrix
        nx, ny, nz = self.nx, self.ny, self._nz
        dx = self.chip.width / nx
        dy = self.chip.height / ny
        n = nx * ny * nz
        # node ids laid out as [kz, j, i] (matches _node's linearization)
        idx = np.arange(n, dtype=np.int64).reshape(nz, ny, nx)
        diag = np.zeros(n, dtype=np.float64)

        t = np.array([self._plane_thickness(kz) for kz in range(nz)],
                     dtype=np.float64)
        k_plane = np.array([self._plane_conductivity(kz)
                            for kz in range(nz)], dtype=np.float64)
        g_x = k_plane * (dy * t) / dx
        g_y = k_plane * (dx * t) / dy
        g_z = np.array([(dx * dy) / self._vertical_resistance_per_area(kz)
                        for kz in range(nz - 1)], dtype=np.float64)

        couples: List[Tuple[IntArray, IntArray, FloatArray]] = []
        if nx > 1:
            couples.append((idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel(),
                            np.repeat(g_x, ny * (nx - 1))))
        if ny > 1:
            couples.append((idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel(),
                            np.repeat(g_y, (ny - 1) * nx)))
        if nz > 1:
            couples.append((idx[:-1, :, :].ravel(), idx[1:, :, :].ravel(),
                            np.repeat(g_z, ny * nx)))
        for a, b, g in couples:
            np.add.at(diag, a, g)
            np.add.at(diag, b, g)

        # boundary films to ambient (accumulated on the diagonal)
        diag3 = diag.reshape(nz, ny, nx)
        h_sink = self.tech.heat_sink_convection
        h2 = self.tech.secondary_convection
        # heat-sink face, in series with conduction through the
        # half-thickness of the bottom plane
        r_film = 1.0 / (h_sink * dx * dy)
        r_half = (0.5 * t[0]) / (k_plane[0] * dx * dy)
        diag3[0] += 1.0 / (r_film + r_half)
        if h2 > 0:
            diag3[nz - 1] += h2 * dx * dy
            mask_i = np.zeros(nx, dtype=bool)
            mask_i[0] = mask_i[nx - 1] = True
            mask_j = np.zeros(ny, dtype=bool)
            mask_j[0] = mask_j[ny - 1] = True
            diag3[:, :, mask_i] += (h2 * dy * t)[:, None, None]
            diag3[:, mask_j, :] += (h2 * dx * t)[:, None, None]

        rows = np.concatenate([np.concatenate([a for a, _, _ in couples]),
                               np.concatenate([b for _, b, _ in couples]),
                               np.arange(n, dtype=np.int64)]) \
            if couples else np.arange(n, dtype=np.int64)
        cols = np.concatenate([np.concatenate([b for _, b, _ in couples]),
                               np.concatenate([a for a, _, _ in couples]),
                               np.arange(n, dtype=np.int64)]) \
            if couples else np.arange(n, dtype=np.int64)
        neg = (np.concatenate([-g for _, _, g in couples])
               if couples else np.zeros(0, dtype=np.float64))
        vals = np.concatenate([neg, neg, diag])
        self._matrix = coo_matrix((vals, (rows, cols)),
                                  shape=(n, n)).tocsr()
        return self._matrix

    def _factorize(self) -> Any:
        """Sparse LU of the conductance matrix, computed once per
        *geometry* (not per solver object) and reused by every
        subsequent solve.  Lookup order: this instance, then the
        process-wide content-keyed cache, then a fresh ``splu``."""
        rec = get_recorder()
        if self._factor is not None:
            rec.count("thermal/lu_hit")
            return self._factor
        key = self.factor_key()
        cached = _LU_CACHE.get(key)
        if cached is not None:
            _LU_CACHE.move_to_end(key)
            rec.count("thermal/lu_shared_hit")
            self._factor = cached
            return cached
        rec.count("thermal/lu_miss")
        with rec.span("thermal/factorize"):
            self._factor = splu(self._assemble().tocsc())
        _LU_CACHE[key] = self._factor
        while len(_LU_CACHE) > _LU_CACHE_MAX:
            _LU_CACHE.popitem(last=False)
        return self._factor

    # ------------------------------------------------------------------
    @contract(dtypes={"power_density": np.floating})
    def solve_powers(self, power_density: FloatArray
                     ) -> TemperatureField:
        """Solve for a given active-layer power map.

        Args:
            power_density: watts injected per active-layer volume, shape
                ``(nx, ny, num_layers)``.

        Returns:
            The solved :class:`TemperatureField` (relative to ambient).
        """
        expected = (self.nx, self.ny, self.chip.num_layers)
        if power_density.shape != expected:
            raise ValueError(f"power map shape {power_density.shape}, "
                             f"expected {expected}")
        factor = self._factorize()
        rhs = np.zeros((self._nz, self.ny, self.nx), dtype=np.float64)
        rhs[self.n_substrate:] = power_density.transpose(2, 1, 0)
        temps = factor.solve(rhs.ravel())
        grid = temps.reshape(self._nz, self.ny, self.nx).transpose(2, 1, 0)
        return TemperatureField(
            chip=self.chip, nx=self.nx, ny=self.ny,
            active=grid[:, :, self.n_substrate:].copy(),
            substrate=grid[:, :, :self.n_substrate].copy())

    @contract(shapes={"cell_powers": ("c",)},
              dtypes={"cell_powers": np.floating})
    def solve_placement(self, placement: Placement,
                        cell_powers: FloatArray) -> TemperatureField:
        """Solve the temperature field of a placement.

        Args:
            placement: cell positions.
            cell_powers: watts per cell (e.g. from
                :meth:`repro.thermal.power.PowerModel.cell_powers`).

        Returns:
            The solved temperature field.
        """
        if cell_powers.shape != (placement.netlist.num_cells,):
            raise ValueError("cell_powers must be indexed by cell id")
        pmap = np.zeros((self.nx, self.ny, self.chip.num_layers),
                        dtype=np.float64)
        i, j = grid_bin_indices(self.chip, self.nx, self.ny,
                                placement.x, placement.y)
        np.add.at(pmap, (i, j, placement.z.astype(np.int64)),
                  cell_powers)
        return self.solve_powers(pmap)
