"""Full-chip steady-state temperature solver (finite-volume network).

The paper evaluates its placements with finite-element analysis [2],
with convective boundary conditions at the heat sink under the bulk
substrate.  We discretize the same physics as a finite-volume resistive
network: hexahedral control volumes on a regular ``nx x ny`` lateral
grid, one volume plane per active layer plus several planes through the
bulk substrate, conduction conductances between face-adjacent volumes
(``G = k A / d``) and a convective film conductance (``G = h A``) from
every boundary face to ambient.  On a regular hexahedral mesh with
piecewise-constant material properties this is the same discrete system
first-order FEA produces (DESIGN.md substitution #3).

Temperatures are solved from ``G T = P`` with a sparse direct solve and
reported relative to ambient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import spsolve

from repro.geometry.chip import ChipGeometry
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig


@dataclass
class TemperatureField:
    """A solved temperature field.

    Attributes:
        chip: the geometry the field was solved on.
        nx, ny: lateral grid resolution.
        active: temperatures of the active-layer volumes above ambient,
            shape ``(nx, ny, num_layers)``, kelvin.
        substrate: temperatures of the substrate volume planes,
            shape ``(nx, ny, n_substrate)``, kelvin (plane 0 is adjacent
            to the heat sink).
    """

    chip: ChipGeometry
    nx: int
    ny: int
    active: np.ndarray
    substrate: np.ndarray

    def at(self, x: float, y: float, layer: int) -> float:
        """Temperature above ambient at a point on an active layer."""
        i = min(max(int(x / self.chip.width * self.nx), 0), self.nx - 1)
        j = min(max(int(y / self.chip.height * self.ny), 0), self.ny - 1)
        return float(self.active[i, j, layer])

    def cell_temperatures(self, placement: Placement) -> np.ndarray:
        """Temperature above ambient at each cell's position."""
        n = placement.netlist.num_cells
        out = np.zeros(n)
        for cid in range(n):
            out[cid] = self.at(float(placement.x[cid]),
                               float(placement.y[cid]),
                               int(placement.z[cid]))
        return out

    @property
    def max_temperature(self) -> float:
        """Hottest active volume, kelvin above ambient."""
        return float(self.active.max())

    @property
    def mean_temperature(self) -> float:
        """Mean active-volume temperature, kelvin above ambient."""
        return float(self.active.mean())


class ThermalSolver:
    """Finite-volume thermal solver bound to a chip geometry.

    Args:
        chip: the placement volume.
        tech: technology parameters (conductivity, film coefficients).
        nx, ny: lateral grid resolution (defaults scale with aspect).
        n_substrate: number of volume planes through the bulk substrate;
            more planes capture lateral heat spreading more accurately.
            Forced to 0 when the technology excludes the substrate from
            the thermal path (the paper's [2]-style boundary condition,
            the default) — the heat-sink film then sits directly under
            layer 0.
    """

    def __init__(self, chip: ChipGeometry,
                 tech: Optional[TechnologyConfig] = None,
                 nx: int = 16, ny: int = 16, n_substrate: int = 4):
        if nx < 1 or ny < 1 or n_substrate < 0:
            raise ValueError("grid resolutions must be positive")
        self.chip = chip
        self.tech = tech or TechnologyConfig()
        self.nx = nx
        self.ny = ny
        self.n_substrate = (n_substrate
                            if self.tech.substrate_in_thermal_path else 0)
        self._matrix: Optional[csr_matrix] = None

    # ------------------------------------------------------------------
    @property
    def _nz(self) -> int:
        return self.chip.num_layers + self.n_substrate

    def _plane_thickness(self, kz: int) -> float:
        """Thickness of volume plane ``kz`` (0 = bottom substrate plane)."""
        if kz < self.n_substrate:
            return self.chip.substrate_thickness / self.n_substrate
        return self.chip.layer_thickness

    def _plane_conductivity(self, kz: int) -> float:
        """Conductivity of volume plane ``kz``: bulk silicon in the
        substrate, the effective stack value in the active layers."""
        if kz < self.n_substrate:
            return self.tech.substrate_conductivity
        return self.tech.thermal_conductivity

    def _vertical_resistance_per_area(self, kz: int) -> float:
        """Series thermal resistance (times area) between the centres of
        planes ``kz`` and ``kz+1``: half of each plane at its own
        conductivity, plus the bonding dielectric between active layers
        at the effective stack conductivity."""
        r = (0.5 * self._plane_thickness(kz) / self._plane_conductivity(kz)
             + 0.5 * self._plane_thickness(kz + 1)
             / self._plane_conductivity(kz + 1))
        if kz >= self.n_substrate:
            r += (self.chip.interlayer_thickness
                  / self.tech.thermal_conductivity)
        return r

    def _node(self, i: int, j: int, kz: int) -> int:
        return (kz * self.ny + j) * self.nx + i

    def _assemble(self) -> csr_matrix:
        """Build the conductance matrix once; it depends only on geometry."""
        if self._matrix is not None:
            return self._matrix
        nx, ny, nz = self.nx, self.ny, self._nz
        dx = self.chip.width / nx
        dy = self.chip.height / ny
        rows, cols, vals = [], [], []
        diag = np.zeros(nx * ny * nz)

        def couple(a: int, b: int, g: float) -> None:
            rows.append(a)
            cols.append(b)
            vals.append(-g)
            rows.append(b)
            cols.append(a)
            vals.append(-g)
            diag[a] += g
            diag[b] += g

        h_sink = self.tech.heat_sink_convection
        h2 = self.tech.secondary_convection
        for kz in range(nz):
            t = self._plane_thickness(kz)
            k_plane = self._plane_conductivity(kz)
            g_x = k_plane * (dy * t) / dx
            g_y = k_plane * (dx * t) / dy
            if kz + 1 < nz:
                g_z = (dx * dy) / self._vertical_resistance_per_area(kz)
            for j in range(ny):
                for i in range(nx):
                    node = self._node(i, j, kz)
                    if i + 1 < nx:
                        couple(node, self._node(i + 1, j, kz), g_x)
                    if j + 1 < ny:
                        couple(node, self._node(i, j + 1, kz), g_y)
                    if kz + 1 < nz:
                        couple(node, self._node(i, j, kz + 1), g_z)
                    # boundary films to ambient
                    g_amb = 0.0
                    if kz == 0:
                        # heat-sink face, in series with conduction
                        # through the half-thickness of the bottom plane
                        r_film = 1.0 / (h_sink * dx * dy)
                        r_half = (0.5 * t) / (k_plane * dx * dy)
                        g_amb += 1.0 / (r_film + r_half)
                    if kz == nz - 1 and h2 > 0:
                        g_amb += h2 * dx * dy
                    if h2 > 0:
                        if i == 0 or i == nx - 1:
                            g_amb += h2 * dy * t
                        if j == 0 or j == ny - 1:
                            g_amb += h2 * dx * t
                    diag[node] += g_amb

        n = nx * ny * nz
        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag.tolist())
        self._matrix = coo_matrix((vals, (rows, cols)),
                                  shape=(n, n)).tocsr()
        return self._matrix

    # ------------------------------------------------------------------
    def solve_powers(self, power_density: np.ndarray) -> TemperatureField:
        """Solve for a given active-layer power map.

        Args:
            power_density: watts injected per active-layer volume, shape
                ``(nx, ny, num_layers)``.

        Returns:
            The solved :class:`TemperatureField` (relative to ambient).
        """
        expected = (self.nx, self.ny, self.chip.num_layers)
        if power_density.shape != expected:
            raise ValueError(f"power map shape {power_density.shape}, "
                             f"expected {expected}")
        matrix = self._assemble()
        rhs = np.zeros(self.nx * self.ny * self._nz)
        for layer in range(self.chip.num_layers):
            kz = self.n_substrate + layer
            for j in range(self.ny):
                for i in range(self.nx):
                    rhs[self._node(i, j, kz)] = power_density[i, j, layer]
        temps = spsolve(matrix, rhs)
        grid = temps.reshape(self._nz, self.ny, self.nx).transpose(2, 1, 0)
        return TemperatureField(
            chip=self.chip, nx=self.nx, ny=self.ny,
            active=grid[:, :, self.n_substrate:].copy(),
            substrate=grid[:, :, :self.n_substrate].copy())

    def solve_placement(self, placement: Placement,
                        cell_powers: np.ndarray) -> TemperatureField:
        """Solve the temperature field of a placement.

        Args:
            placement: cell positions.
            cell_powers: watts per cell (e.g. from
                :meth:`repro.thermal.power.PowerModel.cell_powers`).

        Returns:
            The solved temperature field.
        """
        if cell_powers.shape != (placement.netlist.num_cells,):
            raise ValueError("cell_powers must be indexed by cell id")
        pmap = np.zeros((self.nx, self.ny, self.chip.num_layers))
        for cid in range(placement.netlist.num_cells):
            p = float(cell_powers[cid])
            if p == 0.0:
                continue
            i = min(max(int(placement.x[cid] / self.chip.width * self.nx),
                        0), self.nx - 1)
            j = min(max(int(placement.y[cid] / self.chip.height * self.ny),
                        0), self.ny - 1)
            pmap[i, j, int(placement.z[cid])] += p
        return self.solve_powers(pmap)
