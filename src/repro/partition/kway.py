"""K-way partitioning by recursive bisection.

The placer only ever bisects, but a k-way split of a netlist is useful
on its own (floorplanning studies, the Rent estimator, multi-die
assignment).  This applies the multilevel bisector recursively with
balanced target fractions, the standard construction hMetis also offers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.partition.fm import cut_cost
from repro.partition.hypergraph import FREE, Hypergraph
from repro.partition.multilevel import BisectionConfig, bisect


def partition_kway(graph: Hypergraph, k: int,
                   config: Optional[BisectionConfig] = None
                   ) -> Tuple[np.ndarray, float]:
    """Split a hypergraph into ``k`` balanced parts.

    Parts are produced by recursive bisection with target fractions
    proportional to the number of final parts on each side, so any
    ``k`` (not only powers of two) comes out balanced.

    Args:
        graph: the hypergraph; fixed vertices are only supported for
            ``k == 2`` (they pin to sides, which has no unique meaning
            across an arbitrary recursion tree).
        k: number of parts (>= 1).
        config: bisection parameters for every internal split.

    Returns:
        ``(parts, total_cut)`` — part index per vertex in ``0..k-1``
        and the weighted k-way cut (each net spanning >1 part counts
        once).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > max(graph.num_vertices, 1):
        raise ValueError("more parts than vertices")
    if k > 2 and (graph.fixed != FREE).any():
        raise ValueError("fixed vertices are only supported for k == 2")
    config = config or BisectionConfig()
    parts = np.zeros(graph.num_vertices, dtype=np.int64)
    if k == 1 or graph.num_vertices == 0:
        return parts, 0.0

    rng = np.random.default_rng(config.seed)

    def split(vertex_ids: List[int], k_here: int, base: int) -> None:
        if k_here == 1 or len(vertex_ids) <= 1:
            parts[vertex_ids] = base
            return
        k_left = k_here // 2
        k_right = k_here - k_left
        local = {cid: i for i, cid in enumerate(vertex_ids)}
        sub_nets = []
        sub_weights = []
        for pins, w in zip(graph.nets, graph.net_weights):
            inside = [local[p] for p in pins if p in local]
            if len(inside) >= 2:
                sub_nets.append(inside)
                sub_weights.append(w)
        sub = Hypergraph(len(vertex_ids), sub_nets, sub_weights,
                         graph.vertex_weights[vertex_ids],
                         graph.fixed[vertex_ids] if k_here == 2
                         and len(vertex_ids) == graph.num_vertices
                         else None)
        sub_config = BisectionConfig(
            target=k_left / k_here,
            tolerance=config.tolerance,
            coarsen_to=config.coarsen_to,
            num_starts=config.num_starts,
            max_passes=config.max_passes,
            seed=int(rng.integers(0, 2 ** 31)))
        side, _ = bisect(sub, sub_config)
        left = [cid for cid in vertex_ids if side[local[cid]] == 0]
        right = [cid for cid in vertex_ids if side[local[cid]] == 1]
        if not left or not right:
            # degenerate split: fall back to a size-based slice
            ordered = list(vertex_ids)
            cut_at = max(1, len(ordered) * k_left // k_here)
            left, right = ordered[:cut_at], ordered[cut_at:]
        split(left, k_left, base)
        split(right, k_right, base + k_left)

    split(list(range(graph.num_vertices)), k, 0)
    return parts, kway_cut(graph, parts)


def kway_cut(graph: Hypergraph, parts: np.ndarray) -> float:
    """Weighted k-way cut: nets spanning more than one part, counted
    once each."""
    total = 0.0
    for pins, w in zip(graph.nets, graph.net_weights):
        if not pins:
            continue
        first = parts[pins[0]]
        for p in pins:
            if parts[p] != first:
                total += w
                break
    return total
