"""Picklable bisection subproblems for the parallel backend.

A :class:`BisectionTask` is a bisection problem reduced to flat numpy
arrays — the CSR pin structure, net weights, vertex weights and fixed
sides — plus the scalar partitioning knobs.  It carries everything
:func:`~repro.partition.multilevel.bisect` needs and nothing else: no
netlist, no placement, no placer state.  That makes tasks cheap to
pickle across process boundaries and makes :func:`solve` a pure
function of its payload, which is what the determinism contract of
:mod:`repro.parallel` requires.

The ``key`` field is the caller's deterministic task id (the global
placer uses the region's bisection-tree path id); the task ``seed``
must be derived from it, never from a shared sequential stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.obs import Recorder, Telemetry, use_recorder
from repro.parallel import SegmentRef, resolve_packed
from repro.partition.hypergraph import Hypergraph
from repro.partition.multilevel import BisectionConfig, bisect

__all__ = ["BisectionTask", "solve", "solve_packed_recorded",
           "solve_recorded", "task_from_payload", "task_payload"]


@dataclass(frozen=True)
class BisectionTask:
    """One self-contained bisection problem in compact array form.

    Attributes:
        key: deterministic task id (region path id), for telemetry and
            seed-derivation audits.
        net_ptr: int64 array of length ``m + 1``; net ``e``'s pins are
            ``pin_vertices[net_ptr[e]:net_ptr[e + 1]]``.
        pin_vertices: int64 array of local vertex ids, all nets
            concatenated.
        net_weights: float64 cut cost per net.
        vertex_weights: float64 balance weight per vertex.
        fixed: int64 per-vertex side pin (-1 = free), for terminal
            propagation.
        target: desired fraction of free weight in part 0.
        tolerance: allowed absolute deviation from ``target``.
        num_starts: random initial partitions at the coarsest level.
        max_passes: FM passes per refinement level.
        seed: task-local RNG seed (derive with
            :func:`repro.parallel.task_seed`).
    """

    key: int
    net_ptr: np.ndarray
    pin_vertices: np.ndarray
    net_weights: np.ndarray
    vertex_weights: np.ndarray
    fixed: np.ndarray
    target: float
    tolerance: float
    num_starts: int
    max_passes: int
    seed: int

    @property
    def num_vertices(self) -> int:
        """Vertex count of the subproblem."""
        return len(self.vertex_weights)

    @property
    def num_nets(self) -> int:
        """Net count of the subproblem."""
        return len(self.net_ptr) - 1

    def hypergraph(self) -> Hypergraph:
        """Materialize the task's :class:`Hypergraph`."""
        # np.split on an empty index list would yield one spurious
        # empty net, so the net-free case short-circuits
        nets: List[List[int]] = [] if self.num_nets == 0 else [
            pins.tolist()
            for pins in np.split(self.pin_vertices, self.net_ptr[1:-1])]
        return Hypergraph(self.num_vertices, nets,
                          self.net_weights.tolist(),
                          self.vertex_weights, self.fixed)

    @classmethod
    def from_nets(cls, nets: List[List[int]], net_weights: List[float],
                  vertex_weights: List[float], fixed: List[int],
                  target: float, tolerance: float, num_starts: int,
                  max_passes: int, seed: int, key: int = 0,
                  ) -> "BisectionTask":
        """Flatten pin lists into the compact CSR payload form."""
        m = len(nets)
        counts = np.fromiter((len(p) for p in nets), dtype=np.int64,
                             count=m)
        net_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=net_ptr[1:])
        pin_vertices = np.fromiter(
            (p for pins in nets for p in pins), dtype=np.int64,
            count=int(net_ptr[-1]))
        return cls(
            key=int(key), net_ptr=net_ptr, pin_vertices=pin_vertices,
            net_weights=np.asarray(net_weights, dtype=np.float64),
            vertex_weights=np.asarray(vertex_weights, dtype=np.float64),
            fixed=np.asarray(fixed, dtype=np.int64),
            target=float(target), tolerance=float(tolerance),
            num_starts=int(num_starts), max_passes=int(max_passes),
            seed=int(seed))


def solve(task: BisectionTask) -> np.ndarray:
    """Solve one bisection task; returns the 0/1 side of every vertex.

    A pure function of the payload: identical tasks produce identical
    partitions on any backend, in any process, in any order.
    """
    parts, _ = bisect(task.hypergraph(), BisectionConfig(
        target=task.target, tolerance=task.tolerance,
        num_starts=task.num_starts, max_passes=task.max_passes,
        seed=task.seed))
    return parts


#: BisectionTask fields that are numpy arrays — the ones the shared
#: arena maps zero-copy; everything else rides in the segment header.
_ARRAY_FIELDS = ("net_ptr", "pin_vertices", "net_weights",
                 "vertex_weights", "fixed")

_SCALAR_FIELDS = ("key", "target", "tolerance", "num_starts",
                  "max_passes", "seed")


def task_payload(task: BisectionTask) -> dict:
    """Flatten a task into the dict form the shared arena packs."""
    payload = {name: getattr(task, name) for name in _SCALAR_FIELDS}
    for name in _ARRAY_FIELDS:
        payload[name] = getattr(task, name)
    return payload


def task_from_payload(payload: dict) -> BisectionTask:
    """Rebuild a task from a packed payload dict.

    The arrays may be read-only shared-memory views; every consumer
    downstream (:meth:`BisectionTask.hypergraph`) either copies to
    Python lists or treats them as immutable, so no copy is made here.
    """
    return BisectionTask(**payload)


def solve_recorded(task: BisectionTask) -> Tuple[np.ndarray, Telemetry]:
    """Solve one task under a child recorder; ship its telemetry back.

    The worker installs a fresh ambient :class:`Recorder` so the deep
    counters the partitioner emits (``fm/passes`` …) are captured
    in-process, then returns them as a snapshot for the dispatching
    side to fold into the run recorder with
    :meth:`~repro.obs.Recorder.merge`.  Counters are additive, so the
    merged totals are independent of how tasks were distributed.
    """
    recorder = Recorder()
    with use_recorder(recorder):
        parts = solve(task)
    # Resource telemetry (attached when REPRO_PROFILE opts the process
    # tree in): one sample per task, so the merged sample counter and
    # max-merged peak gauges are identical at any worker count.
    recorder.sample_resources("worker")
    return parts, recorder.snapshot()


def solve_packed_recorded(ref: SegmentRef
                          ) -> Tuple[np.ndarray, Telemetry]:
    """Resolve a shared-arena ref and solve it, telemetry attached.

    The zero-copy twin of :func:`solve_recorded`: the pool pickles only
    the ~100-byte ``ref``; the CSR arrays are mapped read-only from the
    batch segment.  Results are bit-identical to the dense path because
    :func:`task_from_payload` reconstructs the exact task the
    dispatcher packed.
    """
    return solve_recorded(task_from_payload(resolve_packed(ref)))
