"""Weighted hypergraphs with fixed vertices and contraction.

Nets are stored as plain Python lists of distinct vertex ids: the
placer's nets are tiny (2-4 pins on average), where list operations beat
NumPy's per-array overhead by a wide margin, and the FM inner loop is the
hottest code in the whole library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Marker for vertices free to go to either side.
FREE = -1


class Hypergraph:
    """A vertex- and net-weighted hypergraph for bisection.

    Attributes:
        num_vertices: vertex count; vertices are ``0..num_vertices-1``.
        nets: list of pin lists; each pin list holds distinct vertex ids.
        net_weights: list of floats, cost of cutting each net.
        vertex_weights: float array, balance weight of each vertex
            (cell area in the placer; fixed vertices conventionally get
            weight 0 because they do not occupy the region being split).
        fixed: int array; ``FREE`` (-1) for movable vertices, else the
            side (0/1) the vertex is pinned to.  Used for terminal
            propagation.
    """

    def __init__(self, num_vertices: int,
                 nets: Sequence[Sequence[int]],
                 net_weights: Optional[Sequence[float]] = None,
                 vertex_weights: Optional[Sequence[float]] = None,
                 fixed: Optional[Sequence[int]] = None) -> None:
        self.num_vertices = int(num_vertices)
        self.nets: List[List[int]] = []
        for pins in nets:
            distinct = sorted(set(int(p) for p in pins))
            if distinct and (distinct[0] < 0
                             or distinct[-1] >= num_vertices):
                raise ValueError(f"net pin out of range: {distinct}")
            self.nets.append(distinct)
        m = len(self.nets)
        if net_weights is None:
            self.net_weights = [1.0] * m
        else:
            self.net_weights = [float(w) for w in net_weights]
        if len(self.net_weights) != m:
            raise ValueError("net_weights length mismatch")
        self.vertex_weights = (np.ones(self.num_vertices)
                               if vertex_weights is None
                               else np.asarray(vertex_weights, dtype=float))
        if self.vertex_weights.shape != (self.num_vertices,):
            raise ValueError("vertex_weights length mismatch")
        self.fixed = (np.full(self.num_vertices, FREE, dtype=np.int64)
                      if fixed is None
                      else np.asarray(fixed, dtype=np.int64))
        if self.fixed.shape != (self.num_vertices,):
            raise ValueError("fixed length mismatch")
        self._vertex_nets: Optional[List[List[int]]] = None
        self._csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = \
            None

    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self.nets)

    def net_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat CSR view of the net/pin structure, cached.

        Returns:
            ``(net_ptr, pin_vertex, pin_net)`` int64 arrays:
            ``pin_vertex[net_ptr[e]:net_ptr[e+1]]`` are net ``e``'s pins
            and ``pin_net`` maps each flat pin back to its net.  Nets
            are immutable after construction, so the view never goes
            stale.  This is the structure the vectorized FM gain and
            cut-cost kernels reduce over.
        """
        if self._csr is None:
            m = len(self.nets)
            deg = np.fromiter((len(p) for p in self.nets),
                              dtype=np.int64, count=m)
            ptr = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(deg, out=ptr[1:])
            pins = (np.concatenate(
                [np.asarray(p, dtype=np.int64) for p in self.nets])
                if m and deg.sum() else np.zeros(0, dtype=np.int64))
            net_of = np.repeat(np.arange(m, dtype=np.int64), deg)
            self._csr = (ptr, pins, net_of)
        return self._csr

    @property
    def free_weight(self) -> float:
        """Total balance weight of movable vertices."""
        return float(self.vertex_weights[self.fixed == FREE].sum())

    def vertex_nets_all(self) -> List[List[int]]:
        """Incidence lists: for each vertex, the indices of its nets."""
        if self._vertex_nets is None:
            incidence: List[List[int]] = [[] for _ in
                                          range(self.num_vertices)]
            for e, pins in enumerate(self.nets):
                for p in pins:
                    incidence[p].append(e)
            self._vertex_nets = incidence
        return self._vertex_nets

    def vertex_nets(self, v: int) -> List[int]:
        """Indices of nets incident to vertex ``v``."""
        return self.vertex_nets_all()[v]

    def neighbors_scored(self, v: int) -> Dict[int, float]:
        """Heavy-edge connectivity scores of v's hypergraph neighbours.

        Each shared net ``e`` contributes ``w_e / (|e| - 1)`` — the
        standard heavy-edge rating for hypergraph coarsening.
        """
        scores: Dict[int, float] = {}
        for e in self.vertex_nets(v):
            pins = self.nets[e]
            if len(pins) < 2:
                continue
            share = self.net_weights[e] / (len(pins) - 1)
            for u in pins:
                if u != v:
                    scores[u] = scores.get(u, 0.0) + share
        return scores

    # ------------------------------------------------------------------
    def contract(self, match: np.ndarray) -> Tuple["Hypergraph", np.ndarray]:
        """Contract the hypergraph along a vertex map.

        Args:
            match: array mapping each vertex to its *group representative*
                (any vertex id; vertices sharing a representative merge).

        Returns:
            ``(coarse, vertex_map)`` where ``vertex_map[v]`` is the coarse
            vertex id of fine vertex ``v``.  Coarse vertex weights are
            summed; coarse nets drop duplicate pins, single-pin nets are
            removed, and parallel nets are merged with summed weights.
            Fixed sides propagate (merging differently-fixed vertices is
            an error).
        """
        reps: Dict[int, int] = {}
        vertex_map = np.empty(self.num_vertices, dtype=np.int64)
        for v in range(self.num_vertices):
            r = int(match[v])
            if r not in reps:
                reps[r] = len(reps)
            vertex_map[v] = reps[r]
        n_coarse = len(reps)

        weights = np.zeros(n_coarse)
        fixed = np.full(n_coarse, FREE, dtype=np.int64)
        for v in range(self.num_vertices):
            c = vertex_map[v]
            weights[c] += self.vertex_weights[v]
            if self.fixed[v] != FREE:
                if fixed[c] != FREE and fixed[c] != self.fixed[v]:
                    raise ValueError(
                        "cannot merge vertices fixed to different sides")
                fixed[c] = self.fixed[v]

        merged: Dict[Tuple[int, ...], float] = {}
        for e, pins in enumerate(self.nets):
            coarse_pins = tuple(sorted(set(int(vertex_map[p])
                                           for p in pins)))
            if len(coarse_pins) < 2:
                continue
            merged[coarse_pins] = (merged.get(coarse_pins, 0.0)
                                   + self.net_weights[e])
        coarse = Hypergraph(n_coarse, list(merged.keys()),
                            list(merged.values()), weights, fixed)
        return coarse, vertex_map
