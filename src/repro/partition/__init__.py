"""Multilevel hypergraph bisection (our stand-in for hMetis [15]).

The paper's global placer calls hMetis for every recursive bisection.
hMetis is closed-source, so this subpackage implements the same
functionality from scratch:

- :class:`~repro.partition.hypergraph.Hypergraph` — weighted hypergraphs
  with fixed (terminal-propagated) vertices and contraction;
- :mod:`~repro.partition.fm` — Fiduccia–Mattheyses refinement with
  float net weights, balance tolerance and a lazy-deletion heap;
- :mod:`~repro.partition.multilevel` — heavy-edge coarsening, portfolio
  initial partitioning and V-cycle refinement.

The entry point is :func:`~repro.partition.multilevel.bisect`.
"""

from repro.partition.hypergraph import Hypergraph
from repro.partition.fm import FMRefiner, cut_cost
from repro.partition.multilevel import BisectionConfig, bisect

__all__ = ["Hypergraph", "FMRefiner", "cut_cost",
           "BisectionConfig", "bisect"]
