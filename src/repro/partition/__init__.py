"""Multilevel hypergraph bisection (our stand-in for hMetis [15]).

The paper's global placer calls hMetis for every recursive bisection.
hMetis is closed-source, so this subpackage implements the same
functionality from scratch:

- :class:`~repro.partition.hypergraph.Hypergraph` — weighted hypergraphs
  with fixed (terminal-propagated) vertices and contraction;
- :mod:`~repro.partition.fm` — Fiduccia–Mattheyses refinement with
  float net weights, balance tolerance and a lazy-deletion heap;
- :mod:`~repro.partition.multilevel` — heavy-edge coarsening, portfolio
  initial partitioning and V-cycle refinement;
- :mod:`~repro.partition.subproblem` — picklable
  :class:`~repro.partition.subproblem.BisectionTask` payloads for the
  parallel execution backend (:mod:`repro.parallel`).

The entry point is :func:`~repro.partition.multilevel.bisect`; parallel
callers serialize work as tasks and run
:func:`~repro.partition.subproblem.solve` on a backend.
"""

from repro.partition.hypergraph import Hypergraph
from repro.partition.fm import FMRefiner, cut_cost
from repro.partition.multilevel import BisectionConfig, bisect
from repro.partition.subproblem import (BisectionTask, solve,
                                        solve_recorded)

__all__ = ["Hypergraph", "FMRefiner", "cut_cost",
           "BisectionConfig", "bisect",
           "BisectionTask", "solve", "solve_recorded"]
