"""Fiduccia–Mattheyses bisection refinement with float net weights.

Classic FM uses integer gain buckets; the placer's net weights are real
numbers (thermal net weights, Eq. 8 of the paper), so this implementation
keeps move candidates in a lazy-deletion binary heap instead.  Gains are
maintained incrementally with the standard FM critical-net update rules,
so each move costs O(pins on critical nets), not O(neighbourhood size).

Each pass moves vertices one at a time (always the best *legal* move),
locks them, and finally rolls back to the best prefix seen — exactly the
FM schedule, with a balance window ``[target - tol, target + tol]`` on
part 0's share of the free vertex weight.

The move loop deliberately uses plain Python lists: the hypergraphs have
tiny nets, where list indexing beats NumPy scalar access several-fold,
and this loop dominates total placement runtime.  The *setup* of each
pass — per-net side counts, initial gains, the starting balance — is
different: it touches every pin exactly once, so on graphs above a small
size threshold it runs as array reductions over the hypergraph's flat
CSR pin structure (:meth:`Hypergraph.net_csr`); tiny coarsened graphs
keep the scalar path, where per-array overhead would dominate.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis import IntArray, contract
from repro.obs import get_recorder
from repro.partition.hypergraph import FREE, Hypergraph

#: Below this many total pins the scalar setup path is used: NumPy's
#: per-call overhead beats the loop only once there is real data.
VECTOR_MIN_PINS = 256


def _side_counts(graph: Hypergraph, side: IntArray
                 ) -> Tuple[IntArray, IntArray]:
    """Pins of each net on side 0 / side 1, via CSR reductions."""
    ptr, pins, pin_net = graph.net_csr()
    c1 = np.zeros(graph.num_nets, dtype=np.int64)
    np.add.at(c1, pin_net, side[pins])
    c0 = np.diff(ptr) - c1
    return c0, c1


def cut_cost(graph: Hypergraph,
             parts: Union[Sequence[int], IntArray]) -> float:
    """Weighted cut of a bisection: sum of weights of nets with pins on
    both sides."""
    total_pins = sum(len(p) for p in graph.nets)
    if total_pins >= VECTOR_MIN_PINS:
        side_arr = np.asarray(parts, dtype=np.int64)
        c0, c1 = _side_counts(graph, side_arr)
        w = np.asarray(graph.net_weights, dtype=np.float64)
        return float(w[(c0 > 0) & (c1 > 0)].sum())
    side = [int(p) for p in parts]
    total = 0.0
    for pins, w in zip(graph.nets, graph.net_weights):
        if not pins:
            continue
        first = side[pins[0]]
        for p in pins:
            if side[p] != first:
                total += w
                break
    return total


class FMRefiner:
    """One FM refinement engine bound to a hypergraph.

    Args:
        graph: the hypergraph to refine.
        target: desired fraction of *free* vertex weight in part 0.
        tolerance: allowed deviation of that fraction (absolute).
        rng: random generator for tie-breaking order.
    """

    def __init__(self, graph: Hypergraph, target: float = 0.5,
                 tolerance: float = 0.05,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.graph = graph
        self.target = target
        self.tolerance = tolerance
        self.rng = rng if rng is not None else np.random.default_rng(0)
        free_w = graph.free_weight
        half = tolerance * free_w
        # The window must leave room to move the heaviest free vertex out
        # of a perfectly balanced state, or FM deadlocks immediately.
        movable = graph.fixed == FREE
        if movable.any():
            biggest = float(graph.vertex_weights[movable].max())
            half = max(half, biggest)
        self.lo = target * free_w - half
        self.hi = target * free_w + half
        # plain-list mirrors of the per-vertex arrays: the pass loop
        # indexes them millions of times, where list access beats NumPy
        # scalar access several-fold
        self._vw: List[float] = graph.vertex_weights.tolist()
        self._free: List[bool] = (graph.fixed == FREE).tolist()

    # ------------------------------------------------------------------
    @contract(shapes={"parts": ("v",)}, dtypes={"parts": np.integer})
    def refine(self, parts: IntArray, max_passes: int = 8) -> float:
        """Run FM passes in place until no pass improves the cut.

        Args:
            parts: 0/1 side of each vertex; modified in place.  Fixed
                vertices must already sit on their pinned side.
            max_passes: upper bound on passes.

        Returns:
            The final weighted cut cost.
        """
        g = self.graph
        for v in range(g.num_vertices):
            if g.fixed[v] != FREE and parts[v] != g.fixed[v]:
                raise ValueError(
                    f"vertex {v} is fixed to side {g.fixed[v]} "
                    f"but assigned to {parts[v]}")
        cost = cut_cost(g, parts)
        side = [int(p) for p in parts]
        rec = get_recorder()
        for _ in range(max_passes):
            improvement, kept_moves, rolled_back = self._pass(side)
            cost -= improvement
            if rec.enabled:
                rec.count("fm/passes")
                rec.count("fm/gain", improvement)
                rec.count("fm/kept_moves", float(kept_moves))
                rec.count("fm/rolled_back_moves", float(rolled_back))
            # A pass that kept moves without improving the cut was a
            # balance repair; give the next pass a chance to optimize
            # from the now-feasible state.
            if improvement <= 1e-15 and kept_moves == 0:
                break
        parts[:] = side
        return cost

    # ------------------------------------------------------------------
    def _pass(self, side: List[int]) -> Tuple[float, int, int]:
        """One FM pass over ``side`` (mutated in place).

        Returns:
            ``(improvement, kept_moves, rolled_back)`` — the cut
            improvement of the kept prefix (may be negative if the
            prefix was kept to repair an out-of-window balance), its
            length, and the number of tentative moves undone.
        """
        g = self.graph
        n = g.num_vertices
        nets = g.nets
        net_w = g.net_weights
        vnets = g.vertex_nets_all()
        vw = self._vw
        free = self._free

        counts, gains, weight0 = self._pass_setup(side, free, vw)

        locked = [False] * n
        stamp = [0] * n
        noise = self.rng.random(n).tolist()
        heap: List[Tuple[float, float, int, int]] = [
            (-gains[v], noise[v], v, 0) for v in range(n) if free[v]]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush

        moves: List[int] = []
        cum_gain = 0.0
        lo, hi = self.lo, self.hi

        # Best prefix: feasibility (smallest balance violation) first,
        # then cut gain — otherwise moves that only repair an
        # out-of-window start would always be rolled back.
        viol0 = lo - weight0 if weight0 < lo else (
            weight0 - hi if weight0 > hi else 0.0)
        best_key = (viol0, 0.0)
        best_gain = 0.0
        best_prefix = 0
        deferred: List[Tuple[float, float, int, int]] = []

        while heap:
            item = heappop(heap)
            neg_gain, _, v, st = item
            if locked[v] or st != stamp[v]:
                continue
            w = vw[v]
            new_w0 = weight0 - w if side[v] == 0 else weight0 + w
            # legality check (inlined): inside the window, or at least
            # reducing an existing violation
            if not (lo <= new_w0 <= hi):
                if weight0 < lo:
                    legal = new_w0 > weight0
                elif weight0 > hi:
                    legal = new_w0 < weight0
                else:
                    legal = False
                if not legal:
                    # Set aside until the balance changes (the next
                    # applied move re-queues it).  Every pop consumes a
                    # heap entry, so the pass terminates.
                    deferred.append(item)
                    continue
            if deferred:
                for it in deferred:
                    if not locked[it[2]]:
                        heappush(heap, it)
                deferred.clear()

            # ---- apply the move with FM critical-net gain updates ----
            frm = side[v]
            to = 1 - frm
            delta: Dict[int, float] = {}
            dget = delta.get
            for e in vnets[v]:
                pins = nets[e]
                we = net_w[e]
                c = counts[e]
                t_before = c[to]
                if t_before == 0:
                    for u in pins:
                        if u != v and free[u] and not locked[u]:
                            delta[u] = dget(u, 0.0) + we
                elif t_before == 1:
                    for u in pins:
                        if side[u] == to:
                            if free[u] and not locked[u]:
                                delta[u] = dget(u, 0.0) - we
                            break
                c[frm] -= 1
                c[to] += 1
                f_after = c[frm]
                if f_after == 0:
                    for u in pins:
                        if u != v and free[u] and not locked[u]:
                            delta[u] = dget(u, 0.0) - we
                elif f_after == 1:
                    for u in pins:
                        if u != v and side[u] == frm:
                            if free[u] and not locked[u]:
                                delta[u] = dget(u, 0.0) + we
                            break
            side[v] = to
            weight0 = new_w0
            locked[v] = True
            moves.append(v)
            cum_gain += -neg_gain
            viol = lo - weight0 if weight0 < lo else (
                weight0 - hi if weight0 > hi else 0.0)
            if (viol < best_key[0] - 1e-15
                    or (abs(viol - best_key[0]) <= 1e-15
                        and -cum_gain < best_key[1] - 1e-15)):
                best_key = (viol, -cum_gain)
                best_gain = cum_gain
                best_prefix = len(moves)

            for u, d in delta.items():
                if d:
                    gains[u] += d
                    stamp[u] += 1
                    heappush(heap, (-gains[u], noise[u], u, stamp[u]))

        # roll back to the best prefix
        for v in moves[best_prefix:]:
            side[v] = 1 - side[v]
        return best_gain, best_prefix, len(moves) - best_prefix

    # ------------------------------------------------------------------
    def _pass_setup(self, side: List[int], free: List[bool],
                    vw: List[float]
                    ) -> Tuple[List[List[int]], List[float], float]:
        """Per-net side counts, initial FM gains, and part-0 weight.

        One touch per pin; vectorized over the CSR pin structure on
        graphs large enough for the array path to pay for itself.  The
        gain rules are the classic FM patterns: uncut nets penalize
        every pin by the net weight, critical nets (one pin alone on a
        side) reward that lone pin.
        """
        g = self.graph
        n = g.num_vertices
        nets = g.nets
        net_w = g.net_weights
        ptr, pins_arr, pin_net = g.net_csr()
        if len(pins_arr) >= VECTOR_MIN_PINS:
            side_arr = np.asarray(side, dtype=np.int64)
            c0, c1 = _side_counts(g, side_arr)
            w = np.asarray(net_w, dtype=np.float64)
            uncut = (c0 == 0) | (c1 == 0)
            gains_arr = np.zeros(n, dtype=np.float64)
            pin_w = w[pin_net]
            pin_side = side_arr[pins_arr]
            m_uncut = uncut[pin_net]
            np.add.at(gains_arr, pins_arr[m_uncut], -pin_w[m_uncut])
            crit = ~uncut
            m_c0 = (crit & (c0 == 1))[pin_net] & (pin_side == 0)
            m_c1 = (crit & (c1 == 1))[pin_net] & (pin_side == 1)
            np.add.at(gains_arr, pins_arr[m_c0], pin_w[m_c0])
            np.add.at(gains_arr, pins_arr[m_c1], pin_w[m_c1])
            counts = np.stack((c0, c1), axis=1).tolist()
            gains = gains_arr.tolist()
            free_arr = g.fixed == FREE
            weight0 = float(g.vertex_weights[
                free_arr & (side_arr == 0)].sum())
            return counts, gains, weight0

        counts_l: List[List[int]] = []
        for pins in nets:
            on1 = 0
            for p in pins:
                on1 += side[p]
            counts_l.append([len(pins) - on1, on1])
        gains_l = [0.0] * n
        for e, pins in enumerate(nets):
            we = net_w[e]
            n0, n1 = counts_l[e]
            if n0 == 0 or n1 == 0:
                for p in pins:
                    gains_l[p] -= we
            else:
                if n0 == 1:
                    for p in pins:
                        if side[p] == 0:
                            gains_l[p] += we
                            break
                if n1 == 1:
                    for p in pins:
                        if side[p] == 1:
                            gains_l[p] += we
                            break
        weight0 = 0.0
        for v in range(n):
            if free[v] and side[v] == 0:
                weight0 += vw[v]
        return counts_l, gains_l, weight0

    # ------------------------------------------------------------------
    @staticmethod
    def _legal(new_w0: float, cur_w0: float, lo: float, hi: float) -> bool:
        """A move is legal if it lands in the balance window, or at least
        reduces an existing violation."""
        if lo <= new_w0 <= hi:
            return True
        if cur_w0 < lo:
            return new_w0 > cur_w0
        if cur_w0 > hi:
            return new_w0 < cur_w0
        return False
