"""Fiduccia–Mattheyses bisection refinement with float net weights.

Classic FM uses integer gain buckets; the placer's net weights are real
numbers (thermal net weights, Eq. 8 of the paper), so this implementation
keeps move candidates in a lazy-deletion binary heap instead.  Gains are
maintained incrementally with the standard FM critical-net update rules,
so each move costs O(pins on critical nets), not O(neighbourhood size).

Each pass moves vertices one at a time (always the best *legal* move),
locks them, and finally rolls back to the best prefix seen — exactly the
FM schedule, with a balance window ``[target - tol, target + tol]`` on
part 0's share of the free vertex weight.

The inner loop deliberately uses plain Python lists: the hypergraphs have
tiny nets, where list indexing beats NumPy scalar access several-fold,
and this loop dominates total placement runtime.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.partition.hypergraph import FREE, Hypergraph


def cut_cost(graph: Hypergraph, parts) -> float:
    """Weighted cut of a bisection: sum of weights of nets with pins on
    both sides."""
    side = list(parts)
    total = 0.0
    for pins, w in zip(graph.nets, graph.net_weights):
        if not pins:
            continue
        first = side[pins[0]]
        for p in pins:
            if side[p] != first:
                total += w
                break
    return total


class FMRefiner:
    """One FM refinement engine bound to a hypergraph.

    Args:
        graph: the hypergraph to refine.
        target: desired fraction of *free* vertex weight in part 0.
        tolerance: allowed deviation of that fraction (absolute).
        rng: random generator for tie-breaking order.
    """

    def __init__(self, graph: Hypergraph, target: float = 0.5,
                 tolerance: float = 0.05,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.graph = graph
        self.target = target
        self.tolerance = tolerance
        self.rng = rng if rng is not None else np.random.default_rng(0)
        free_w = graph.free_weight
        half = tolerance * free_w
        # The window must leave room to move the heaviest free vertex out
        # of a perfectly balanced state, or FM deadlocks immediately.
        movable = graph.fixed == FREE
        if movable.any():
            biggest = float(graph.vertex_weights[movable].max())
            half = max(half, biggest)
        self.lo = target * free_w - half
        self.hi = target * free_w + half

    # ------------------------------------------------------------------
    def refine(self, parts: np.ndarray, max_passes: int = 8) -> float:
        """Run FM passes in place until no pass improves the cut.

        Args:
            parts: 0/1 side of each vertex; modified in place.  Fixed
                vertices must already sit on their pinned side.
            max_passes: upper bound on passes.

        Returns:
            The final weighted cut cost.
        """
        g = self.graph
        for v in range(g.num_vertices):
            if g.fixed[v] != FREE and parts[v] != g.fixed[v]:
                raise ValueError(
                    f"vertex {v} is fixed to side {g.fixed[v]} "
                    f"but assigned to {parts[v]}")
        cost = cut_cost(g, parts)
        side = [int(p) for p in parts]
        for _ in range(max_passes):
            improvement, kept_moves = self._pass(side)
            cost -= improvement
            # A pass that kept moves without improving the cut was a
            # balance repair; give the next pass a chance to optimize
            # from the now-feasible state.
            if improvement <= 1e-15 and kept_moves == 0:
                break
        parts[:] = side
        return cost

    # ------------------------------------------------------------------
    def _pass(self, side: List[int]) -> Tuple[float, int]:
        """One FM pass over ``side`` (mutated in place).

        Returns:
            ``(improvement, kept_moves)`` — the cut improvement of the
            kept prefix (may be negative if the prefix was kept to
            repair an out-of-window balance) and its length.
        """
        g = self.graph
        n = g.num_vertices
        nets = g.nets
        net_w = g.net_weights
        vnets = g.vertex_nets_all()
        vw = [float(w) for w in g.vertex_weights]
        free = [f == FREE for f in g.fixed]

        # pins of each net on each side
        counts: List[List[int]] = []
        for pins in nets:
            c1 = 0
            for p in pins:
                c1 += side[p]
            counts.append([len(pins) - c1, c1])

        # initial gains, computed net-by-net from the critical patterns
        gains = [0.0] * n
        for e, pins in enumerate(nets):
            w = net_w[e]
            c0, c1 = counts[e]
            if c0 == 0 or c1 == 0:
                for p in pins:
                    gains[p] -= w
            else:
                if c0 == 1:
                    for p in pins:
                        if side[p] == 0:
                            gains[p] += w
                            break
                if c1 == 1:
                    for p in pins:
                        if side[p] == 1:
                            gains[p] += w
                            break

        weight0 = 0.0
        for v in range(n):
            if free[v] and side[v] == 0:
                weight0 += vw[v]

        locked = [False] * n
        stamp = [0] * n
        noise = self.rng.random(n).tolist()
        heap: List[Tuple[float, float, int, int]] = [
            (-gains[v], noise[v], v, 0) for v in range(n) if free[v]]
        heapq.heapify(heap)

        moves: List[int] = []
        cum_gain = 0.0
        lo, hi = self.lo, self.hi

        def violation(w0: float) -> float:
            return max(0.0, lo - w0, w0 - hi)

        # Best prefix: feasibility (smallest balance violation) first,
        # then cut gain — otherwise moves that only repair an
        # out-of-window start would always be rolled back.
        best_key = (violation(weight0), 0.0)
        best_gain = 0.0
        best_prefix = 0
        deferred: List[Tuple[float, float, int, int]] = []

        while heap:
            item = heapq.heappop(heap)
            neg_gain, _, v, st = item
            if locked[v] or st != stamp[v]:
                continue
            w = vw[v]
            new_w0 = weight0 - w if side[v] == 0 else weight0 + w
            if not self._legal(new_w0, weight0, lo, hi):
                # Set aside until the balance changes (the next applied
                # move re-queues it).  Every pop consumes a heap entry,
                # so the pass terminates.
                deferred.append(item)
                continue
            for it in deferred:
                if not locked[it[2]]:
                    heapq.heappush(heap, it)
            deferred.clear()

            # ---- apply the move with FM critical-net gain updates ----
            frm = side[v]
            to = 1 - frm
            delta = {}
            for e in vnets[v]:
                pins = nets[e]
                we = net_w[e]
                c = counts[e]
                t_before = c[to]
                if t_before == 0:
                    for u in pins:
                        if u != v and free[u] and not locked[u]:
                            delta[u] = delta.get(u, 0.0) + we
                elif t_before == 1:
                    for u in pins:
                        if side[u] == to:
                            if free[u] and not locked[u]:
                                delta[u] = delta.get(u, 0.0) - we
                            break
                c[frm] -= 1
                c[to] += 1
                f_after = c[frm]
                if f_after == 0:
                    for u in pins:
                        if u != v and free[u] and not locked[u]:
                            delta[u] = delta.get(u, 0.0) - we
                elif f_after == 1:
                    for u in pins:
                        if u != v and side[u] == frm:
                            if free[u] and not locked[u]:
                                delta[u] = delta.get(u, 0.0) + we
                            break
            side[v] = to
            weight0 = new_w0
            locked[v] = True
            moves.append(v)
            cum_gain += -neg_gain
            viol = violation(weight0)
            better = (viol < best_key[0] - 1e-15
                      or (abs(viol - best_key[0]) <= 1e-15
                          and -cum_gain < best_key[1] - 1e-15))
            if better:
                best_key = (viol, -cum_gain)
                best_gain = cum_gain
                best_prefix = len(moves)

            for u, d in delta.items():
                if d:
                    gains[u] += d
                    stamp[u] += 1
                    heapq.heappush(heap, (-gains[u], noise[u], u, stamp[u]))

        # roll back to the best prefix
        for v in moves[best_prefix:]:
            side[v] = 1 - side[v]
        return best_gain, best_prefix

    # ------------------------------------------------------------------
    @staticmethod
    def _legal(new_w0: float, cur_w0: float, lo: float, hi: float) -> bool:
        """A move is legal if it lands in the balance window, or at least
        reduces an existing violation."""
        if lo <= new_w0 <= hi:
            return True
        if cur_w0 < lo:
            return new_w0 > cur_w0
        if cur_w0 > hi:
            return new_w0 < cur_w0
        return False
