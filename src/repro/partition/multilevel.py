"""Multilevel bisection: coarsen, partition, uncoarsen-and-refine.

This is the drop-in replacement for hMetis [15] that the global placer
calls at every recursive bisection.  The scheme is the standard V-cycle:

1. **Coarsening** — repeated heavy-edge matching until the hypergraph is
   small (or matching stalls).
2. **Initial partitioning** — a small portfolio of random balanced
   partitions at the coarsest level, each polished by FM; best kept.
   More ``num_starts`` = better cuts = more runtime (the "random starts"
   effort knob of the paper's Section 7 experiments).
3. **Uncoarsening** — project the partition back level by level, running
   FM refinement at each level.

Fixed vertices (terminal propagation) are respected throughout: they are
never matched during coarsening and never moved by FM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.partition.fm import FMRefiner, cut_cost
from repro.partition.hypergraph import FREE, Hypergraph


@dataclass
class BisectionConfig:
    """Knobs of the multilevel bisector.

    Attributes:
        target: desired fraction of free weight in part 0.
        tolerance: allowed absolute deviation from ``target``.
        coarsen_to: stop coarsening below this many vertices.
        num_starts: random initial partitions tried at the coarsest level.
        max_passes: FM passes per refinement level.
        seed: RNG seed.
    """

    target: float = 0.5
    tolerance: float = 0.05
    coarsen_to: int = 96
    num_starts: int = 4
    max_passes: int = 6
    seed: int = 0


def bisect(graph: Hypergraph, config: Optional[BisectionConfig] = None
           ) -> Tuple[np.ndarray, float]:
    """Bisect a hypergraph.

    Args:
        graph: the hypergraph; fixed vertices are honoured.
        config: bisection parameters (defaults if omitted).

    Returns:
        ``(parts, cut)`` — the 0/1 side of every vertex and the weighted
        cut cost achieved.
    """
    config = config or BisectionConfig()
    rng = np.random.default_rng(config.seed)

    if graph.num_vertices == 0:
        return np.zeros(0, dtype=np.int64), 0.0
    movable = int((graph.fixed == FREE).sum())
    if movable == 0:
        parts = graph.fixed.copy()
        return parts, cut_cost(graph, parts)

    # ---- coarsening phase -------------------------------------------
    levels: List[Tuple[Hypergraph, np.ndarray]] = []  # (fine graph, map)
    current = graph
    while (current.num_vertices > config.coarsen_to
           and current.num_nets > 0):
        match = _heavy_edge_matching(current, rng)
        coarse, vmap = current.contract(match)
        if coarse.num_vertices >= current.num_vertices * 0.95:
            break  # matching stalled; stop coarsening
        levels.append((current, vmap))
        current = coarse

    # ---- initial partitioning at the coarsest level ------------------
    parts = _initial_portfolio(current, config, rng)

    # ---- uncoarsening + refinement ------------------------------------
    refiner = FMRefiner(current, config.target, config.tolerance, rng)
    refiner.refine(parts, config.max_passes)
    for fine, vmap in reversed(levels):
        fine_parts = parts[vmap]
        refiner = FMRefiner(fine, config.target, config.tolerance, rng)
        refiner.refine(fine_parts, config.max_passes)
        parts = fine_parts

    _repair_empty_side(graph, parts)
    return parts, cut_cost(graph, parts)


def _repair_empty_side(graph: Hypergraph, parts: np.ndarray) -> None:
    """Guarantee both sides are populated when >= 2 vertices are free.

    The widened balance window (it must admit the heaviest vertex) can
    let FM legally empty one side of a tiny graph; a bisection with an
    empty part is useless to callers, so the loosest-connected free
    vertex is moved across.
    """
    free_ids = np.flatnonzero(graph.fixed == FREE)
    if len(free_ids) < 2:
        return
    for side in (0, 1):
        on_side = [v for v in free_ids if parts[v] == side]
        if on_side:
            continue
        other = [v for v in free_ids if parts[v] != side]

        def connectivity(v: int) -> float:
            return sum(graph.net_weights[e]
                       for e in graph.vertex_nets(int(v)))

        mover = min(other, key=connectivity)
        parts[mover] = side


# ----------------------------------------------------------------------
def _heavy_edge_matching(graph: Hypergraph, rng: np.random.Generator
                         ) -> np.ndarray:
    """One round of heavy-edge matching.

    Returns a representative map suitable for
    :meth:`Hypergraph.contract`.  Fixed vertices are left unmatched so
    they survive to the coarsest level individually.
    """
    n = graph.num_vertices
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    for v in order:
        if matched[v] or graph.fixed[v] != FREE:
            continue
        best_u = -1
        best_score = 0.0
        for u, score in graph.neighbors_scored(int(v)).items():
            if matched[u] or graph.fixed[u] != FREE:
                continue
            if score > best_score:
                best_score = score
                best_u = u
        if best_u >= 0:
            match[best_u] = v
            matched[v] = True
            matched[best_u] = True
    return match


def _initial_portfolio(graph: Hypergraph, config: BisectionConfig,
                       rng: np.random.Generator) -> np.ndarray:
    """Best of ``num_starts`` random balanced partitions after FM polish."""
    best_parts = None
    best_cut = np.inf
    for _ in range(max(1, config.num_starts)):
        parts = _random_balanced(graph, config.target, rng)
        refiner = FMRefiner(graph, config.target, config.tolerance, rng)
        cut = refiner.refine(parts, config.max_passes)
        if cut < best_cut:
            best_cut = cut
            best_parts = parts
    return best_parts


def _random_balanced(graph: Hypergraph, target: float,
                     rng: np.random.Generator) -> np.ndarray:
    """A random partition hitting the target weight split.

    Free vertices are shuffled and greedily assigned to part 0 until its
    weight reaches ``target`` of the free total; the rest go to part 1.
    Fixed vertices keep their side.
    """
    parts = np.ones(graph.num_vertices, dtype=np.int64)
    free_ids = np.flatnonzero(graph.fixed == FREE)
    goal = target * graph.free_weight
    acc = 0.0
    for v in rng.permutation(free_ids):
        if acc >= goal:
            break
        parts[v] = 0
        acc += graph.vertex_weights[v]
    fixed_ids = np.flatnonzero(graph.fixed != FREE)
    parts[fixed_ids] = graph.fixed[fixed_ids]
    return parts
