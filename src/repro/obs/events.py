"""Structured JSONL event sink.

Every event is one JSON object per line with at least a ``type`` field
and a ``t`` field (seconds since the sink was opened).  The format is
append-only and line-oriented so a crashed run still leaves a readable
prefix, and downstream tooling can stream it without loading the whole
trace.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Type, Union

__all__ = ["EventSink", "read_events"]


class EventSink:
    """Append-only JSONL writer with relative timestamps.

    Args:
        path: output file (parent directories are created).
        clock: monotonic time source, seconds (injectable for tests).

    Attributes:
        path: the output path as a string.
        events_written: number of events emitted so far.
    """

    def __init__(self, path: Union[str, Path],
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[Any] = open(self.path, "w", encoding="utf-8")
        self._clock = clock
        self._t0 = clock()
        self.events_written = 0

    def emit(self, event: Dict[str, Any]) -> None:
        """Write one event as a JSON line.

        A ``t`` field (seconds since the sink opened) is added unless
        the event already carries one.
        """
        if self._fh is None:
            return
        if "t" not in event:
            event = dict(event)
            event["t"] = round(self._clock() - self._t0, 9)
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        """Flush buffered lines to disk."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into a list of event dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number so a truncated trace fails loudly.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed event line") from exc
    return events
