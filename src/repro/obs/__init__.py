"""Observability layer: spans, metrics, events, manifests, logging.

``repro.obs`` is a zero-required-dependency package the whole pipeline
reports through:

- :class:`Tracer` / :class:`SpanStats` — hierarchical timing spans
  with call counts and nested aggregation (``trace.py``);
- :class:`Recorder` / :class:`NullRecorder` — counters, gauges and
  time-series behind one object; the ambient recorder
  (:func:`get_recorder` / :func:`use_recorder`) is a no-op unless a
  caller opts in (``recorder.py``);
- :class:`SamplingProfiler` / :class:`ProfileData` — opt-in sampling
  profiler attributing stacks to open span paths, with collapsed-stack
  export (``profile.py``);
- :class:`ResourceTracker` — opt-in peak-RSS and tracemalloc
  tracking feeding the recorder (``resources.py``);
- :class:`EventSink` / :func:`read_events` — structured JSONL event
  stream (``events.py``);
- :func:`build_manifest` / :func:`write_manifest` /
  :func:`validate_manifest` — end-of-run manifest plus its checked-in
  schema (``manifest.py``, ``manifest_schema.json``, ``validate.py``);
- :func:`get_logger` / :func:`configure_cli_logging` — namespaced
  ``repro.*`` logging (``log.py``);
- :func:`render` / :func:`render_manifest` — plain-text telemetry and
  manifest reports (``report.py``); run-to-run comparison lives in
  ``diffing.py`` and the committed perf ledger in ``history.py``.

Design note: ``repro.obs`` is the only part of ``src/repro`` allowed
to touch the clocks directly — ``time.perf_counter`` (linter rule
RPL009) and the wall clock (RPL013).  All other timing goes through
spans or :class:`Stopwatch`, and timestamps through
:func:`wall_time` (``clock.py``).
"""

from repro.obs.clock import wall_time
from repro.obs.events import EventSink, read_events
from repro.obs.log import configure_cli_logging, get_logger
from repro.obs.manifest import (build_manifest, config_hash, load_schema,
                                validate_manifest, write_manifest)
from repro.obs.profile import (PROFILE_ENV, ProfileData,
                               SamplingProfiler, profile_enabled)
from repro.obs.recorder import (NULL_RECORDER, NullRecorder, Recorder,
                                Telemetry, get_recorder, use_recorder)
from repro.obs.report import (render, render_manifest, render_profile,
                              render_resources, render_spans)
from repro.obs.resources import (ALLOC_ENV, ResourceTracker,
                                 alloc_enabled, peak_rss_bytes,
                                 resources_enabled, rss_bytes)
from repro.obs.trace import SpanStats, Stopwatch, Tracer

__all__ = [
    "ALLOC_ENV",
    "EventSink",
    "NULL_RECORDER",
    "NullRecorder",
    "PROFILE_ENV",
    "ProfileData",
    "Recorder",
    "ResourceTracker",
    "SamplingProfiler",
    "SpanStats",
    "Stopwatch",
    "Telemetry",
    "Tracer",
    "alloc_enabled",
    "build_manifest",
    "config_hash",
    "configure_cli_logging",
    "get_logger",
    "get_recorder",
    "load_schema",
    "peak_rss_bytes",
    "profile_enabled",
    "read_events",
    "render",
    "render_manifest",
    "render_profile",
    "render_resources",
    "render_spans",
    "resources_enabled",
    "rss_bytes",
    "use_recorder",
    "validate_manifest",
    "wall_time",
    "write_manifest",
]
