"""End-of-run manifest: what ran, with what, and what came out.

The manifest is a single JSON document written next to the ``.pl``
(or wherever ``--telemetry-out`` points) capturing everything needed to
reproduce and audit a run: netlist stats, the full config plus a stable
hash of it, the RNG seed, tool versions, the per-stage span summary,
the per-round Eq. 3 decomposition, and counters.  Its shape is pinned
by ``manifest_schema.json`` (validated in CI with the dependency-free
validator in :mod:`repro.obs.validate`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.obs.recorder import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import PlacementConfig
    from repro.core.placer import PlacementResult
    from repro.netlist.netlist import Netlist

__all__ = ["CHECKPOINT_KIND", "EXECUTION_ONLY_KEYS",
           "HASHED_CONFIG_KEYS", "MANIFEST_KIND", "SCHEMA_VERSION",
           "build_manifest", "config_hash", "content_hash",
           "load_checkpoint_schema", "load_schema",
           "validate_checkpoint_meta", "validate_manifest",
           "write_manifest"]

MANIFEST_KIND = "repro.placement.run"
CHECKPOINT_KIND = "repro.placement.checkpoint"
SCHEMA_VERSION = 1

_SCHEMA_PATH = Path(__file__).with_name("manifest_schema.json")
_CHECKPOINT_SCHEMA_PATH = Path(__file__).with_name(
    "checkpoint_schema.json")


def _config_dict(config: "PlacementConfig") -> Dict[str, Any]:
    """Flatten a config dataclass into JSON-safe primitives."""
    raw = dataclasses.asdict(config)

    def scrub(value: Any) -> Any:
        if isinstance(value, dict):
            return {str(k): scrub(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [scrub(v) for v in value]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return repr(value)

    scrubbed = scrub(raw)
    assert isinstance(scrubbed, dict)
    return scrubbed


def content_hash(document: Any) -> str:
    """Stable content hash of any JSON-serialisable document.

    Returns:
        ``"sha256:<hex>"`` over the sorted-key compact JSON, so two
        structurally identical documents hash identically across
        sessions.  Used for config hashes in manifests and for the
        config/spec hashes that guard checkpoint resume.
    """
    blob = json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return "sha256:" + hashlib.sha256(blob).hexdigest()


#: Config keys that only steer execution (how fast, on how many
#: cores), never results.  They stay visible in the manifest's
#: ``config`` section but are excluded from :func:`config_hash`, so a
#: checkpoint taken at ``--workers 4`` resumes under ``--workers 1``
#: (and vice versa) — the determinism contract of :mod:`repro.parallel`
#: guarantees the science is identical.  The thermal-fidelity knobs
#: qualify because the fidelity policy is trajectory-neutral: it picks
#: who computes temperature *fields*, never the Eq. 3 objective (see
#: :mod:`repro.thermal.fidelity`).
EXECUTION_ONLY_KEYS = ("num_workers", "thermal_fidelity",
                       "thermal_drift_tolerance")

#: Config keys that *do* shape results and therefore participate in
#: :func:`config_hash`.  Together with :data:`EXECUTION_ONLY_KEYS`
#: this is an exhaustive, audited classification of every
#: ``PlacementConfig`` field: :func:`config_hash` refuses a config
#: carrying a key in neither tuple, so a newly added field (e.g. a
#: service knob) cannot silently change — or silently not change —
#: the hash that keys checkpoints and the service result cache.
HASHED_CONFIG_KEYS = (
    "alpha_ilv", "alpha_temp", "num_layers",
    "use_thermal_net_weights", "use_trr_nets",
    "min_region_cells", "partition_starts", "partition_passes",
    "min_partition_tolerance",
    "shift_max_density", "shift_max_iterations", "shift_upper_slope",
    "shift_lower_slope", "shift_intercept",
    "move_target_bins", "move_passes",
    "legalization_rounds", "refine_passes",
    "seed", "tech",
)


def config_hash(config: "PlacementConfig") -> str:
    """Stable content hash of a placement config.

    Returns:
        ``"sha256:<hex>"`` over the sorted-key JSON of the config
        (minus :data:`EXECUTION_ONLY_KEYS`), so two runs with identical
        scientific knobs hash identically across sessions and worker
        counts.

    Raises:
        ValueError: the config carries a field classified neither in
            :data:`HASHED_CONFIG_KEYS` nor :data:`EXECUTION_ONLY_KEYS`.
    """
    document = _config_dict(config)
    unclassified = sorted(set(document) - set(HASHED_CONFIG_KEYS)
                          - set(EXECUTION_ONLY_KEYS))
    if unclassified:
        raise ValueError(
            f"unclassified PlacementConfig keys {unclassified}: add "
            f"each to HASHED_CONFIG_KEYS (results change with it) or "
            f"EXECUTION_ONLY_KEYS (pure execution steering) in "
            f"repro.obs.manifest")
    for key in EXECUTION_ONLY_KEYS:
        document.pop(key, None)
    return content_hash(document)


def _versions() -> Dict[str, str]:
    import numpy
    import scipy

    import repro
    return {
        "python": platform.python_version(),
        "numpy": str(numpy.__version__),
        "scipy": str(scipy.__version__),
        "repro": str(repro.__version__),
    }


def _stage_rows(telemetry: Telemetry) -> List[Dict[str, Any]]:
    """Flatten the span tree into ``(path, calls, seconds)`` rows."""
    rows: List[Dict[str, Any]] = []

    def visit(node: Dict[str, Any], prefix: str) -> None:
        for child in node.get("children", []):
            path = f"{prefix}{child['name']}"
            rows.append({"path": path,
                         "calls": int(child["calls"]),
                         "seconds": float(child["seconds"])})
            visit(child, f"{path}/")

    visit(telemetry.spans, "")
    return rows


def build_manifest(netlist: "Netlist", config: "PlacementConfig",
                   result: "PlacementResult",
                   telemetry: Optional[Telemetry] = None,
                   trace_path: Optional[str] = None,
                   peak_temperature: Optional[float] = None,
                   pipeline: Optional[Dict[str, Any]] = None,
                   thermal: Optional[Dict[str, Any]] = None,
                   resources: Optional[Dict[str, Any]] = None,
                   profile: Optional[Dict[str, Any]] = None,
                   job: Optional[Dict[str, Any]] = None,
                   ) -> Dict[str, Any]:
    """Assemble the run manifest document.

    Args:
        netlist: the placed circuit (for size stats).
        config: the placement configuration that produced ``result``.
        result: the finished placement result.
        telemetry: recorder snapshot; defaults to
            ``result.telemetry``.
        trace_path: path of the JSONL trace written alongside, if any.
        peak_temperature: optional evaluated peak temperature, kelvin.
        pipeline: the serialized :class:`PipelineSpec` the run
            executed (``spec.to_dict()``), recorded so a manifest pins
            the exact stage composition, not just the config knobs.
        thermal: the fidelity policy's metadata document
            (``ThermalFidelityPolicy.metadata()``); defaults to
            ``result.thermal``.  ``None`` for non-thermal runs.
        resources: the resource tracker's summary
            (``Recorder.finish_resources()``) — peak RSS and
            tracemalloc attribution.  ``None`` when the run was not
            profiled.
        profile: the sampling profiler's summary
            (``SamplingProfiler.summary()``).  ``None`` when the run
            was not profiled.
        job: the service-job section (``id``, ``cache`` status,
            ``preemptions``) when the run executed as a
            :mod:`repro.service` job; ``None`` for direct runs.

    Returns:
        A JSON-serialisable dict matching ``manifest_schema.json``.
    """
    tele = telemetry if telemetry is not None else result.telemetry
    if tele is None:
        tele = Telemetry()
    if thermal is None:
        thermal = getattr(result, "thermal", None)
    rounds: List[Dict[str, float]] = [
        dict(point) for point in tele.series.get("placer/round", [])]
    return {
        "kind": MANIFEST_KIND,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "circuit": {
            "name": netlist.name,
            "num_cells": int(netlist.num_cells),
            "num_nets": int(netlist.num_nets),
            "num_movable": int(netlist.num_movable),
            "num_pins": int(netlist.num_pins()),
            "total_cell_area": float(netlist.total_cell_area),
        },
        "seed": int(config.seed),
        "config": _config_dict(config),
        "config_hash": config_hash(config),
        "versions": _versions(),
        "result": {
            "objective": float(result.objective),
            "wirelength": float(result.wirelength),
            "ilv": int(result.ilv),
            "wall_seconds": float(result.runtime_seconds),
            "peak_temperature": (None if peak_temperature is None
                                 else float(peak_temperature)),
        },
        "stages": _stage_rows(tele),
        "rounds": rounds,
        "counters": dict(tele.counters),
        "gauges": dict(tele.gauges),
        "trace_path": trace_path,
        "pipeline": pipeline,
        "thermal": thermal,
        "resources": resources,
        "profile": profile,
        "job": job,
    }


def write_manifest(path: Union[str, Path],
                   manifest: Dict[str, Any]) -> str:
    """Write a manifest as pretty-printed JSON; returns the path."""
    path = str(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_schema() -> Dict[str, Any]:
    """Load the packaged manifest schema."""
    with open(_SCHEMA_PATH, "r", encoding="utf-8") as fh:
        schema = json.load(fh)
    assert isinstance(schema, dict)
    return schema


def validate_manifest(manifest: Dict[str, Any],
                      schema: Optional[Dict[str, Any]] = None,
                      ) -> List[str]:
    """Validate a manifest; returns a list of errors (empty = valid)."""
    from repro.obs.validate import validate
    return validate(manifest, schema if schema is not None
                    else load_schema())


def load_checkpoint_schema() -> Dict[str, Any]:
    """Load the packaged checkpoint-metadata schema."""
    with open(_CHECKPOINT_SCHEMA_PATH, "r", encoding="utf-8") as fh:
        schema = json.load(fh)
    assert isinstance(schema, dict)
    return schema


def validate_checkpoint_meta(meta: Dict[str, Any]) -> List[str]:
    """Validate checkpoint metadata; returns errors (empty = valid).

    Checkpoints reuse the same dependency-free schema validator as run
    manifests, so a corrupt or hand-edited ``checkpoint.json`` is
    refused with a precise error instead of resuming garbage.
    """
    from repro.obs.validate import validate
    return validate(meta, load_checkpoint_schema())
