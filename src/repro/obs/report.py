"""Plain-text rendering of telemetry snapshots and run manifests.

Used by ``repro place --trace``, ``repro obs report`` and the
benchmark harnesses to print per-stage, memory and hot-function
breakdowns without any plotting dependencies.

Every renderer here degrades gracefully: a trace with zero spans, a
series with no points, a span node missing keys, or a manifest
predating the ``resources``/``profile`` sections renders as an honest
"(none)" instead of raising — reports run against whatever artifact
the user has, including ones written by older versions.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from repro.obs.recorder import Telemetry

__all__ = ["render", "render_manifest", "render_profile",
           "render_resources", "render_spans"]


def _node_total(node: Mapping[str, Any]) -> float:
    total = node.get("total_seconds")
    if isinstance(total, (int, float)) and not isinstance(total, bool):
        return float(total)
    if node.get("calls"):
        seconds = node.get("seconds", 0.0)
        if isinstance(seconds, (int, float)) \
                and not isinstance(seconds, bool):
            return float(seconds)
    return sum(_node_total(c) for c in node.get("children", [])
               if isinstance(c, Mapping))


def render_spans(spans: Mapping[str, Any], max_depth: int = 4) -> str:
    """Render a span tree (as produced by ``SpanStats.as_dict``).

    Each line shows indentation by depth, the node name, its total
    seconds, its share of the parent, and the call count.  Returns an
    empty string for an empty tree.
    """
    lines: List[str] = []
    root_total = _node_total(spans)

    def visit(node: Mapping[str, Any], depth: int,
              parent_total: float) -> None:
        if depth > max_depth:
            return
        total = _node_total(node)
        share = 100.0 * total / parent_total if parent_total > 0 else 0.0
        calls = node.get("calls", 0)
        calls = int(calls) if isinstance(calls, (int, float)) \
            and not isinstance(calls, bool) else 0
        name = str(node.get("name", "?"))
        indent = "  " * depth
        lines.append(f"{indent}{name:<24s}"
                     f"{total:>10.4f}s {share:>5.1f}%  x{calls}")
        for child in node.get("children", []):
            if isinstance(child, Mapping):
                visit(child, depth + 1, total)

    for child in spans.get("children", []):
        if isinstance(child, Mapping):
            visit(child, 0, root_total)
    return "\n".join(lines)


def _bytes_human(value: float) -> str:
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(size) < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" \
                else f"{int(size)} B"
        size /= 1024.0
    return f"{size:.1f} GiB"  # pragma: no cover - unreachable


def render_resources(resources: Optional[Mapping[str, Any]]) -> str:
    """Render a manifest ``resources`` section (memory report).

    ``None`` / empty (unprofiled run) renders a single "(none)" line.
    """
    if not resources:
        return "-- memory --\n(none: run without --profile)"
    lines = ["-- memory --"]
    for key, label in (("peak_rss_bytes", "peak RSS"),
                       ("current_rss_bytes", "final RSS"),
                       ("baseline_rss_bytes", "baseline RSS")):
        value = resources.get(key)
        if isinstance(value, (int, float)) \
                and not isinstance(value, bool) and value > 0:
            lines.append(f"{label:<24s}{_bytes_human(value):>14s}")
    samples = resources.get("samples")
    if isinstance(samples, (int, float)) \
            and not isinstance(samples, bool):
        lines.append(f"{'samples':<24s}{int(samples):>14d}")
    trace = resources.get("tracemalloc")
    if isinstance(trace, Mapping) and trace.get("enabled"):
        peak = trace.get("peak_bytes", 0)
        if isinstance(peak, (int, float)) \
                and not isinstance(peak, bool):
            lines.append(f"{'python heap peak':<24s}"
                         f"{_bytes_human(peak):>14s}")
        rows = trace.get("top_allocations")
        if isinstance(rows, list) and rows:
            lines.append("top allocation sites:")
            for row in rows:
                if not isinstance(row, Mapping):
                    continue
                site = str(row.get("site", "?"))
                size = row.get("size_bytes", 0)
                if not isinstance(size, (int, float)) \
                        or isinstance(size, bool):
                    size = 0
                lines.append(f"  {site:<38s}"
                             f"{_bytes_human(size):>12s}")
    return "\n".join(lines)


def render_profile(profile: Optional[Mapping[str, Any]]) -> str:
    """Render a manifest ``profile`` section (hot-function report).

    ``None`` / empty (unprofiled run) renders a single "(none)" line.
    """
    if not profile:
        return "-- hot functions --\n(none: run without --profile)"
    lines = ["-- hot functions --"]
    samples = profile.get("samples", 0)
    if not isinstance(samples, (int, float)) \
            or isinstance(samples, bool):
        samples = 0
    interval = profile.get("interval_seconds")
    header = f"{int(samples)} samples"
    if isinstance(interval, (int, float)) \
            and not isinstance(interval, bool) and interval > 0:
        header += f" @ {float(interval) * 1000:.0f}ms"
    lines.append(header)
    rows = profile.get("hot_functions")
    if isinstance(rows, list) and rows:
        lines.append(f"{'function':<44s}{'self':>6s}{'cum':>6s}")
        for row in rows:
            if not isinstance(row, Mapping):
                continue
            lines.append(f"{str(row.get('function', '?')):<44s}"
                         f"{int(row.get('self', 0)):>6d}"
                         f"{int(row.get('cum', 0)):>6d}")
    else:
        lines.append("(no samples attributed)")
    spans = profile.get("spans")
    if isinstance(spans, list) and spans:
        lines.append("per-span samples:")
        for row in spans:
            if not isinstance(row, Mapping):
                continue
            span = str(row.get("span") or "(no span)")
            lines.append(f"  {span:<42s}"
                         f"{int(row.get('samples', 0)):>6d}")
    return "\n".join(lines)


def render(telemetry: Telemetry, title: str = "telemetry") -> str:
    """Render a full telemetry snapshot as readable text.

    Sections: span tree, counters (sorted by name), and one summary
    line per time-series (point count plus last point).  Empty
    sections are omitted; a snapshot with no spans at all still
    renders its header.
    """
    lines: List[str] = [f"== {title} "
                        f"(wall {telemetry.wall_seconds:.4f}s) =="]
    span_text = render_spans(telemetry.spans)
    if span_text:
        lines.append("-- spans --")
        lines.append(span_text)
    else:
        lines.append("-- spans --")
        lines.append("(no spans recorded)")
    if telemetry.counters:
        lines.append("-- counters --")
        for name in sorted(telemetry.counters):
            value = telemetry.counters[name]
            if float(value).is_integer():
                lines.append(f"{name:<32s}{int(value):>12d}")
            else:
                lines.append(f"{name:<32s}{value:>12.4f}")
    if telemetry.series:
        lines.append("-- series --")
        for name in sorted(telemetry.series):
            points = telemetry.series[name]
            if not points:
                lines.append(f"{name:<24s}{0:>6d} points")
                continue
            last = {k: v for k, v in points[-1].items() if k != "t"}
            parts = ", ".join(f"{k}={v:.6g}"
                              for k, v in sorted(last.items()))
            lines.append(f"{name:<24s}{len(points):>6d} points"
                         f"  last: {parts}")
    return "\n".join(lines)


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """Render a run manifest as a full text report.

    Sections: run header (circuit, seed, result), span stages, memory
    and hot functions.  Missing sections degrade rather than raise, so
    the report works on manifests from any schema version.
    """
    lines: List[str] = []
    circuit = manifest.get("circuit")
    name = circuit.get("name", "?") if isinstance(circuit, Mapping) \
        else "?"
    lines.append(f"== run report: {name} ==")
    result = manifest.get("result")
    if isinstance(result, Mapping):
        for key in ("objective", "wirelength", "ilv", "wall_seconds",
                    "peak_temperature"):
            value = result.get(key)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                lines.append(f"{key:<24s}{float(value):>14.6g}")
    stages = manifest.get("stages")
    lines.append("-- stages --")
    if isinstance(stages, list) and stages:
        for row in stages:
            if not isinstance(row, Mapping):
                continue
            path = str(row.get("path", "?"))
            seconds = row.get("seconds", 0.0)
            if not isinstance(seconds, (int, float)) \
                    or isinstance(seconds, bool):
                seconds = 0.0
            calls = row.get("calls", 0)
            if not isinstance(calls, (int, float)) \
                    or isinstance(calls, bool):
                calls = 0
            lines.append(f"{path:<36s}{float(seconds):>10.4f}s"
                         f"  x{int(calls)}")
    else:
        lines.append("(no stages recorded)")
    lines.append(render_resources(
        manifest.get("resources") if isinstance(
            manifest.get("resources"), Mapping) else None))
    lines.append(render_profile(
        manifest.get("profile") if isinstance(
            manifest.get("profile"), Mapping) else None))
    return "\n".join(lines)
