"""Plain-text rendering of a telemetry snapshot.

Used by ``repro place --trace`` and the benchmark harnesses to print a
per-stage breakdown without any plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.recorder import Telemetry

__all__ = ["render", "render_spans"]


def _node_total(node: Dict[str, Any]) -> float:
    total = node.get("total_seconds")
    if total is not None:
        return float(total)
    if node.get("calls"):
        return float(node["seconds"])
    return sum(_node_total(c) for c in node.get("children", []))


def render_spans(spans: Dict[str, Any], max_depth: int = 4) -> str:
    """Render a span tree (as produced by ``SpanStats.as_dict``).

    Each line shows indentation by depth, the node name, its total
    seconds, its share of the parent, and the call count.
    """
    lines: List[str] = []
    root_total = _node_total(spans)

    def visit(node: Dict[str, Any], depth: int,
              parent_total: float) -> None:
        if depth > max_depth:
            return
        total = _node_total(node)
        share = 100.0 * total / parent_total if parent_total > 0 else 0.0
        calls = int(node.get("calls", 0))
        indent = "  " * depth
        lines.append(f"{indent}{node['name']:<24s}"
                     f"{total:>10.4f}s {share:>5.1f}%  x{calls}")
        for child in node.get("children", []):
            visit(child, depth + 1, total)

    for child in spans.get("children", []):
        visit(child, 0, root_total)
    return "\n".join(lines)


def render(telemetry: Telemetry, title: str = "telemetry") -> str:
    """Render a full telemetry snapshot as readable text.

    Sections: span tree, counters (sorted by name), and one summary
    line per time-series (point count plus last point).
    """
    lines: List[str] = [f"== {title} "
                        f"(wall {telemetry.wall_seconds:.4f}s) =="]
    span_text = render_spans(telemetry.spans)
    if span_text:
        lines.append("-- spans --")
        lines.append(span_text)
    if telemetry.counters:
        lines.append("-- counters --")
        for name in sorted(telemetry.counters):
            value = telemetry.counters[name]
            if float(value).is_integer():
                lines.append(f"{name:<32s}{int(value):>12d}")
            else:
                lines.append(f"{name:<32s}{value:>12.4f}")
    if telemetry.series:
        lines.append("-- series --")
        for name in sorted(telemetry.series):
            points = telemetry.series[name]
            last = {k: v for k, v in points[-1].items() if k != "t"}
            parts = ", ".join(f"{k}={v:.6g}"
                              for k, v in sorted(last.items()))
            lines.append(f"{name:<24s}{len(points):>6d} points"
                         f"  last: {parts}")
    return "\n".join(lines)
