"""Hierarchical tracing spans with wall time and call aggregation.

A :class:`Tracer` maintains a tree of :class:`SpanStats` nodes.  Span
names may contain ``/`` separators — ``span("global/level3/bisect")``
opens three nested nodes at once, so call sites can express their
position in the taxonomy without threading parent handles around.

Repeated spans with the same path aggregate: ``seconds`` accumulates
wall time and ``calls`` counts completions, which is what per-stage
reporting wants (e.g. one ``level3/bisect`` node covering all eight
bisections at level 3).

The clock is injectable so tests can drive deterministic timings; the
default is :func:`time.perf_counter`.  This module is the only place in
``src/repro`` (outside ``repro.obs``) allowed to read the wall clock —
the domain linter rule RPL009 enforces that.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import (Any, Callable, Dict, Iterator, List, Optional, Tuple,
                    Type)

__all__ = ["SpanStats", "Stopwatch", "Tracer"]


class SpanStats:
    """One node of the span tree.

    Attributes:
        name: the last path segment (``bisect`` in ``level3/bisect``).
        calls: completed spans that ended exactly at this node.
        seconds: wall time measured for spans ending at this node.
            Child time is a subset of the parent's measured time, not
            an addition to it.
        children: child nodes keyed by name, in creation order.
    """

    __slots__ = ("name", "calls", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.children: Dict[str, SpanStats] = {}

    def child(self, name: str) -> "SpanStats":
        """Return the child named ``name``, creating it if needed."""
        node = self.children.get(name)
        if node is None:
            node = SpanStats(name)
            self.children[name] = node
        return node

    def total_seconds(self) -> float:
        """Wall time attributable to this subtree.

        A node that was entered directly reports its own measured
        ``seconds`` (children are already inside that window); a purely
        structural node (created only as an intermediate path segment)
        reports the sum of its children.
        """
        if self.calls > 0:
            return self.seconds
        return sum(c.total_seconds() for c in self.children.values())

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "SpanStats"]]:
        """Yield ``(path, node)`` pairs depth-first, excluding self."""
        for child in self.children.values():
            path = f"{prefix}{child.name}"
            yield path, child
            yield from child.walk(prefix=f"{path}/")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view of the subtree."""
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "total_seconds": self.total_seconds(),
            "children": [c.as_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanStats":
        """Rebuild a subtree from its :meth:`as_dict` view.

        ``total_seconds`` is derived state and is ignored; the
        round-trip ``SpanStats.from_dict(node.as_dict())`` reproduces
        names, calls, seconds and child order exactly.
        """
        node = cls(str(data.get("name", "")))
        node.calls = int(data.get("calls", 0))
        node.seconds = float(data.get("seconds", 0.0))
        for child_data in data.get("children", []):
            child = cls.from_dict(child_data)
            node.children[child.name] = child
        return node

    def merge(self, other: "SpanStats") -> None:
        """Fold another subtree into this one, in place.

        Calls and seconds add at every matching path; children unique
        to ``other`` are deep-merged into fresh nodes (appended after
        this node's existing children, preserving creation order on
        both sides).  Merging is associative and commutative up to
        child ordering, so folding worker snapshots into a parent tree
        gives the same totals regardless of completion order.
        """
        self.calls += other.calls
        self.seconds += other.seconds
        for name, other_child in other.children.items():
            self.child(name).merge(other_child)


class _ActiveSpan:
    """Context manager for one open span (possibly multi-segment)."""

    __slots__ = ("_tracer", "_nodes", "_start")

    def __init__(self, tracer: "Tracer", nodes: List[SpanStats]) -> None:
        self._tracer = tracer
        self._nodes = nodes
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._tracer.push(self._nodes)
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        elapsed = self._tracer.clock() - self._start
        leaf = self._nodes[-1]
        leaf.calls += 1
        leaf.seconds += elapsed
        self._tracer.pop(len(self._nodes), elapsed)


class Tracer:
    """Builds the span tree and tracks the currently open span stack.

    Args:
        clock: monotonic time source, seconds (injectable for tests).
        on_exit: optional callback ``(path, seconds)`` fired when a span
            closes — the recorder uses it to stream span events to the
            JSONL sink.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 on_exit: Optional[Callable[[str, float], None]] = None,
                 ) -> None:
        self.clock = clock
        self.on_exit = on_exit
        self.root = SpanStats("")
        self._stack: List[SpanStats] = [self.root]

    def span(self, name: str) -> _ActiveSpan:
        """Open a span below the currently active one.

        Args:
            name: span path; ``/`` separators open nested segments.

        Returns:
            A context manager; timing covers the ``with`` body.
        """
        node = self._stack[-1]
        nodes: List[SpanStats] = []
        for part in name.split("/"):
            node = node.child(part)
            nodes.append(node)
        return _ActiveSpan(self, nodes)

    def push(self, nodes: List[SpanStats]) -> None:
        """Make ``nodes`` (outer→inner) the active span chain."""
        self._stack.extend(nodes)

    def pop(self, count: int, elapsed: float) -> None:
        """Close ``count`` segments and report the leaf path."""
        if self.on_exit is not None:
            path = "/".join(n.name for n in self._stack[1:])
            self.on_exit(path, elapsed)
        del self._stack[-count:]

    def current_path(self) -> str:
        """``/``-joined path of the innermost open span (may be "")."""
        return "/".join(n.name for n in self._stack[1:])

    def current_node(self) -> SpanStats:
        """The innermost open span's node (the root when none is open).

        Merge anchors use this: folding a child tracer's tree in here
        files its spans under whatever span the caller has open.
        """
        return self._stack[-1]


class Stopwatch:
    """Minimal elapsed-time helper for code without a span tree.

    The baseline placers time a single block; a stopwatch keeps them off
    raw ``time.perf_counter()`` (RPL009) without dragging in a recorder.

    Example:
        >>> sw = Stopwatch()
        >>> sw.elapsed() >= 0.0
        True
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 ) -> None:
        self._clock = clock
        self._start = clock()

    def restart(self) -> None:
        """Reset the start time to now."""
        self._start = self._clock()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return self._clock() - self._start
