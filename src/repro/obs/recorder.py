"""Recorder: the single object pipeline stages talk to.

A :class:`Recorder` bundles a span :class:`~repro.obs.trace.Tracer`
with counters, gauges and named time-series, and optionally streams
everything to a JSONL :class:`~repro.obs.events.EventSink`.

Deep pipeline components (FM refinement, the thermal solver, move
passes) do not take a recorder argument — they read the *ambient*
recorder via :func:`get_recorder`, which is the shared
:data:`NULL_RECORDER` unless a caller installs a real one with
:func:`use_recorder`.  That keeps the default path allocation-free and
branch-cheap, which is how the ≤2 % overhead budget is met.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import TracebackType
from typing import (TYPE_CHECKING, Any, Callable, ContextManager, Dict,
                    Iterator, List, Optional, Tuple, Type)

from repro.obs.events import EventSink
from repro.obs.trace import SpanStats, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.resources import ResourceTracker

__all__ = ["NULL_RECORDER", "NullRecorder", "Recorder", "Telemetry",
           "get_recorder", "use_recorder"]

#: Gauge-name prefixes that merge by *max* when folding worker
#: telemetry (:meth:`Recorder.merge`).  Peak-memory gauges are
#: high-water marks: the merged run's peak is the largest worker's
#: peak, not whichever worker merged last.
_MAX_MERGE_GAUGE_PREFIXES: Tuple[str, ...] = (
    "resources/peak_", "resources/tracemalloc_peak_")


def _merges_by_max(name: str) -> bool:
    return name.startswith(_MAX_MERGE_GAUGE_PREFIXES)


@dataclass
class Telemetry:
    """Immutable snapshot of a recorder, attached to results.

    Attributes:
        spans: JSON view of the span-tree root (see
            :meth:`SpanStats.as_dict`).
        counters: monotonic named totals.
        gauges: last-write-wins named values.
        series: named lists of ``{"t": ..., **fields}`` points.
        wall_seconds: total wall time covered by the span tree.
    """

    spans: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[Dict[str, float]]] = field(default_factory=dict)
    wall_seconds: float = 0.0


class Recorder:
    """Collects spans, counters, gauges and time-series for one run.

    Args:
        sink: optional JSONL event sink; when given, span completions,
            counter increments, gauge writes and series points are
            streamed to it as they happen.
        clock: monotonic time source, seconds (injectable for tests).
        track_resources: attach a
            :class:`~repro.obs.resources.ResourceTracker` (per-span RSS
            gauges, optional tracemalloc attribution).  ``None`` (the
            default) defers to the ``REPRO_PROFILE`` environment
            opt-in — which is how forked workers inherit tracking
            without any parameter threading through
            :mod:`repro.parallel`.

    Attributes:
        enabled: ``True`` — branch on this in hot call sites instead of
            paying for no-op method calls in inner loops.
        tracer: the span tree builder.
        sink: the event sink, or ``None``.
        resources: the attached resource tracker, or ``None``.
    """

    enabled: bool = True

    def __init__(self, sink: Optional[EventSink] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 track_resources: Optional[bool] = None) -> None:
        self.sink = sink
        self._clock = clock
        self._t0 = clock()
        on_exit = self._span_closed if sink is not None else None
        self.tracer = Tracer(clock=clock, on_exit=on_exit)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.series: Dict[str, List[Dict[str, float]]] = {}
        self.resources: Optional["ResourceTracker"] = None
        if track_resources is None:
            from repro.obs.resources import resources_enabled
            track_resources = resources_enabled()
        if track_resources:
            from repro.obs.resources import ResourceTracker
            self.resources = ResourceTracker(self)

    # -- spans ---------------------------------------------------------
    def span(self, name: str) -> ContextManager[Any]:
        """Open a (possibly ``/``-nested) timing span."""
        return self.tracer.span(name)

    def _span_closed(self, path: str, seconds: float) -> None:
        if self.sink is not None:
            self.sink.emit({"type": "span", "path": path,
                            "seconds": round(seconds, 9)})

    # -- metrics -------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named monotonic counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""
        self.gauges[name] = float(value)
        if self.sink is not None:
            self.sink.emit({"type": "gauge", "name": name,
                            "value": float(value)})

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the named gauge to ``value`` if it is a new maximum."""
        current = self.gauges.get(name)
        if current is None or float(value) > current:
            self.gauge(name, value)

    def record(self, name: str, **fields: float) -> None:
        """Append a point to the named time-series.

        The point gets a ``t`` field (seconds since the recorder was
        created) plus the given numeric fields.
        """
        point: Dict[str, float] = {
            "t": round(self._clock() - self._t0, 9)}
        for key, value in fields.items():
            point[key] = float(value)
        self.series.setdefault(name, []).append(point)
        if self.sink is not None:
            event: Dict[str, Any] = {"type": "series", "name": name}
            event.update(point)
            self.sink.emit(event)

    # -- resources -----------------------------------------------------
    def sample_resources(self, label: str) -> None:
        """Record per-span memory gauges, when a tracker is attached.

        Called at pipeline stage boundaries; a plain counter-check
        no-op when resource tracking is off, so the default path stays
        at its historical cost.
        """
        if self.resources is not None:
            self.resources.sample(label)

    def finish_resources(self) -> Optional[Dict[str, Any]]:
        """Finalize resource tracking; the manifest ``resources``
        section, or ``None`` when tracking is off."""
        if self.resources is None:
            return None
        return self.resources.finish()

    # -- merging -------------------------------------------------------
    def merge(self, telemetry: Telemetry) -> None:
        """Fold a child recorder's snapshot into this recorder.

        Parallel workers run their own ambient :class:`Recorder` (the
        process-global one is not shared across processes) and ship
        :class:`Telemetry` snapshots back; the dispatching side calls
        this once per snapshot so ``--trace`` reports and manifests
        stay complete under parallelism.

        Semantics per signal:

        - **spans**: the snapshot's tree is merged under the currently
          *open* span (calls and seconds add at matching paths), so a
          caller holding a ``level3/bisect`` span open files worker
          spans beneath it;
        - **counters**: added — totals are distribution-independent;
        - **gauges**: last write wins, matching in-process behaviour —
          except peak-memory gauges (``resources/peak_*``), which are
          high-water marks and merge by max so totals stay
          distribution-independent at any worker count;
        - **series**: points append in merge-call order (the caller
          merges results in task order, keeping this deterministic).
        """
        anchor = self.tracer.current_node()
        anchor.merge(SpanStats.from_dict(telemetry.spans))
        for name, value in telemetry.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in telemetry.gauges.items():
            if _merges_by_max(name):
                current = self.gauges.get(name)
                self.gauges[name] = value if current is None \
                    else max(current, value)
            else:
                self.gauges[name] = value
        for name, points in telemetry.series.items():
            self.series.setdefault(name, []).extend(
                dict(point) for point in points)

    # -- lifecycle -----------------------------------------------------
    def snapshot(self) -> Telemetry:
        """Freeze the current state into a :class:`Telemetry`."""
        root = self.tracer.root
        return Telemetry(
            spans=root.as_dict(),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            series={k: [dict(p) for p in v]
                    for k, v in self.series.items()},
            wall_seconds=root.total_seconds(),
        )

    def close(self) -> None:
        """Close the sink, if any (idempotent)."""
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


class _NullSpan:
    """Shared no-op span context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder(Recorder):
    """Recorder that records nothing; the default ambient recorder.

    Every method is a constant-time no-op that allocates nothing, so
    instrumentation left in library code costs one attribute lookup and
    one call per boundary when telemetry is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=None, track_resources=False)

    def span(self, name: str) -> ContextManager[Any]:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def gauge_max(self, name: str, value: float) -> None:
        return None

    def record(self, name: str, **fields: float) -> None:
        return None

    def merge(self, telemetry: Telemetry) -> None:
        return None


NULL_RECORDER = NullRecorder()

_active: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """Return the ambient recorder (:data:`NULL_RECORDER` by default)."""
    return _active


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for a ``with`` body.

    The previous ambient recorder is restored on exit, including on
    exceptions, so nested scopes compose.
    """
    global _active
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous
