"""Namespaced logging for the library and the CLI.

Library modules log through ``get_logger(__name__)``; everything hangs
off the ``repro`` root logger, which carries a ``NullHandler`` so
importing the library never prints or warns about missing handlers.
The CLI opts into output with :func:`configure_cli_logging`, mapping
``-v``/``-q`` flags onto levels.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["LIBRARY_LOGGER", "configure_cli_logging", "get_logger"]

LIBRARY_LOGGER = "repro"

_root = logging.getLogger(LIBRARY_LOGGER)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())

_cli_handler: Optional[logging.Handler] = None


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Args:
        name: dotted module name; ``repro.core.placer`` is used as-is,
            a bare suffix like ``cli`` becomes ``repro.cli``.
    """
    if name == LIBRARY_LOGGER or name.startswith(LIBRARY_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER}.{name}")


def configure_cli_logging(verbosity: int = 0,
                          stream: Optional[IO[str]] = None,
                          ) -> logging.Handler:
    """Install a stderr handler on the ``repro`` root logger.

    Args:
        verbosity: net ``-v`` minus ``-q`` count.  ``<= -1`` shows only
            errors, ``0`` warnings, ``1`` info, ``>= 2`` debug.
        stream: output stream (defaults to ``sys.stderr``).

    Returns:
        The installed handler (tests use it to capture output).
    """
    global _cli_handler
    root = logging.getLogger(LIBRARY_LOGGER)
    if _cli_handler is not None:
        root.removeHandler(_cli_handler)
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(
        "[%(levelname).1s] %(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    _cli_handler = handler
    return handler
