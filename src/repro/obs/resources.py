"""Process resource telemetry: peak RSS and tracemalloc attribution.

Wall time tells half the scaling story; the other half is memory.
This module owns the two measurements the bench/regression tooling
gates on:

- **RSS**: :func:`rss_bytes` (current resident set) and
  :func:`peak_rss_bytes` (the process high-water mark), read from
  ``/proc/self`` where available with a ``resource.getrusage``
  fallback, so they work inside the CI containers without psutil;
- **tracemalloc**: allocation tracking with a top-N allocation-site
  table, attributing peak Python-heap usage to ``file:line`` sites.

A :class:`ResourceTracker` bundles both behind the recorder:
:meth:`ResourceTracker.sample` is called at pipeline stage boundaries
(see ``PlacementPipeline``) and writes per-span RSS gauges; the
end-of-run :meth:`ResourceTracker.finish` produces the manifest's
``resources`` section.

Like profiling, resource tracking is opt-in (``--profile`` /
``REPRO_PROFILE=1``) — a :class:`~repro.obs.recorder.Recorder` only
attaches a tracker when asked (or when the environment opts the whole
process tree in, which is how forked workers inherit it; see
``Recorder.merge`` for how worker peak gauges fold back by max).
RSS reads are ~µs-cheap; **tracemalloc is not** — it hooks every
allocation and slows allocation-heavy runs by ~8x, so it requires the
*separate, deeper* opt-in ``--profile-alloc`` / ``REPRO_PROFILE_ALLOC``
(:func:`alloc_enabled`) on top of profiling.
"""

from __future__ import annotations

import os
import tracemalloc
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.recorder import Recorder

__all__ = ["ALLOC_ENV", "ResourceTracker", "alloc_enabled",
           "peak_rss_bytes", "resources_enabled", "rss_bytes"]

#: Deeper opt-in for tracemalloc allocation tracing on top of
#: ``REPRO_PROFILE``.  Kept separate because hooking every allocation
#: costs ~8x wall time — never an acceptable default for a profile
#: run whose own overhead budget is 5 %.
ALLOC_ENV = "REPRO_PROFILE_ALLOC"

#: Gauge written by every tracker; merged by *max* across workers (see
#: ``Recorder.merge``), because a fleet's peak RSS is its largest
#: member, not its last reporter.
PEAK_RSS_GAUGE = "resources/peak_rss_bytes"

#: Default number of tracemalloc allocation sites kept.
DEFAULT_TOP_ALLOCATIONS = 10

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") \
    else 4096


def resources_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` opts this process into tracking."""
    from repro.obs.profile import profile_enabled
    return profile_enabled()


def alloc_enabled() -> bool:
    """Whether ``REPRO_PROFILE_ALLOC`` opts into allocation tracing."""
    value = os.environ.get(ALLOC_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def _proc_status_kb(field: str) -> Optional[int]:
    """Read one kB-valued field from ``/proc/self/status``."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def rss_bytes() -> int:
    """Current resident set size of this process, bytes (0 unknown).

    Prefers ``/proc/self/statm`` (one read, no parsing ambiguity);
    falls back to ``/proc/self/status`` ``VmRSS``.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    kb = _proc_status_kb("VmRSS")
    return kb * 1024 if kb is not None else 0


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, bytes (0 unknown).

    ``/proc/self/status`` ``VmHWM`` where available, else
    ``getrusage(RUSAGE_SELF).ru_maxrss`` (kB on Linux).
    """
    kb = _proc_status_kb("VmHWM")
    if kb is not None:
        return kb * 1024
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) \
            * 1024
    except (ImportError, OSError):
        return 0


class ResourceTracker:
    """Per-run memory telemetry feeding one recorder.

    Args:
        recorder: the recorder that receives gauges and counters.
        trace_allocations: also run ``tracemalloc`` for allocation-site
            attribution.  Tracing hooks every allocation (~8x wall
            time on allocation-heavy runs), so ``None`` — the default,
            and what ``Recorder`` auto-attach passes — defers to the
            deeper :func:`alloc_enabled` opt-in rather than riding
            along with plain profiling; if another component already
            started tracemalloc, the tracker observes without taking
            ownership (and will not stop it on :meth:`finish`).
        top_allocations: allocation sites kept in the summary.

    The tracker never raises on platforms without ``/proc``: RSS
    gauges degrade to zero, which downstream consumers (diffing,
    reports) treat as "unknown" rather than a regression.
    """

    def __init__(self, recorder: "Recorder",
                 trace_allocations: Optional[bool] = None,
                 top_allocations: int = DEFAULT_TOP_ALLOCATIONS) -> None:
        self._recorder = recorder
        self.top_allocations = int(top_allocations)
        self.baseline_rss = rss_bytes()
        self.samples = 0
        self._owns_tracemalloc = False
        if trace_allocations is None:
            trace_allocations = alloc_enabled()
        self.tracing = bool(trace_allocations)
        if self.tracing and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self.tracing = self.tracing and tracemalloc.is_tracing()

    # -- sampling ------------------------------------------------------
    def sample(self, label: str) -> None:
        """Record memory state at a span boundary.

        Writes ``resources/rss/<label>`` (current RSS after the unit)
        and refreshes the process-peak gauge; counts every sample so
        worker-merged totals are checkable across worker counts.
        """
        rec = self._recorder
        rec.gauge(f"resources/rss/{label}", float(rss_bytes()))
        rec.gauge(PEAK_RSS_GAUGE, float(peak_rss_bytes()))
        rec.count("resources/samples")
        self.samples += 1

    def top_allocation_rows(self) -> List[Dict[str, Any]]:
        """Current top allocation sites, largest first.

        Empty when tracing is off.  Sites are ``file:line`` with the
        path shortened the same way profiler frames are.
        """
        if not self.tracing or not tracemalloc.is_tracing():
            return []
        from repro.obs.profile import _PATH_MARKERS
        snapshot = tracemalloc.take_snapshot()
        stats = snapshot.statistics("lineno")
        rows: List[Dict[str, Any]] = []
        for stat in stats[:self.top_allocations]:
            frame = stat.traceback[0]
            filename = frame.filename.replace("\\", "/")
            for marker in _PATH_MARKERS:
                pos = filename.rfind(marker)
                if pos >= 0:
                    filename = filename[pos + len(marker):]
                    break
            else:
                filename = filename.rsplit("/", 1)[-1]
            rows.append({
                "site": f"{filename}:{frame.lineno}",
                "size_bytes": int(stat.size),
                "count": int(stat.count),
            })
        return rows

    # -- lifecycle -----------------------------------------------------
    def finish(self) -> Dict[str, Any]:
        """Final sample plus the manifest ``resources`` section.

        Stops tracemalloc if this tracker started it.  Safe to call
        once; the recorder keeps the gauges either way.
        """
        peak = peak_rss_bytes()
        current = rss_bytes()
        rec = self._recorder
        rec.gauge(PEAK_RSS_GAUGE, float(peak))
        traced_peak = 0
        allocations: List[Dict[str, Any]] = []
        if self.tracing and tracemalloc.is_tracing():
            allocations = self.top_allocation_rows()
            traced_peak = tracemalloc.get_traced_memory()[1]
            rec.gauge("resources/tracemalloc_peak_bytes",
                      float(traced_peak))
            if self._owns_tracemalloc:
                tracemalloc.stop()
                self._owns_tracemalloc = False
        return {
            "peak_rss_bytes": int(peak),
            "current_rss_bytes": int(current),
            "baseline_rss_bytes": int(self.baseline_rss),
            "samples": int(self.samples),
            "tracemalloc": {
                "enabled": bool(self.tracing),
                "peak_bytes": int(traced_peak),
                "top_allocations": allocations,
            },
        }
