"""Minimal JSON-Schema-subset validator (zero dependencies).

CI validates run manifests against ``manifest_schema.json`` but the CI
environment installs only numpy/scipy/pytest — no ``jsonschema``.  This
module implements the small, explicit subset of JSON Schema the
manifest schema uses: ``type`` (string or list), ``required``,
``properties``, ``additionalProperties``, ``items``, ``enum``,
``const``, ``minimum`` and ``minItems``.  Unknown keywords raise, so a
schema edit cannot silently become a no-op.

Runnable: ``python -m repro.obs.validate MANIFEST [SCHEMA]``.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["main", "validate"]

_TYPE_CHECKS = ("object", "array", "string", "number", "integer",
                "boolean", "null")

_KNOWN_KEYWORDS = frozenset({
    "type", "required", "properties", "additionalProperties", "items",
    "enum", "const", "minimum", "minItems",
    # descriptive keywords, ignored:
    "title", "description", "$schema", "$id", "default", "examples",
})


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    raise ValueError(f"unsupported schema type: {expected!r}")


def validate(instance: Any, schema: Dict[str, Any],
             path: str = "$") -> List[str]:
    """Validate ``instance`` against a schema-subset ``schema``.

    Returns:
        A list of human-readable error strings; empty means valid.
    """
    errors: List[str] = []
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        raise ValueError(
            f"{path}: unsupported schema keywords: {sorted(unknown)}")

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        for entry in allowed:
            if entry not in _TYPE_CHECKS:
                raise ValueError(
                    f"{path}: unsupported schema type {entry!r}")
        if not any(_type_ok(instance, entry) for entry in allowed):
            got = type(instance).__name__
            errors.append(f"{path}: expected type "
                          f"{'/'.join(allowed)}, got {got}")
            return errors

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        errors.append(f"{path}: {instance!r} below minimum "
                      f"{schema['minimum']!r}")

    if isinstance(instance, dict):
        props: Dict[str, Any] = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        extra = schema.get("additionalProperties")
        for key, value in instance.items():
            if key in props:
                errors.extend(validate(value, props[key],
                                       f"{path}.{key}"))
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                errors.extend(validate(value, extra, f"{path}.{key}"))

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(f"{path}: expected at least "
                          f"{schema['minItems']} items, "
                          f"got {len(instance)}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                errors.extend(validate(value, items, f"{path}[{i}]"))

    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: validate a manifest file, print errors.

    Args:
        argv: ``[manifest_path]`` or ``[manifest_path, schema_path]``;
            the packaged manifest schema is used when no schema path is
            given.

    Returns:
        Process exit code (0 valid, 1 invalid, 2 usage error).
    """
    args = list(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(args) <= 2:
        print("usage: python -m repro.obs.validate MANIFEST [SCHEMA]",
              file=sys.stderr)
        return 2
    with open(args[0], "r", encoding="utf-8") as fh:
        instance = json.load(fh)
    if len(args) == 2:
        with open(args[1], "r", encoding="utf-8") as fh:
            schema = json.load(fh)
    else:
        from repro.obs.manifest import load_schema
        schema = load_schema()
    errors = validate(instance, schema)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"INVALID: {args[0]} ({len(errors)} errors)",
              file=sys.stderr)
        return 1
    print(f"valid: {args[0]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
