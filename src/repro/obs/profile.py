"""Low-overhead sampling profiler attributing samples to open spans.

The span tree answers *how long* each pipeline stage took; this module
answers *where inside it* the time goes.  A :class:`SamplingProfiler`
wakes on a fixed interval, captures the profiled thread's Python stack
with ``sys._current_frames()`` (no tracing hooks, so the profiled code
runs at full speed between samples), and files each sample under the
span path the run currently has open — ``round1/moves`` samples stay
separate from ``global`` samples even when both pass through the same
kernel function.

Everything aggregates into a :class:`ProfileData`, which exports

- **collapsed stacks** (``frame;frame;frame count`` lines, the
  flamegraph.pl / speedscope interchange format), with the open span
  path as synthetic root frames (``span:round1`` …);
- **hot-function tables**: per-function *self* (sampled at the leaf)
  and *cumulative* (anywhere on the stack) counts, overall and per
  span path.

Profiling is strictly opt-in (``--profile`` / ``REPRO_PROFILE=1``):
a disabled run constructs no profiler and no sampler thread, so the
default path pays nothing.  The sampler is a daemon thread
rather than a SIGPROF handler so it composes with scipy's C code,
worker processes and non-main threads; the clock and the sampled frame
are injectable, so tests drive :meth:`SamplingProfiler.sample_once`
with synthetic stacks and never sleep.

This module lives in ``repro.obs`` and is therefore allowed to touch
``time`` and ``threading`` directly (lint rules RPL009/RPL013 scope
everything else onto :mod:`repro.obs.clock`).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from types import FrameType, TracebackType
from typing import (Any, Callable, Dict, List, Optional, Tuple, Type)

from repro.obs.trace import Tracer

__all__ = ["DEFAULT_INTERVAL", "PROFILE_ENV", "ProfileData",
           "SamplingProfiler", "profile_enabled"]

#: Environment variable that opts a run into profiling (and resource
#: tracking — see :mod:`repro.obs.resources`).
PROFILE_ENV = "REPRO_PROFILE"

#: Default sampling interval, seconds (100 Hz).  One sample costs a
#: stack walk of the profiled thread (~tens of microseconds), so the
#: default rate keeps the telemetry-gated overhead budget (<= 5 %,
#: gated by ``benchmarks/bench_scaling.py --check-overhead``).
DEFAULT_INTERVAL = 0.01

#: Path fragments stripped from frame filenames so collapsed stacks
#: stay stable across checkouts and virtualenvs.
_PATH_MARKERS = ("/src/repro/", "/site-packages/", "/lib/python")


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` opts this process into profiling."""
    return os.environ.get(PROFILE_ENV, "0").strip().lower() \
        in ("1", "true", "yes", "on")


def frame_label(frame: FrameType) -> str:
    """Human-stable label for one frame: ``module:qualname``.

    The module part is the source path relative to the innermost
    recognised root (``src/repro``, ``site-packages`` …), so labels are
    machine-independent; the function part prefers ``co_qualname``
    (3.11+) over the bare name so methods keep their class.
    """
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/")
    for marker in _PATH_MARKERS:
        pos = filename.rfind(marker)
        if pos >= 0:
            filename = filename[pos + len(marker):]
            break
    else:
        filename = filename.rsplit("/", 1)[-1]
    if filename.endswith(".py"):
        filename = filename[:-3]
    name = getattr(code, "co_qualname", code.co_name)
    return f"{filename}:{name}"


def stack_of(frame: Optional[FrameType],
             max_depth: int = 64) -> Tuple[str, ...]:
    """The frame's stack as labels, outermost first, depth-capped.

    When the stack is deeper than ``max_depth`` the outermost frames
    are dropped (the leaf — where the time is actually spent — always
    survives truncation).
    """
    labels: List[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class ProfileData:
    """Aggregated samples: span-attributed stacks plus hot tables.

    Attributes:
        samples: total samples recorded.
        stacks: ``(span_path, stack)`` -> sample count, where ``stack``
            is a tuple of frame labels outermost-first and
            ``span_path`` is the ``/``-joined open-span path at sample
            time (``""`` when no span was open).
    """

    __slots__ = ("samples", "stacks")

    def __init__(self) -> None:
        self.samples = 0
        self.stacks: Dict[Tuple[str, Tuple[str, ...]], int] = {}

    # -- recording -----------------------------------------------------
    def add(self, span_path: str, stack: Tuple[str, ...],
            count: int = 1) -> None:
        """Record ``count`` samples of ``stack`` under ``span_path``."""
        key = (span_path, stack)
        self.stacks[key] = self.stacks.get(key, 0) + count
        self.samples += count

    def merge(self, other: "ProfileData") -> None:
        """Fold another profile into this one (sample counts add)."""
        for (span_path, stack), count in other.stacks.items():
            self.add(span_path, stack, count)

    # -- exports -------------------------------------------------------
    def collapsed(self) -> List[str]:
        """Flamegraph-ready collapsed-stack lines, sorted for stability.

        The open span path becomes synthetic root frames
        (``span:round1;span:moves;…``) so a flamegraph groups kernel
        time by pipeline position before grouping by call stack.
        """
        lines: List[str] = []
        for (span_path, stack), count in sorted(self.stacks.items()):
            frames: List[str] = [f"span:{part}"
                                 for part in span_path.split("/")
                                 if part]
            frames.extend(stack)
            if not frames:
                frames = ["<unknown>"]
            lines.append(f"{';'.join(frames)} {count}")
        return lines

    def hot_functions(self, span_path: Optional[str] = None,
                      top: int = 0) -> List[Dict[str, Any]]:
        """Self/cumulative sample counts per function, hottest first.

        Args:
            span_path: restrict to samples taken under this exact open
                span path; ``None`` aggregates every sample.
            top: keep only the ``top`` hottest rows (by self count);
                ``0`` keeps all.

        Returns:
            Rows ``{"function", "self", "cum"}`` sorted by descending
            self count (cumulative count breaking ties), where ``cum``
            counts samples with the function anywhere on the stack and
            ``self`` counts samples with it at the leaf.
        """
        self_counts: Dict[str, int] = {}
        cum_counts: Dict[str, int] = {}
        for (path, stack), count in self.stacks.items():
            if span_path is not None and path != span_path:
                continue
            if not stack:
                continue
            leaf = stack[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for label in set(stack):
                cum_counts[label] = cum_counts.get(label, 0) + count
        rows = [{"function": label,
                 "self": self_counts.get(label, 0),
                 "cum": cum}
                for label, cum in cum_counts.items()]
        rows.sort(key=lambda r: (-int(r["self"]), -int(r["cum"]),
                                 str(r["function"])))
        return rows[:top] if top > 0 else rows

    def span_paths(self) -> List[str]:
        """Distinct open-span paths seen, by descending sample count."""
        totals: Dict[str, int] = {}
        for (path, _), count in self.stacks.items():
            totals[path] = totals.get(path, 0) + count
        return sorted(totals, key=lambda p: (-totals[p], p))

    def span_table(self, top: int = 5) -> List[Dict[str, Any]]:
        """Per-span hot-function summary for the manifest/report.

        Returns:
            One row per open-span path (descending sample count):
            ``{"span", "samples", "functions": [hot rows]}``.
        """
        out: List[Dict[str, Any]] = []
        for path in self.span_paths():
            samples = sum(c for (p, _), c in self.stacks.items()
                          if p == path)
            out.append({"span": path, "samples": samples,
                        "functions": self.hot_functions(path, top=top)})
        return out

    # -- serialization -------------------------------------------------
    def as_dict(self, top: int = 10) -> Dict[str, Any]:
        """JSON-friendly summary (the manifest's ``profile`` section).

        Carries the aggregate hot-function table and the per-span
        breakdown, *not* every raw stack — the collapsed file is the
        full-resolution artifact (see :meth:`write_collapsed`).
        """
        return {
            "samples": self.samples,
            "distinct_stacks": len(self.stacks),
            "hot_functions": self.hot_functions(top=top),
            "spans": self.span_table(top=top),
        }

    @classmethod
    def from_collapsed(cls, lines: List[str]) -> "ProfileData":
        """Rebuild a profile from collapsed-stack lines.

        Inverse of :meth:`collapsed` (synthetic ``span:`` root frames
        fold back into the span path), so profiles round-trip through
        the artifact format and worker profiles can be merged offline.
        """
        data = cls()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            frames_text, _, count_text = line.rpartition(" ")
            if not frames_text or not count_text.isdigit():
                raise ValueError(
                    f"line {lineno}: not a collapsed stack: {line!r}")
            frames = frames_text.split(";")
            span_parts: List[str] = []
            while frames and frames[0].startswith("span:"):
                span_parts.append(frames.pop(0)[len("span:"):])
            if frames == ["<unknown>"]:
                frames = []
            data.add("/".join(span_parts), tuple(frames),
                     int(count_text))
        return data

    def write_collapsed(self, path: str) -> str:
        """Write the collapsed-stack artifact; returns the path."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.collapsed():
                fh.write(line + "\n")
        return path


class SamplingProfiler:
    """Samples one thread's stack on a fixed interval, span-attributed.

    Args:
        tracer: the run's span tracer; each sample is attributed to
            ``tracer.current_path()``.  ``None`` files every sample
            under the empty path.
        interval: seconds between samples (default
            :data:`DEFAULT_INTERVAL`; the ``REPRO_PROFILE_INTERVAL``
            environment variable overrides when set).
        clock: monotonic time source (injectable for tests).
        max_depth: stack-depth cap per sample.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    The profiled thread is the one that *constructs* the profiler —
    the placement pipeline runs where the profiler is created, while
    the sampler itself runs on a daemon thread that never touches
    placement state.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 interval: Optional[float] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 max_depth: int = 64) -> None:
        if interval is None:
            raw = os.environ.get("REPRO_PROFILE_INTERVAL", "").strip()
            interval = float(raw) if raw else DEFAULT_INTERVAL
        if interval <= 0:
            raise ValueError(f"sample interval must be positive: "
                             f"{interval}")
        self.tracer = tracer
        self.interval = float(interval)
        self.clock = clock
        self.max_depth = int(max_depth)
        self.data = ProfileData()
        self._target_ident = threading.get_ident()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self.wall_seconds = 0.0

    # -- sampling ------------------------------------------------------
    def sample_once(self, frame: Optional[FrameType] = None) -> None:
        """Take one sample (of ``frame``, or the profiled thread).

        Tests call this directly with a synthetic frame; the sampler
        thread calls it on every tick.  A missing target thread (it
        exited) is a silent no-op.
        """
        if frame is None:
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                return
        span_path = self.tracer.current_path() \
            if self.tracer is not None else ""
        self.data.add(span_path, stack_of(frame, self.max_depth))

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the sampler thread (idempotent)."""
        if self._thread is not None:
            return
        self._started_at = self.clock()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread and record the profiled wall time."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self.wall_seconds += self.clock() - self._started_at

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.stop()

    # -- reporting -----------------------------------------------------
    def summary(self, top: int = 10) -> Dict[str, Any]:
        """The manifest ``profile`` section for this run."""
        document = self.data.as_dict(top=top)
        document["interval_seconds"] = self.interval
        document["wall_seconds"] = self.wall_seconds
        return document
