"""Committed perf ledger: append bench results, watch for regressions.

The scaling benchmark (``benchmarks/bench_scaling.py``) produces a
point-in-time measurement; this module turns those points into a
*trajectory*.  ``repro obs history --append`` converts a bench
measurement JSON into one ledger entry (flat ``{metric: value}``
rows) and appends it to a committed JSONL file
(``benchmarks/results/ledger.jsonl``); ``repro obs history --check``
compares the newest entry against a rolling-median baseline of the
previous entries and exits nonzero when any watched metric regressed
beyond its budget.

Ledger entries are one JSON object per line::

    {"kind": "repro.bench.entry", "recorded_unix": ..., "label": ...,
     "commit": ..., "metrics": {"wall_seconds/0.05": 1.52, ...}}

All ledger metrics are *higher-is-worse* (seconds, bytes): the
regression test is one-sided.  The rolling **median** (not mean) keeps
a single noisy CI run from poisoning the baseline, and a short window
keeps the baseline tracking genuine drift instead of freezing at the
seed entry forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.clock import wall_time

__all__ = ["LEDGER_KIND", "Regression", "append_entry",
           "check_latest", "entry_from_measurement", "load_ledger",
           "render_history"]

LEDGER_KIND = "repro.bench.entry"

#: Entries the rolling baseline looks back over.
DEFAULT_WINDOW = 5

#: Allowed increase over the rolling median, percent.  Wall-clock
#: benches on shared CI runners are noisy; 20 % catches real
#: complexity regressions without flaking on scheduler jitter.
DEFAULT_THRESHOLD_PCT = 20.0


@dataclass(frozen=True)
class Regression:
    """One ledger metric that exceeded its budget.

    Attributes:
        metric: flat metric name (``wall_seconds/0.05`` …).
        baseline: rolling-median value over the window.
        value: the latest entry's value.
        pct: percent increase of ``value`` over ``baseline``.
    """

    metric: str
    baseline: float
    value: float
    pct: float


def _flatten_metrics(measurement: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a bench measurement into ledger ``{metric: value}`` rows.

    Understands the ``BENCH_scaling.json`` measurement shape
    (``placement`` per-scale entries, ``rebuild``, ``solve_powers``,
    ``thermal_fidelity``, ``service_cache``, ``large_instances``
    per-row entries); unknown top-level numeric fields are kept
    under their own name so future bench sections ride along without a
    schema change here.
    """
    metrics: Dict[str, float] = {}
    placement = measurement.get("placement")
    if isinstance(placement, Mapping):
        for scale, entry in sorted(placement.items()):
            if not isinstance(entry, Mapping):
                continue
            for key in ("wall_seconds", "peak_rss_bytes"):
                value = entry.get(key)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    metrics[f"{key}/{scale}"] = float(value)
    rebuild = measurement.get("rebuild")
    if isinstance(rebuild, Mapping) \
            and isinstance(rebuild.get("seconds"), (int, float)):
        metrics["rebuild_seconds"] = float(rebuild["seconds"])
    solve = measurement.get("solve_powers")
    if isinstance(solve, Mapping) \
            and isinstance(solve.get("repeat_seconds"), (int, float)):
        metrics["solve_powers_repeat_seconds"] = float(
            solve["repeat_seconds"])
    thermal = measurement.get("thermal_fidelity")
    if isinstance(thermal, Mapping):
        for key in ("exact_eval_seconds", "surrogate_eval_seconds",
                    "calibration_seconds"):
            value = thermal.get(key)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                metrics[f"thermal/{key}"] = float(value)
    service = measurement.get("service_cache")
    if isinstance(service, Mapping):
        # only the two "lower is better" latencies; the speedup ratio
        # would read an *improvement* as a one-sided regression
        for key in ("cold_seconds", "hit_seconds"):
            value = service.get(key)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                metrics[f"service_cache/{key}"] = float(value)
    large = measurement.get("large_instances")
    if isinstance(large, Mapping):
        rows = large.get("rows")
        if isinstance(rows, Mapping):
            for label, row in sorted(rows.items()):
                if not isinstance(row, Mapping):
                    continue
                for key in ("wall_seconds", "peak_rss_bytes",
                            "dispatch_bytes"):
                    value = row.get(key)
                    if isinstance(value, (int, float)) \
                            and not isinstance(value, bool):
                        metrics[f"large/{key}/{label}"] = float(value)
        streaming = large.get("bookshelf_streaming")
        if isinstance(streaming, Mapping) \
                and isinstance(streaming.get("streaming"), Mapping):
            probe = streaming["streaming"]
            for key in ("parse_seconds", "peak_rss_bytes"):
                value = probe.get(key)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    metrics[f"large/bookshelf_{key}"] = float(value)
    for key, value in measurement.items():
        if key in ("placement", "rebuild", "solve_powers",
                   "thermal_fidelity", "service_cache",
                   "large_instances"):
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = float(value)
    return metrics


def entry_from_measurement(measurement: Mapping[str, Any], label: str,
                           commit: Optional[str] = None,
                           recorded_unix: Optional[float] = None,
                           ) -> Dict[str, Any]:
    """Build one ledger entry from a bench measurement dict.

    Accepts either a bare measurement or a merged bench document
    (``{"before": ..., "after": ...}``) — the ``after`` block wins,
    matching how ``bench_scaling.py --baseline`` writes its output.

    Raises:
        ValueError: when no numeric metrics can be extracted.
    """
    after = measurement.get("after")
    if isinstance(after, Mapping):
        measurement = after
    metrics = _flatten_metrics(measurement)
    if not metrics:
        raise ValueError("measurement contains no ledger metrics")
    entry: Dict[str, Any] = {
        "kind": LEDGER_KIND,
        "recorded_unix": round(
            wall_time() if recorded_unix is None else recorded_unix, 3),
        "label": str(label),
        "metrics": metrics,
    }
    if commit:
        entry["commit"] = str(commit)
    return entry


def load_ledger(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a JSONL ledger, oldest entry first.

    Blank lines are skipped; a malformed line or a non-ledger object
    raises ``ValueError`` with its line number — a committed ledger
    that does not parse should fail loudly, not shrink silently.
    """
    entries: List[Dict[str, Any]] = []
    ledger_path = Path(path)
    if not ledger_path.exists():
        return entries
    with open(ledger_path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{ledger_path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(obj, dict) \
                    or obj.get("kind") != LEDGER_KIND \
                    or not isinstance(obj.get("metrics"), dict):
                raise ValueError(
                    f"{ledger_path}:{lineno}: not a {LEDGER_KIND} entry")
            entries.append(obj)
    return entries


def append_entry(path: Union[str, Path],
                 entry: Mapping[str, Any]) -> None:
    """Append one entry to the ledger (creating parents as needed)."""
    ledger_path = Path(path)
    ledger_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ledger_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(dict(entry), sort_keys=True) + "\n")


def check_latest(entries: List[Dict[str, Any]],
                 window: int = DEFAULT_WINDOW,
                 threshold_pct: float = DEFAULT_THRESHOLD_PCT,
                 ) -> List[Regression]:
    """Compare the newest entry against the rolling-median baseline.

    For each metric in the latest entry, the baseline is the median of
    that metric over up to ``window`` *preceding* entries; metrics
    with no history are new and pass.  With fewer than two entries
    there is nothing to compare, so the check passes.

    Returns:
        Regressions (empty when within budget), sorted by metric name.
    """
    if len(entries) < 2:
        return []
    latest = entries[-1]
    lookback = entries[max(0, len(entries) - 1 - window):-1]
    regressions: List[Regression] = []
    for metric, value in sorted(latest.get("metrics", {}).items()):
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            continue
        past = [e["metrics"][metric] for e in lookback
                if isinstance(e.get("metrics", {}).get(metric),
                              (int, float))
                and not isinstance(e["metrics"][metric], bool)]
        if not past:
            continue
        baseline = float(median(past))
        if baseline <= 0:
            continue
        pct = 100.0 * (float(value) / baseline - 1.0)
        if pct > threshold_pct:
            regressions.append(Regression(
                metric=metric, baseline=baseline,
                value=float(value), pct=pct))
    return regressions


def render_history(entries: List[Dict[str, Any]],
                   metric: Optional[str] = None) -> str:
    """Text view of the ledger.

    Without ``metric``: one row per entry (label, #metrics, commit).
    With ``metric``: that metric's trajectory across entries.
    """
    if not entries:
        return "ledger is empty"
    lines: List[str] = []
    if metric is None:
        lines.append(f"{'#':>3s}  {'label':<28s}{'metrics':>8s}  commit")
        for i, entry in enumerate(entries):
            commit = str(entry.get("commit", "-"))[:12]
            lines.append(
                f"{i:>3d}  {str(entry.get('label', '?')):<28s}"
                f"{len(entry.get('metrics', {})):>8d}  {commit}")
        return "\n".join(lines)
    lines.append(f"{'#':>3s}  {'label':<28s}{metric:>20s}")
    for i, entry in enumerate(entries):
        value = entry.get("metrics", {}).get(metric)
        shown = "n/a" if not isinstance(value, (int, float)) \
            or isinstance(value, bool) else f"{float(value):.6g}"
        lines.append(f"{i:>3d}  {str(entry.get('label', '?')):<28s}"
                     f"{shown:>20s}")
    return "\n".join(lines)
