"""Run-to-run comparison of manifests and telemetry documents.

``repro obs diff A B`` answers the question every optimisation PR and
every head-to-head (bisection vs analytical global placement) has to
answer honestly: *did wall time, memory or quality regress, and by how
much?*  The comparison is threshold-gated per metric family —

- **wall**: ``result.wall_seconds`` (and per-stage breakdowns,
  reported but not gated — stage noise is much larger than total
  noise);
- **rss**: the ``resources/peak_rss_bytes`` gauge / ``resources``
  manifest section;
- **quality**: objective, wirelength, ILV count and peak temperature.

A metric missing on either side is reported as ``n/a`` and never
counts as a regression (older manifests predate the resources
section); a metric whose increase exceeds its family threshold is a
:class:`MetricDelta` with ``regressed=True``, and the CLI exits
nonzero when any exists.

Documents may be run manifests (``kind: repro.placement.run``) or raw
telemetry snapshots (the ``{"spans", "counters", "gauges", ...}``
shape ``Recorder.snapshot`` serialises to); the extractor sniffs the
shape instead of demanding one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = ["DiffThresholds", "MetricDelta", "diff_documents",
           "diff_files", "extract_metrics", "has_regressions",
           "render_diff"]


@dataclass(frozen=True)
class DiffThresholds:
    """Per-family regression budgets, percent increase over ``A``.

    Attributes:
        wall_pct: allowed wall-time increase (noisy; default 10 %).
        rss_pct: allowed peak-RSS increase.
        quality_pct: allowed objective/wirelength/ILV/temperature
            increase (tight; quality is deterministic per seed).
    """

    wall_pct: float = 10.0
    rss_pct: float = 10.0
    quality_pct: float = 1.0


#: metric name -> threshold family.  Metrics outside this table are
#: informational (reported, never gated).
_GATED_FAMILIES: Dict[str, str] = {
    "wall_seconds": "wall",
    "peak_rss_bytes": "rss",
    "objective": "quality",
    "wirelength": "quality",
    "ilv": "quality",
    "peak_temperature": "quality",
}


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric.

    Attributes:
        name: metric name (``wall_seconds``, ``stage/global`` …).
        before: value in document A (``None`` when absent).
        after: value in document B (``None`` when absent).
        pct: percent change B vs A (``None`` when not computable).
        threshold_pct: gating budget (``None`` for informational rows).
        regressed: ``pct`` exceeds ``threshold_pct``.
    """

    name: str
    before: Optional[float]
    after: Optional[float]
    pct: Optional[float]
    threshold_pct: Optional[float]
    regressed: bool


def _as_float(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def extract_metrics(document: Mapping[str, Any]) -> Dict[str, float]:
    """Pull the comparable metrics out of a manifest or telemetry doc.

    Returns:
        ``{metric_name: value}``; gated metrics use the names in the
        family table, per-stage wall times appear as
        ``stage/<path>`` informational rows.
    """
    metrics: Dict[str, float] = {}
    result = document.get("result")
    if isinstance(result, Mapping):
        for key in ("wall_seconds", "objective", "wirelength", "ilv",
                    "peak_temperature"):
            value = _as_float(result.get(key))
            if value is not None:
                metrics[key] = value
    elif "wall_seconds" in document:
        # raw Telemetry snapshot
        value = _as_float(document.get("wall_seconds"))
        if value is not None:
            metrics["wall_seconds"] = value
    resources = document.get("resources")
    if isinstance(resources, Mapping):
        value = _as_float(resources.get("peak_rss_bytes"))
        if value is not None and value > 0:
            metrics["peak_rss_bytes"] = value
    if "peak_rss_bytes" not in metrics:
        gauges = document.get("gauges")
        if isinstance(gauges, Mapping):
            value = _as_float(gauges.get("resources/peak_rss_bytes"))
            if value is not None and value > 0:
                metrics["peak_rss_bytes"] = value
    stages = document.get("stages")
    if isinstance(stages, list):
        for row in stages:
            if not isinstance(row, Mapping):
                continue
            path, seconds = row.get("path"), _as_float(
                row.get("seconds"))
            if isinstance(path, str) and "/" not in path \
                    and seconds is not None:
                metrics[f"stage/{path}"] = seconds
    return metrics


def _threshold_for(name: str,
                   thresholds: DiffThresholds) -> Optional[float]:
    family = _GATED_FAMILIES.get(name)
    if family == "wall":
        return thresholds.wall_pct
    if family == "rss":
        return thresholds.rss_pct
    if family == "quality":
        return thresholds.quality_pct
    return None


def diff_documents(before: Mapping[str, Any], after: Mapping[str, Any],
                   thresholds: Optional[DiffThresholds] = None,
                   ) -> List[MetricDelta]:
    """Compare two documents metric by metric.

    Returns:
        Deltas in stable order: gated metrics first (family-table
        order), then informational rows alphabetically.  Metrics
        present on only one side yield a delta with ``pct=None`` that
        never regresses.
    """
    thresholds = thresholds or DiffThresholds()
    a = extract_metrics(before)
    b = extract_metrics(after)
    names = list(_GATED_FAMILIES)
    names.extend(sorted((set(a) | set(b)) - set(names)))
    deltas: List[MetricDelta] = []
    for name in names:
        va, vb = a.get(name), b.get(name)
        if va is None and vb is None:
            continue
        pct: Optional[float] = None
        if va is not None and vb is not None and va > 0:
            pct = 100.0 * (vb / va - 1.0)
        threshold = _threshold_for(name, thresholds)
        regressed = (pct is not None and threshold is not None
                     and pct > threshold)
        deltas.append(MetricDelta(name=name, before=va, after=vb,
                                  pct=pct, threshold_pct=threshold,
                                  regressed=regressed))
    return deltas


def diff_files(path_a: Union[str, Path], path_b: Union[str, Path],
               thresholds: Optional[DiffThresholds] = None,
               ) -> List[MetricDelta]:
    """Load two JSON documents and compare them."""
    with open(str(path_a), "r", encoding="utf-8") as fh:
        before = json.load(fh)
    with open(str(path_b), "r", encoding="utf-8") as fh:
        after = json.load(fh)
    if not isinstance(before, dict) or not isinstance(after, dict):
        raise ValueError("diff inputs must be JSON objects")
    return diff_documents(before, after, thresholds)


def has_regressions(deltas: List[MetricDelta]) -> bool:
    """Whether any compared metric exceeded its budget."""
    return any(d.regressed for d in deltas)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if abs(value) >= 1e6 and float(value).is_integer():
        return f"{value:.4g}"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.6g}"


def render_diff(deltas: List[MetricDelta],
                label_a: str = "A", label_b: str = "B") -> str:
    """Readable comparison table with a one-line verdict at the end."""
    lines = [f"{'metric':<24s}{label_a:>14s}{label_b:>14s}"
             f"{'delta':>10s}  {'budget':>8s}  verdict"]
    for d in deltas:
        pct = "n/a" if d.pct is None else f"{d.pct:+.1f}%"
        budget = "-" if d.threshold_pct is None \
            else f"{d.threshold_pct:.0f}%"
        verdict = "REGRESSED" if d.regressed else (
            "ok" if d.threshold_pct is not None else "info")
        lines.append(f"{d.name:<24s}{_fmt(d.before):>14s}"
                     f"{_fmt(d.after):>14s}{pct:>10s}  {budget:>8s}"
                     f"  {verdict}")
    regressions = [d.name for d in deltas if d.regressed]
    if regressions:
        lines.append(f"REGRESSION: {', '.join(regressions)} "
                     f"exceeded budget")
    else:
        lines.append("no regressions within budget")
    return "\n".join(lines)
