"""Wall-clock access for the rest of the pipeline.

``repro.obs`` owns every clock read (linter rules RPL009/RPL013):
placement code that needs a timestamp — checkpoint metadata, manifest
stamps — calls :func:`wall_time` instead of ``time.time()`` so the
single wall-clock touchpoint stays in the observability layer, where
tests can see (and audits can grep) every source of nondeterminism.
"""

from __future__ import annotations

import time

__all__ = ["wall_time"]


def wall_time() -> float:
    """Seconds since the Unix epoch (``time.time()``).

    Wall-clock values are observability metadata only: nothing derived
    from them may feed back into placement state (the determinism pass
    RPA102 enforces this for everything reachable from the pipeline).
    """
    return time.time()
