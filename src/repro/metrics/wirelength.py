"""Wirelength and interlayer-via metrics.

The paper's objective (Eq. 1/3) uses bounding-box (HPWL) wirelength for
the lateral dimensions and counts one interlayer via per layer boundary
the net's bounding box crosses: a net spanning layers ``zmin..zmax``
needs ``zmax - zmin`` vias.  TRR (virtual) nets are always excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bbox import BBox3D
from repro.netlist.net import Net
from repro.netlist.placement import Placement


@dataclass
class NetMetrics:
    """Per-net geometry arrays, indexed by net id.

    TRR nets get all-zero entries so the arrays stay aligned with
    ``netlist.nets``.

    Attributes:
        wl_x, wl_y: bounding-box extents per net, metres.
        ilv: interlayer-via count per net (layer span).
    """

    wl_x: np.ndarray
    wl_y: np.ndarray
    ilv: np.ndarray

    @property
    def wl(self) -> np.ndarray:
        """Lateral HPWL per net, metres."""
        return self.wl_x + self.wl_y

    @property
    def total_wl(self) -> float:
        """Total lateral HPWL, metres."""
        return float(self.wl.sum())

    @property
    def total_ilv(self) -> int:
        """Total interlayer-via count."""
        return int(self.ilv.sum())


def net_bbox(placement: Placement, net: Net) -> BBox3D:
    """Bounding box of a net's pins."""
    ids = net.unique_cell_ids
    xs = placement.x[ids]
    ys = placement.y[ids]
    zs = placement.z[ids]
    return BBox3D(float(xs.min()), float(xs.max()),
                  float(ys.min()), float(ys.max()),
                  int(zs.min()), int(zs.max()))


def compute_net_metrics(placement: Placement) -> NetMetrics:
    """Bounding-box extents and via counts for every net.

    Uses plain-Python min/max over each net's pins — the nets are tiny
    (2-4 pins typically) and this is several times faster than per-net
    NumPy reductions.
    """
    netlist = placement.netlist
    m = netlist.num_nets
    wl_x = np.zeros(m)
    wl_y = np.zeros(m)
    ilv = np.zeros(m, dtype=np.int64)
    xs = placement.x.tolist()
    ys = placement.y.tolist()
    zs = placement.z.tolist()
    for net in netlist.nets:
        if net.is_trr:
            continue
        ids = net.unique_cell_ids
        nx = [xs[c] for c in ids]
        ny = [ys[c] for c in ids]
        nz = [zs[c] for c in ids]
        wl_x[net.id] = max(nx) - min(nx)
        wl_y[net.id] = max(ny) - min(ny)
        ilv[net.id] = max(nz) - min(nz)
    return NetMetrics(wl_x=wl_x, wl_y=wl_y, ilv=ilv)


def total_hpwl(placement: Placement) -> float:
    """Total lateral HPWL over signal nets, metres."""
    return compute_net_metrics(placement).total_wl


def total_ilv(placement: Placement) -> int:
    """Total interlayer-via count over signal nets."""
    return compute_net_metrics(placement).total_ilv


def ilv_density_per_interlayer(placement: Placement,
                               total_vias: int = None) -> float:
    """Interlayer-via density per interlayer, vias per square metre.

    This is the y-axis of the paper's Figures 3-4: total via count spread
    over the ``num_layers - 1`` via interfaces, divided by the die
    footprint.  Returns 0 for single-layer (2D) chips, which have no via
    interfaces.
    """
    interfaces = placement.chip.num_layers - 1
    if interfaces == 0:
        return 0.0
    if total_vias is None:
        total_vias = total_ilv(placement)
    return total_vias / interfaces / placement.chip.footprint_area
