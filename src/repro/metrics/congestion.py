"""Routing-congestion estimation from a placement.

Placement tools report congestion estimates alongside wirelength; this
module provides the classic probabilistic bounding-box model: each net
spreads one unit of horizontal demand and one of vertical demand
uniformly over its bounding box, and per-bin demand is compared with the
routing capacity implied by the die size.  Interlayer-via demand is
accumulated per lateral bin the same way, giving the local via-density
map that the paper's fabrication limit (Section 1) constrains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.wirelength import NetMetrics, compute_net_metrics
from repro.netlist.placement import Placement


@dataclass
class CongestionMap:
    """Estimated routing demand over a lateral grid.

    Attributes:
        horizontal: net-crossing demand per bin (x-direction wires),
            shape ``(nx, ny)``.
        vertical: same for y-direction wires.
        via: interlayer-via demand per lateral bin, shape ``(nx, ny)``.
        nx, ny: grid resolution.
    """

    horizontal: np.ndarray
    vertical: np.ndarray
    via: np.ndarray
    nx: int
    ny: int

    @property
    def total(self) -> np.ndarray:
        """Combined wire demand per bin."""
        return self.horizontal + self.vertical

    @property
    def peak_to_average(self) -> float:
        """Peak wire demand over mean demand — 1.0 is perfectly even."""
        total = self.total
        mean = float(total.mean())
        if mean == 0:
            return 1.0
        return float(total.max()) / mean

    @property
    def peak_via_density(self) -> float:
        """Largest per-bin via demand (vias per bin)."""
        return float(self.via.max())


def estimate_congestion(placement: Placement, nx: int = 16,
                        ny: Optional[int] = None,
                        metrics: Optional[NetMetrics] = None
                        ) -> CongestionMap:
    """Probabilistic bounding-box congestion estimate.

    Each signal net contributes one horizontal and one vertical track
    spread uniformly over its bounding box (plus its via count spread
    over the box laterally).  Degenerate (point) boxes deposit into the
    single bin under them.

    Args:
        placement: the placement to analyze.
        nx: horizontal grid resolution; ``ny`` defaults to the value
            preserving square-ish bins.
    """
    chip = placement.chip
    if ny is None:
        ny = max(1, int(round(nx * chip.height / chip.width)))
    horizontal = np.zeros((nx, ny))
    vertical = np.zeros((nx, ny))
    via = np.zeros((nx, ny))
    bin_w = chip.width / nx
    bin_h = chip.height / ny

    xs = placement.x
    ys = placement.y
    zs = placement.z
    for net in placement.netlist.nets:
        if net.is_trr:
            continue
        ids = net.unique_cell_ids
        if len(ids) < 2:
            continue
        x_lo = float(xs[ids].min())
        x_hi = float(xs[ids].max())
        y_lo = float(ys[ids].min())
        y_hi = float(ys[ids].max())
        n_via = int(zs[ids].max() - zs[ids].min())
        i_lo = min(max(int(x_lo / bin_w), 0), nx - 1)
        i_hi = min(max(int(x_hi / bin_w), 0), nx - 1)
        j_lo = min(max(int(y_lo / bin_h), 0), ny - 1)
        j_hi = min(max(int(y_hi / bin_h), 0), ny - 1)
        n_bins = (i_hi - i_lo + 1) * (j_hi - j_lo + 1)
        share = 1.0 / n_bins
        horizontal[i_lo:i_hi + 1, j_lo:j_hi + 1] += share
        vertical[i_lo:i_hi + 1, j_lo:j_hi + 1] += share
        if n_via:
            via[i_lo:i_hi + 1, j_lo:j_hi + 1] += n_via * share
    return CongestionMap(horizontal=horizontal, vertical=vertical,
                         via=via, nx=nx, ny=ny)
