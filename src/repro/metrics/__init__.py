"""Placement quality metrics: wirelength, interlayer vias, reports."""

from repro.metrics.wirelength import (
    NetMetrics,
    compute_net_metrics,
    ilv_density_per_interlayer,
    net_bbox,
    total_hpwl,
    total_ilv,
)
from repro.metrics.report import PlacementReport, evaluate_placement
from repro.metrics.congestion import CongestionMap, estimate_congestion

__all__ = [
    "CongestionMap",
    "estimate_congestion",
    "NetMetrics",
    "compute_net_metrics",
    "ilv_density_per_interlayer",
    "net_bbox",
    "total_hpwl",
    "total_ilv",
    "PlacementReport",
    "evaluate_placement",
]
