"""Alternative net-length models: star, clique, spanning tree.

The placer's objective uses the bounding-box (HPWL) model — the paper's
Eq. 1 — but routed wirelength correlates differently per net degree, so
placement studies routinely report several estimators side by side:

- **HPWL** — half-perimeter of the pin bounding box; exact for 2-3 pin
  nets, optimistic for large fan-out.
- **Star** — sum of Manhattan distances from each pin to the net's
  centroid; the quadratic-placement-friendly model.
- **Clique** — average pairwise Manhattan distance (each of the
  ``k(k-1)/2`` pin pairs weighted ``1/(k-1)``), the classic quadratic
  net model's linear analogue.
- **RSMT estimate** — HPWL scaled by the Chung–Hwang expected
  rectilinear-Steiner-tree factor for the net's pin count.

All models add the via span times the given via pitch so 3D lengths are
comparable across models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist.placement import Placement

#: Chung & Hwang style expected RSMT / HPWL ratios by pin count
#: (2-15 pins; larger nets extrapolate with sqrt growth).
_RSMT_FACTORS = {
    2: 1.00, 3: 1.08, 4: 1.15, 5: 1.22, 6: 1.28, 7: 1.34, 8: 1.40,
    9: 1.45, 10: 1.50, 11: 1.55, 12: 1.59, 13: 1.63, 14: 1.67,
    15: 1.71,
}


@dataclass
class NetLengthReport:
    """Total net length under each model, metres.

    Attributes:
        hpwl: bounding-box half-perimeter total.
        star: pin-to-centroid total.
        clique: weighted pairwise total.
        rsmt: Steiner-estimate total.
    """

    hpwl: float
    star: float
    clique: float
    rsmt: float


def rsmt_factor(degree: int) -> float:
    """Expected RSMT/HPWL ratio for a net with ``degree`` pins."""
    if degree <= 2:
        return 1.0
    if degree in _RSMT_FACTORS:
        return _RSMT_FACTORS[degree]
    # sqrt extrapolation anchored at 15 pins
    return _RSMT_FACTORS[15] * (degree / 15.0) ** 0.5


def compare_net_models(placement: Placement,
                       via_pitch: Optional[float] = None
                       ) -> NetLengthReport:
    """Total net length under all four models.

    Args:
        placement: the placement to measure.
        via_pitch: physical length charged per crossed layer boundary;
            defaults to the chip's layer pitch.
    """
    chip = placement.chip
    if via_pitch is None:
        via_pitch = chip.layer_pitch
    xs = placement.x
    ys = placement.y
    zs = placement.z
    hpwl = star = clique = rsmt = 0.0
    for net in placement.netlist.nets:
        if net.is_trr:
            continue
        ids = net.unique_cell_ids
        if len(ids) < 2:
            continue
        nx = xs[ids]
        ny = ys[ids]
        nz = zs[ids]
        via_len = float(nz.max() - nz.min()) * via_pitch
        box = float((nx.max() - nx.min()) + (ny.max() - ny.min()))
        hpwl += box + via_len
        rsmt += box * rsmt_factor(len(ids)) + via_len
        cx = float(nx.mean())
        cy = float(ny.mean())
        star += float(np.abs(nx - cx).sum() + np.abs(ny - cy).sum()) \
            + via_len
        k = len(ids)
        pair = 0.0
        for i in range(k):
            for j in range(i + 1, k):
                pair += abs(float(nx[i] - nx[j])) \
                    + abs(float(ny[i] - ny[j]))
        clique += pair / (k - 1) + via_len
    return NetLengthReport(hpwl=hpwl, star=star, clique=clique,
                           rsmt=rsmt)
