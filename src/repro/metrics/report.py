"""Combined placement quality reports.

``evaluate_placement`` is the one-call evaluation used by the examples
and the benchmark harnesses: wirelength, via counts/density, power and
(optionally) a full thermal solve, in one dataclass that prints as the
row format the paper's figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.metrics.wirelength import (
    compute_net_metrics,
    ilv_density_per_interlayer,
)
from repro.netlist.placement import Placement
from repro.technology import TechnologyConfig


@dataclass
class PlacementReport:
    """Quality summary of one placement.

    Attributes:
        name: netlist name.
        num_cells: movable cell count.
        wirelength: total lateral HPWL, metres.
        ilv: total interlayer-via count.
        ilv_per_interlayer: via count divided by the number of via
            interfaces (the per-interlayer count of Figure 5).
        ilv_density: vias per interlayer per square metre (Figures 3-4).
        total_power: dynamic power, watts (0 when thermal evaluation is
            skipped).
        average_temperature: mean cell temperature above ambient, kelvin
            (0 when skipped).
        max_temperature: hottest cell, kelvin above ambient (0 when
            skipped).
        runtime_seconds: caller-supplied placement runtime (optional).
        stage_seconds: caller-supplied per-stage wall times (optional;
            rendered by :meth:`breakdown`).
    """

    name: str
    num_cells: int
    wirelength: float
    ilv: int
    ilv_per_interlayer: float
    ilv_density: float
    total_power: float = 0.0
    average_temperature: float = 0.0
    max_temperature: float = 0.0
    runtime_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def breakdown(self) -> str:
        """Per-stage timing lines (empty string when not supplied)."""
        if not self.stage_seconds:
            return ""
        total = sum(self.stage_seconds.values())
        lines = []
        for stage, seconds in self.stage_seconds.items():
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {stage:<16s}{seconds:>9.3f}s "
                         f"{share:>5.1f}%")
        return "\n".join(lines)

    def row(self) -> str:
        """One aligned text row (used by the benchmark harnesses)."""
        return (f"{self.name:<12} {self.num_cells:>8} "
                f"{self.wirelength:>11.4e} {self.ilv:>9} "
                f"{self.ilv_density:>11.4e} {self.total_power*1e3:>9.3f} "
                f"{self.average_temperature:>8.3f} "
                f"{self.max_temperature:>8.3f} "
                f"{self.runtime_seconds:>8.2f}")

    @staticmethod
    def header() -> str:
        """Column header matching :meth:`row`."""
        return (f"{'circuit':<12} {'cells':>8} {'WL_m':>11} "
                f"{'ILVs':>9} {'ILV/m^2':>11} {'P_mW':>9} "
                f"{'avgT':>8} {'maxT':>8} {'time_s':>8}")


def evaluate_placement(placement: Placement,
                       tech: Optional[TechnologyConfig] = None,
                       thermal: bool = True,
                       runtime_seconds: float = 0.0,
                       stage_seconds: Optional[Dict[str, float]] = None,
                       ) -> PlacementReport:
    """Evaluate a placement's wirelength, vias, power and temperatures.

    Args:
        placement: the placement to score.
        tech: technology parameters (defaults to Table 2).
        thermal: run the power model and full-chip thermal solve; set
            False for wirelength-only sweeps (much faster).
        runtime_seconds: recorded into the report verbatim.
        stage_seconds: per-stage wall times, recorded verbatim.
    """
    tech = tech or TechnologyConfig()
    metrics = compute_net_metrics(placement)
    total_ilv = metrics.total_ilv
    interfaces = max(placement.chip.num_layers - 1, 1)
    report = PlacementReport(
        name=placement.netlist.name,
        num_cells=placement.netlist.num_movable,
        wirelength=metrics.total_wl,
        ilv=total_ilv,
        ilv_per_interlayer=total_ilv / interfaces,
        ilv_density=ilv_density_per_interlayer(placement, total_ilv),
        runtime_seconds=runtime_seconds,
        stage_seconds=dict(stage_seconds or {}),
    )
    if thermal:
        # imported here: repro.thermal itself builds on repro.metrics
        from repro.thermal.analysis import analyze_placement
        summary = analyze_placement(placement, tech, metrics=metrics)
        report.total_power = summary.total_power
        report.average_temperature = summary.average_temperature
        report.max_temperature = summary.max_temperature
    return report
