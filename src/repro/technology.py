"""Process / technology parameters (Table 2 of the paper).

All values default to the paper's experimental setup: MIT Lincoln Labs'
0.18 um 3D FD-SOI stack [17][18] for the vertical dimensions and thermal
conductivity, capacitances from [19], a 100 nm technology node, and a
forced-convection heat sink on the bottom of the bulk substrate.

Two electrical parameters the power model (Eq. 4) needs are not listed
in Table 2 — clock frequency and supply voltage.  We default to 2 GHz
and 1.2 V (typical for a 100 nm node); with the suite's switching
activities this lands average temperatures in the same few-to-tens-of-
kelvin-above-ambient range the paper's Figure 6 reports.  Both are
plain fields, so they can be overridden.

Temperatures throughout the library are measured *relative to ambient*
(the paper sets ambient to 0 C, so the numbers coincide).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TechnologyConfig:
    """Process and package parameters.

    Attributes (defaults = Table 2):
        technode: feature size, metres (informational).
        substrate_thickness: bulk substrate below layer 0, metres.
        layer_thickness: one active layer, metres.
        interlayer_thickness: bond/dielectric between layers, metres.
        thermal_conductivity: effective conductivity of the *active
            stack* (thin silicon layers + oxide bonds), W/(m K).
        substrate_conductivity: bulk silicon substrate, W/(m K).  Table 2
            lists only the effective stack value; using it for the 500 um
            substrate would make the substrate dominate every thermal
            path and erase the vertical sensitivity the paper's Figure 8
            demonstrates, so the substrate gets bulk silicon's
            conductivity.
        whitespace: fraction of row area left unfilled.
        inter_row_space: inter-row gap as a fraction of row height.
        cap_per_wirelength: lateral interconnect capacitance, F/m.
        cap_per_via_length: interlayer-via capacitance, F/m of via.
        input_pin_cap: input pin capacitance, F.
        ambient_temperature: heat-sink fluid temperature, degrees C
            (temperature *offsets* are what the models compute; this is
            only used when absolute values are printed).
        heat_sink_convection: convection coefficient at the heat-sink
            face, W/(m^2 K).
        substrate_in_thermal_path: whether the 500 um bulk substrate
            conducts between layer 0 and the heat sink.  The paper's FEA
            reference ([2], Goplen & Sapatnekar ICCAD'03) meshes the
            active stack and applies the convective heat-sink boundary at
            its bottom face; with the substrate in series the vertical
            resistance gradient collapses to ~1.4x and the 19-33%
            temperature reductions of Figures 8-9 become unreachable, so
            the default matches [2] (False).  Set True to study a
            package where the full substrate separates die and sink.
        secondary_convection: convection at the top and side faces,
            W/(m^2 K); tiny compared to the heat sink (natural
            convection), which is why heat sinking is primarily in -z.
        clock_frequency: Hz (assumption, see module docstring).
        vdd: supply voltage, volts (assumption).
        leakage_power_density: static power per unit cell area,
            W/m^2.  The paper notes "leakage power could be added to
            P_j^cell" (Section 3.2); zero (the default) reproduces the
            paper's dynamic-only model, a positive value adds an
            area-proportional static component that the TRR weights and
            the thermal term then see.
    """

    technode: float = 100e-9
    substrate_thickness: float = 500e-6
    layer_thickness: float = 5.7e-6
    interlayer_thickness: float = 0.7e-6
    thermal_conductivity: float = 10.2
    substrate_conductivity: float = 150.0
    whitespace: float = 0.05
    inter_row_space: float = 0.25
    cap_per_wirelength: float = 73.8e-12
    cap_per_via_length: float = 1480e-12
    input_pin_cap: float = 0.350e-15
    ambient_temperature: float = 0.0
    heat_sink_convection: float = 1e6
    substrate_in_thermal_path: bool = False
    secondary_convection: float = 10.0
    clock_frequency: float = 2e9
    vdd: float = 1.2
    leakage_power_density: float = 0.0

    def __post_init__(self) -> None:
        positives = {
            "substrate_thickness": self.substrate_thickness,
            "layer_thickness": self.layer_thickness,
            "thermal_conductivity": self.thermal_conductivity,
            "substrate_conductivity": self.substrate_conductivity,
            "heat_sink_convection": self.heat_sink_convection,
            "clock_frequency": self.clock_frequency,
            "vdd": self.vdd,
        }
        for name, value in positives.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.interlayer_thickness < 0:
            raise ValueError("interlayer_thickness cannot be negative")
        if not 0 <= self.whitespace < 1:
            raise ValueError("whitespace must be in [0, 1)")
        if self.leakage_power_density < 0:
            raise ValueError("leakage_power_density cannot be negative")

    @property
    def layer_pitch(self) -> float:
        """Vertical distance between adjacent active layers, metres."""
        return self.layer_thickness + self.interlayer_thickness

    @property
    def cap_per_via(self) -> float:
        """Capacitance of one interlayer via, farads.

        Table 2 gives via capacitance per metre of via.  An interlayer
        via connects the top metal of one layer to the next layer through
        the bonding dielectric, so its electrical length is the
        interlayer thickness (0.7 um), giving ~1 fF per via — a few input
        pins' worth, consistent with the paper's observation that via
        capacitance matters but does not dominate.
        """
        return self.cap_per_via_length * self.interlayer_thickness

    @property
    def switching_energy_scale(self) -> float:
        """``1/2 * f * Vdd^2`` — the prefactor of Eq. 4, W/F."""
        return 0.5 * self.clock_frequency * self.vdd ** 2
