"""Command-line interface: ``python -m repro <command>``.

Commands:
    place      place a suite benchmark or a Bookshelf design
    sweep      sweep the via coefficient and print the tradeoff curve
    suite      list the built-in benchmark profiles (Table 1)

Examples::

    python -m repro place --circuit ibm01 --scale 0.05 \
        --alpha-ilv 1e-5 --alpha-temp 1e-5 --layers 4 --out /tmp/out
    python -m repro place --bookshelf /path/to/design --layers 2
    python -m repro -v place --circuit ibm01 --scale 0.01 \
        --telemetry-out /tmp/run --trace
    python -m repro sweep --circuit ibm02 --scale 0.02 --points 5
    python -m repro suite

Verbosity: ``-v`` shows per-stage progress (INFO), ``-vv`` debug,
``-q`` errors only.  ``--telemetry-out PREFIX`` writes
``PREFIX.trace.jsonl`` (the JSONL event stream) and
``PREFIX.manifest.json`` (the schema-validated run manifest) next to
any ``--out`` artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import (
    Placer3D,
    PlacementConfig,
    PlacementReport,
    evaluate_placement,
    load_benchmark,
)
from repro import obs
from repro.netlist import bookshelf
from repro.netlist.suite import SUITE_PROFILES
from repro.obs import configure_cli_logging
from repro.thermal.power import PowerModel
from repro.metrics.wirelength import compute_net_metrics
from repro import viz


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal- and via-aware 3D IC placement "
                    "(Goplen & Sapatnekar, DAC 2007 reproduction)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="place one design")
    src = place.add_mutually_exclusive_group(required=True)
    src.add_argument("--circuit", help="suite benchmark name (ibm01..18)")
    src.add_argument("--bookshelf",
                     help="prefix of .nodes/.nets Bookshelf files")
    place.add_argument("--scale", type=float, default=0.05,
                       help="suite benchmark scale (default 0.05)")
    place.add_argument("--alpha-ilv", type=float, default=1e-5,
                       help="interlayer-via coefficient (default 1e-5)")
    place.add_argument("--alpha-temp", type=float, default=0.0,
                       help="thermal coefficient (default 0 = off)")
    place.add_argument("--layers", type=int, default=4,
                       help="active layers (default 4)")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--out", help="write <out>.pl with the result")
    place.add_argument("--maps", action="store_true",
                       help="print per-layer density/temperature maps")
    place.add_argument("--trace", action="store_true",
                       help="print the telemetry report (spans, "
                            "counters, series)")
    place.add_argument("--telemetry-out", metavar="PREFIX",
                       help="write PREFIX.trace.jsonl and "
                            "PREFIX.manifest.json")

    sweep = sub.add_parser("sweep",
                           help="alpha_ILV tradeoff sweep (Figure 3)")
    sweep.add_argument("--circuit", default="ibm01")
    sweep.add_argument("--scale", type=float, default=0.025)
    sweep.add_argument("--layers", type=int, default=4)
    sweep.add_argument("--points", type=int, default=6,
                       help="sweep points across 5e-9..5.2e-3")
    sweep.add_argument("--seed", type=int, default=0)

    sub.add_parser("suite", help="list benchmark profiles (Table 1)")
    return parser


def _cmd_place(args) -> int:
    if args.circuit:
        netlist = load_benchmark(args.circuit, scale=args.scale,
                                 seed=args.seed)
    else:
        netlist = bookshelf.read_bookshelf(args.bookshelf)
    config = PlacementConfig(alpha_ilv=args.alpha_ilv,
                             alpha_temp=args.alpha_temp,
                             num_layers=args.layers, seed=args.seed)
    print(f"placing {netlist.name}: {netlist.num_cells} cells, "
          f"{netlist.num_nets} nets, {args.layers} layers")
    recorder: Optional[obs.Recorder] = None
    trace_path: Optional[str] = None
    if args.trace or args.telemetry_out:
        sink = None
        if args.telemetry_out:
            trace_path = f"{args.telemetry_out}.trace.jsonl"
            sink = obs.EventSink(trace_path)
        recorder = obs.Recorder(sink=sink)
    result = Placer3D(netlist, config, recorder=recorder).run(check=True)
    if recorder is not None:
        recorder.close()
    report = evaluate_placement(result.placement, config.tech,
                                runtime_seconds=result.runtime_seconds,
                                stage_seconds=result.stage_seconds)
    print(PlacementReport.header())
    print(report.row())
    if args.trace and result.telemetry is not None:
        print()
        print(obs.render(result.telemetry, title=netlist.name))
    if args.maps:
        pm = PowerModel(netlist, config.tech)
        powers = pm.cell_powers(compute_net_metrics(result.placement))
        print()
        print(viz.layer_summary(result.placement, powers))
        for layer in range(config.num_layers):
            print()
            print(viz.density_map(result.placement, layer))
    if args.out:
        bookshelf.write_bookshelf(args.out, netlist, result.placement)
        print(f"wrote {args.out}.nodes/.nets/.pl")
    if args.telemetry_out:
        manifest = obs.build_manifest(
            netlist, config, result, trace_path=trace_path,
            peak_temperature=report.max_temperature)
        manifest_path = obs.write_manifest(
            f"{args.telemetry_out}.manifest.json", manifest)
        errors = obs.validate_manifest(manifest)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            print(f"manifest failed schema validation: {manifest_path}",
                  file=sys.stderr)
            return 1
        print(f"wrote {trace_path} and {manifest_path}")
    return 0


def _cmd_sweep(args) -> int:
    alphas = np.logspace(np.log10(5e-9), np.log10(5.2e-3), args.points)
    print(f"{'alpha_ILV':>10} {'WL (m)':>12} {'ILVs':>8} "
          f"{'ILV density':>12}")
    points = []
    for alpha in alphas:
        netlist = load_benchmark(args.circuit, scale=args.scale,
                                 seed=args.seed)
        config = PlacementConfig(alpha_ilv=float(alpha), alpha_temp=0.0,
                                 num_layers=args.layers, seed=args.seed)
        result = Placer3D(netlist, config).run()
        report = evaluate_placement(result.placement, config.tech,
                                    thermal=False)
        points.append((report.wirelength, report.ilv))
        print(f"{alpha:>10.1e} {report.wirelength:>12.5e} "
              f"{report.ilv:>8} {report.ilv_density:>12.4e}")
    print()
    print(viz.tradeoff_ascii(points))
    return 0


def _cmd_suite() -> int:
    print(f"{'name':<8} {'cells':>8} {'area (mm^2)':>12}")
    for profile in SUITE_PROFILES.values():
        print(f"{profile.name:<8} {profile.cells:>8} "
              f"{profile.area_mm2:>12.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    configure_cli_logging(args.verbose - args.quiet)
    if args.command == "place":
        return _cmd_place(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "suite":
        return _cmd_suite()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
