"""Command-line interface: ``python -m repro <command>``.

Commands:
    place        place a suite benchmark or a Bookshelf design
    sweep        sweep the via coefficient and print the tradeoff curve
    suite        list the built-in benchmark profiles (Table 1)
    config-dump  print the effective placement config as JSON
    obs          observability tools: report / diff / history
    serve        run the placement job engine on a unix socket
    job          client for a running server: submit / status / list /
                 cancel / resume / result

Placement as a service::

    python -m repro serve --jobs-dir /tmp/jobs --socket /tmp/repro.sock
    python -m repro job submit --socket /tmp/repro.sock \
        --circuit ibm01 --scale 0.05 --wait   # resubmit = cache hit
    python -m repro job list --socket /tmp/repro.sock

``place`` and ``sweep`` go through the same engine in-process:
``--jobs-dir``/``--cache-dir`` persist the job spool and the
content-addressed result cache across runs, so an already-placed
``(config, spec, netlist)`` triple short-circuits to a cache hit.

Profiling and perf watch::

    python -m repro place --circuit ibm01 --scale 0.025 --profile \
        --telemetry-out /tmp/run
    python -m repro obs report /tmp/run.manifest.json
    python -m repro obs diff baseline.manifest.json run.manifest.json
    python -m repro obs history --append BENCH_scaling.json \
        --label nightly && python -m repro obs history --check

Examples::

    python -m repro place --circuit ibm01 --scale 0.05 \
        --alpha-ilv 1e-5 --alpha-temp 1e-5 --layers 4 --out /tmp/out
    python -m repro place --bookshelf /path/to/design --layers 2
    python -m repro -v place --circuit ibm01 --scale 0.01 \
        --telemetry-out /tmp/run --trace
    python -m repro place --circuit ibm01 --pipeline custom.json \
        --checkpoint-dir /tmp/ckpt
    python -m repro place --circuit ibm01 --checkpoint-dir /tmp/ckpt \
        --resume
    python -m repro sweep --circuit ibm02 --scale 0.02 --points 5 \
        --telemetry-out /tmp/sweep
    python -m repro config-dump --alpha-temp 1e-5 --layers 4
    python -m repro suite

The ``place`` pipeline is composable: ``--pipeline SPEC.json`` runs a
custom stage sequence (see ``repro.core.pipeline``), and with
``--checkpoint-dir`` the run state is serialized after every stage
boundary so ``--resume`` continues an interrupted run bit-identically.
``--halt-after UNIT`` stops at a named boundary (testing/drills).

Verbosity: ``-v`` shows per-stage progress (INFO), ``-vv`` debug,
``-q`` errors only.  ``--telemetry-out PREFIX`` writes
``PREFIX.trace.jsonl`` (the JSONL event stream) and
``PREFIX.manifest.json`` (the schema-validated run manifest) next to
any ``--out`` artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import List, Optional

import numpy as np

from repro import (
    PlacementConfig,
    PlacementReport,
    evaluate_placement,
    load_benchmark,
)
from repro import obs
from repro.core.checkpoint import CheckpointError
from repro.core.config import THERMAL_FIDELITY_MODES
from repro.core.pipeline import (PipelineHalted, PipelineSpec,
                                 default_pipeline_spec)
from repro.netlist import bookshelf
from repro.netlist.cache import (benchmark_key, bookshelf_key,
                                 cached_netlist)
from repro.netlist.suite import SUITE_PROFILES
from repro.obs import configure_cli_logging
from repro import service
from repro.service import (JobRequest, PlacementEngine, RpcError,
                           RpcServer, ServiceClient)
from repro.thermal.power import PowerModel
from repro.metrics.wirelength import compute_net_metrics
from repro import viz


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal- and via-aware 3D IC placement "
                    "(Goplen & Sapatnekar, DAC 2007 reproduction)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="place one design")
    src = place.add_mutually_exclusive_group(required=True)
    src.add_argument("--circuit",
                     help="suite benchmark name (ibm01..18) or "
                          "synthetic<N> (e.g. synthetic50k)")
    src.add_argument("--bookshelf",
                     help="prefix of .nodes/.nets Bookshelf files")
    place.add_argument("--scale", type=float, default=0.05,
                       help="suite benchmark scale (default 0.05)")
    place.add_argument("--alpha-ilv", type=float, default=1e-5,
                       help="interlayer-via coefficient (default 1e-5)")
    place.add_argument("--alpha-temp", type=float, default=0.0,
                       help="thermal coefficient (default 0 = off)")
    place.add_argument("--layers", type=int, default=4,
                       help="active layers (default 4)")
    place.add_argument("--thermal-fidelity",
                       choices=list(THERMAL_FIDELITY_MODES),
                       default="adaptive",
                       help="who computes temperature fields: the "
                            "exact finite-volume solver, the "
                            "calibrated closed-form surrogate, or "
                            "adaptive (surrogate inside stages, "
                            "exact + drift check at boundaries; "
                            "default).  Trajectory-neutral: the "
                            "placement and objective are identical "
                            "in every mode")
    place.add_argument("--workers", type=int, default=None,
                       help="execution-backend workers (default: "
                            "REPRO_WORKERS or serial; results are "
                            "bit-identical for any worker count)")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--out", help="write <out>.pl with the result")
    place.add_argument("--maps", action="store_true",
                       help="print per-layer density/temperature maps")
    place.add_argument("--trace", action="store_true",
                       help="print the telemetry report (spans, "
                            "counters, series)")
    place.add_argument("--telemetry-out", metavar="PREFIX",
                       help="write PREFIX.trace.jsonl and "
                            "PREFIX.manifest.json")
    place.add_argument("--pipeline", metavar="SPEC.json",
                       help="run a custom stage pipeline from a JSON "
                            "spec instead of the default flow")
    place.add_argument("--checkpoint-dir", metavar="DIR",
                       help="serialize run state here after every "
                            "stage boundary")
    place.add_argument("--resume", action="store_true",
                       help="resume from the last checkpoint in "
                            "--checkpoint-dir (bit-identical to an "
                            "uninterrupted run)")
    place.add_argument("--halt-after", metavar="UNIT",
                       help="stop after the named pipeline unit "
                            "(e.g. round1/detailed), leaving the "
                            "checkpoint behind")
    place.add_argument("--profile", action="store_true",
                       help="enable the sampling profiler and resource "
                            "tracking (also via REPRO_PROFILE=1); "
                            "prints memory/hot-function sections and, "
                            "with --telemetry-out, writes "
                            "PREFIX.collapsed.txt (flamegraph-ready) "
                            "plus manifest resources/profile sections")
    place.add_argument("--profile-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="profiler sample interval (default "
                            "REPRO_PROFILE_INTERVAL or 0.01)")
    place.add_argument("--profile-alloc", action="store_true",
                       help="with --profile: also trace allocation "
                            "sites via tracemalloc (also via "
                            "REPRO_PROFILE_ALLOC=1); hooks every "
                            "allocation, expect ~8x slower runs")
    place.add_argument("--jobs-dir", metavar="DIR",
                       help="persistent service job-store root "
                            "(default: a temporary spool discarded "
                            "after the run)")
    place.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed result cache root "
                            "(default: <jobs-dir>/cache); a rerun "
                            "with identical config/spec/netlist "
                            "short-circuits to the cached result")

    sweep = sub.add_parser("sweep",
                           help="alpha_ILV tradeoff sweep (Figure 3)")
    sweep.add_argument("--circuit", default="ibm01")
    sweep.add_argument("--scale", type=float, default=0.025)
    sweep.add_argument("--layers", type=int, default=4)
    sweep.add_argument("--points", type=int, default=6,
                       help="sweep points across 5e-9..5.2e-3")
    sweep.add_argument("--workers", type=int, default=None,
                       help="run sweep points concurrently on this "
                            "many workers (default: REPRO_WORKERS or "
                            "serial; point results are identical)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--trace", action="store_true",
                       help="print the telemetry report per point")
    sweep.add_argument("--telemetry-out", metavar="PREFIX",
                       help="write PREFIX.point<N>.trace.jsonl and "
                            "PREFIX.point<N>.manifest.json per point")
    sweep.add_argument("--jobs-dir", metavar="DIR",
                       help="persistent service job-store root "
                            "(default: a temporary spool discarded "
                            "after the sweep)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed result cache root "
                            "(default: <jobs-dir>/cache); duplicate "
                            "points dedupe through it")

    serve = sub.add_parser(
        "serve", help="run the placement service: a job engine with "
                      "sharded workers behind a unix-socket JSON-RPC "
                      "API")
    serve.add_argument("--jobs-dir", required=True, metavar="DIR",
                       help="job-store root (spooled job state, "
                            "checkpoints, results)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="result cache root "
                            "(default: <jobs-dir>/cache)")
    serve.add_argument("--socket", metavar="PATH",
                       help="unix socket to serve on "
                            "(default: <jobs-dir>/repro.sock)")
    serve.add_argument("--workers", type=int, default=None,
                       help="execution-backend workers (default: "
                            "REPRO_WORKERS or serial)")

    job = sub.add_parser(
        "job", help="talk to a running `repro serve` instance")
    job_sub = job.add_subparsers(dest="job_command", required=True)

    def _job_common(p: argparse.ArgumentParser,
                    with_id: bool = True) -> None:
        p.add_argument("--socket", required=True, metavar="PATH",
                       help="unix socket of the `repro serve` "
                            "instance")
        if with_id:
            p.add_argument("job_id", help="job id (job-000001 ...)")

    job_submit = job_sub.add_parser("submit",
                                    help="submit one placement job")
    _job_common(job_submit, with_id=False)
    job_src = job_submit.add_mutually_exclusive_group(required=True)
    job_src.add_argument("--circuit",
                         help="suite benchmark name (ibm01..18) or "
                              "synthetic<N> (e.g. synthetic50k)")
    job_src.add_argument("--bookshelf",
                         help="prefix of .nodes/.nets Bookshelf files")
    job_submit.add_argument("--scale", type=float, default=0.05)
    job_submit.add_argument("--alpha-ilv", type=float, default=1e-5)
    job_submit.add_argument("--alpha-temp", type=float, default=0.0)
    job_submit.add_argument("--layers", type=int, default=4)
    job_submit.add_argument("--seed", type=int, default=0)
    job_submit.add_argument("--check", action="store_true",
                            help="assert legality of the final "
                                 "placement")
    job_submit.add_argument("--label", help="display label")
    job_submit.add_argument("--wait", action="store_true",
                            help="block until the job reaches a "
                                 "terminal state")
    job_submit.add_argument("--timeout", type=float, default=None,
                            help="with --wait: give up after this "
                                 "many seconds")
    for verb, help_text in (("status", "print one job document"),
                            ("result", "print a done job's result"),
                            ("cancel", "cancel a job (cooperative "
                                       "for running jobs)"),
                            ("resume", "requeue a cancelled/failed "
                                       "job from its checkpoint")):
        _job_common(job_sub.add_parser(verb, help=help_text))
    _job_common(job_sub.add_parser("list", help="list all jobs"),
                with_id=False)

    dump = sub.add_parser(
        "config-dump",
        help="print the effective placement config as JSON")
    dump.add_argument("--alpha-ilv", type=float, default=1e-5)
    dump.add_argument("--alpha-temp", type=float, default=0.0)
    dump.add_argument("--layers", type=int, default=4)
    dump.add_argument("--seed", type=int, default=0)
    dump.add_argument("--out", metavar="FILE",
                      help="also write the JSON to FILE")

    obs_parser = sub.add_parser(
        "obs", help="observability tools: report, diff, history")
    obs_sub = obs_parser.add_subparsers(dest="obs_command",
                                        required=True)

    report_p = obs_sub.add_parser(
        "report", help="render a run manifest (or raw telemetry "
                       "trace snapshot) as a text report")
    report_p.add_argument("document",
                          help="manifest JSON written by "
                               "--telemetry-out")

    diff_p = obs_sub.add_parser(
        "diff", help="compare two manifests/telemetry files; exit "
                     "nonzero when any metric regressed beyond its "
                     "budget")
    diff_p.add_argument("before", help="baseline document (A)")
    diff_p.add_argument("after", help="candidate document (B)")
    diff_p.add_argument("--wall-pct", type=float, default=10.0,
                        help="allowed wall-time increase "
                             "(default 10%%)")
    diff_p.add_argument("--rss-pct", type=float, default=10.0,
                        help="allowed peak-RSS increase "
                             "(default 10%%)")
    diff_p.add_argument("--quality-pct", type=float, default=1.0,
                        help="allowed objective/WL/ILV/temperature "
                             "increase (default 1%%)")

    hist_p = obs_sub.add_parser(
        "history", help="append bench results to the committed perf "
                        "ledger and watch for regressions against a "
                        "rolling baseline")
    hist_p.add_argument("--ledger",
                        default="benchmarks/results/ledger.jsonl",
                        help="JSONL ledger path (default "
                             "benchmarks/results/ledger.jsonl)")
    hist_p.add_argument("--append", metavar="MEASUREMENT.json",
                        help="convert a bench measurement (or merged "
                             "before/after document) into a ledger "
                             "entry and append it")
    hist_p.add_argument("--label",
                        help="label for the appended entry "
                             "(required with --append)")
    hist_p.add_argument("--commit",
                        help="commit hash recorded on the appended "
                             "entry")
    hist_p.add_argument("--check", action="store_true",
                        help="compare the newest entry against the "
                             "rolling-median baseline; exit nonzero "
                             "on regression")
    hist_p.add_argument("--window", type=int, default=5,
                        help="baseline window, entries (default 5)")
    hist_p.add_argument("--threshold", type=float, default=20.0,
                        help="allowed increase over the rolling "
                             "median (default 20%%)")
    hist_p.add_argument("--metric",
                        help="show this metric's trajectory instead "
                             "of the entry table")

    sub.add_parser("suite", help="list benchmark profiles (Table 1)")
    return parser


def _cmd_place(args) -> int:
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.circuit:
        netlist = cached_netlist(
            benchmark_key(args.circuit, args.scale, args.seed),
            lambda: load_benchmark(args.circuit, scale=args.scale,
                                   seed=args.seed))
    else:
        netlist = cached_netlist(
            bookshelf_key(args.bookshelf),
            lambda: bookshelf.read_bookshelf_streaming(args.bookshelf))
    config = PlacementConfig(
        alpha_ilv=args.alpha_ilv, alpha_temp=args.alpha_temp,
        num_layers=args.layers, seed=args.seed,
        thermal_fidelity=args.thermal_fidelity,
        num_workers=0 if args.workers is None else args.workers)
    print(f"placing {netlist.name}: {netlist.num_cells} cells, "
          f"{netlist.num_nets} nets, {args.layers} layers")
    spec = (PipelineSpec.from_json_file(args.pipeline)
            if args.pipeline else default_pipeline_spec(config))
    jobs_dir = args.jobs_dir
    ephemeral = jobs_dir is None
    if ephemeral:
        jobs_dir = tempfile.mkdtemp(prefix="repro-jobs-")
    engine = PlacementEngine(jobs_dir, cache_dir=args.cache_dir,
                             workers=1)
    try:
        request = JobRequest(
            config=config.to_dict(), circuit=args.circuit,
            bookshelf=args.bookshelf, scale=args.scale,
            spec=spec.to_dict() if args.pipeline else None,
            check=True)
        job_id = engine.submit(request, netlist=netlist)
        entry = engine.try_cache(job_id)
        if entry is not None:
            return _place_from_cache(args, netlist, config, engine,
                                     job_id, entry)
        return _place_cold(args, netlist, config, spec, engine,
                           job_id)
    finally:
        engine.close()
        if ephemeral:
            shutil.rmtree(jobs_dir, ignore_errors=True)


def _place_from_cache(args, netlist, config, engine, job_id,
                      entry) -> int:
    """The `place` cache-hit path: report from the cached placement
    without running a single stage."""
    from repro.core.context import auto_chip
    from repro.netlist.placement import Placement
    document = engine.status(job_id)
    summary = document["result"]
    print(f"cache hit: reusing placement "
          f"{document['hashes']['cache_key'][:12]} ({job_id})")
    with np.load(entry.placement_path) as data:
        placement = Placement(netlist, auto_chip(netlist, config),
                              x=data["x"], y=data["y"], z=data["z"])
    report = evaluate_placement(
        placement, config.tech,
        runtime_seconds=float(summary["wall_seconds"]))
    print(PlacementReport.header())
    print(report.row())
    if args.maps:
        pm = PowerModel(netlist, config.tech)
        powers = pm.cell_powers(compute_net_metrics(placement))
        print()
        print(viz.layer_summary(placement, powers))
        for layer in range(config.num_layers):
            print()
            print(viz.density_map(placement, layer))
    if args.out:
        bookshelf.write_bookshelf(args.out, netlist, placement)
        print(f"wrote {args.out}.nodes/.nets/.pl")
    if args.telemetry_out:
        with open(document["manifest_path"], "r",
                  encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest_path = obs.write_manifest(
            f"{args.telemetry_out}.manifest.json", manifest)
        print(f"wrote {manifest_path}")
    return 0


def _place_cold(args, netlist, config, spec, engine, job_id) -> int:
    """The `place` cold path: the historical run sequence, wrapped in
    job bookkeeping by ``PlacementEngine.run_inline``."""
    # --profile flips the environment opt-in *before* the recorder is
    # built (so it auto-attaches a ResourceTracker) and before any
    # worker processes fork (so they inherit the opt-in too).
    profile_env_set = False
    if args.profile and not obs.profile_enabled():
        os.environ[obs.PROFILE_ENV] = "1"
        profile_env_set = True
    alloc_env_set = False
    if args.profile_alloc and not obs.alloc_enabled():
        os.environ[obs.ALLOC_ENV] = "1"
        alloc_env_set = True
    recorder: Optional[obs.Recorder] = None
    trace_path: Optional[str] = None
    if args.trace or args.telemetry_out or args.profile:
        sink = None
        if args.telemetry_out:
            trace_path = f"{args.telemetry_out}.trace.jsonl"
            sink = obs.EventSink(trace_path)
        recorder = obs.Recorder(sink=sink)
    profiler: Optional[obs.SamplingProfiler] = None
    if args.profile and recorder is not None:
        profiler = obs.SamplingProfiler(
            tracer=recorder.tracer, interval=args.profile_interval)
    try:
        if profiler is not None:
            profiler.start()
        result = engine.run_inline(job_id, netlist=netlist,
                                   config=config, spec=spec,
                                   recorder=recorder, check=True,
                                   checkpoint_dir=args.checkpoint_dir,
                                   resume=args.resume,
                                   halt_after=args.halt_after)
    except PipelineHalted as halted:
        print(f"halted after {halted.unit}"
              + (f"; checkpoint at {halted.directory}"
                 if halted.directory else ""))
        return 0
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 1
    finally:
        if profiler is not None:
            profiler.stop()
        if recorder is not None:
            recorder.close()
        if profile_env_set:
            os.environ.pop(obs.PROFILE_ENV, None)
        if alloc_env_set:
            os.environ.pop(obs.ALLOC_ENV, None)
    resources_doc = (recorder.finish_resources()
                     if recorder is not None else None)
    profile_doc = profiler.summary() if profiler is not None else None
    report = evaluate_placement(result.placement, config.tech,
                                runtime_seconds=result.runtime_seconds,
                                stage_seconds=result.stage_seconds)
    print(PlacementReport.header())
    print(report.row())
    if args.trace and result.telemetry is not None:
        print()
        print(obs.render(result.telemetry, title=netlist.name))
    if args.profile:
        print()
        print(obs.render_resources(resources_doc))
        print()
        print(obs.render_profile(profile_doc))
    if args.maps:
        pm = PowerModel(netlist, config.tech)
        powers = pm.cell_powers(compute_net_metrics(result.placement))
        print()
        print(viz.layer_summary(result.placement, powers))
        for layer in range(config.num_layers):
            print()
            print(viz.density_map(result.placement, layer))
    if args.out:
        bookshelf.write_bookshelf(args.out, netlist, result.placement)
        print(f"wrote {args.out}.nodes/.nets/.pl")
    if args.telemetry_out:
        manifest = obs.build_manifest(
            netlist, config, result, trace_path=trace_path,
            peak_temperature=report.max_temperature,
            pipeline=spec.to_dict(), resources=resources_doc,
            profile=profile_doc, job=engine.job_section(job_id))
        manifest_path = obs.write_manifest(
            f"{args.telemetry_out}.manifest.json", manifest)
        if profiler is not None:
            collapsed_path = f"{args.telemetry_out}.collapsed.txt"
            profiler.data.write_collapsed(collapsed_path)
            print(f"wrote {collapsed_path}")
        errors = obs.validate_manifest(manifest)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            print(f"manifest failed schema validation: {manifest_path}",
                  file=sys.stderr)
            return 1
        print(f"wrote {trace_path} and {manifest_path}")
    return 0


def _cmd_sweep(args) -> int:
    alphas = np.logspace(np.log10(5e-9), np.log10(5.2e-3), args.points)
    netlist = cached_netlist(
        benchmark_key(args.circuit, args.scale, args.seed),
        lambda: load_benchmark(args.circuit, scale=args.scale,
                               seed=args.seed))
    digest = service.netlist_hash(netlist)
    jobs_dir = args.jobs_dir
    ephemeral = jobs_dir is None
    if ephemeral:
        jobs_dir = tempfile.mkdtemp(prefix="repro-jobs-")
    engine = PlacementEngine(jobs_dir, cache_dir=args.cache_dir,
                             workers=args.workers)
    try:
        job_ids = []
        for index, alpha in enumerate(alphas):
            # each point places with num_workers=1 internally —
            # sweep-level and placement-level parallelism do not nest
            config = PlacementConfig(
                alpha_ilv=float(alpha), alpha_temp=0.0,
                num_layers=args.layers, seed=args.seed, num_workers=1)
            prefix = (f"{args.telemetry_out}.point{index}"
                      if args.telemetry_out else None)
            request = JobRequest(
                config=config.to_dict(), circuit=args.circuit,
                scale=args.scale, want_telemetry=bool(args.trace),
                telemetry_prefix=prefix,
                label=f"{args.circuit} point {index}")
            job_ids.append(engine.submit(request,
                                         netlist_digest=digest))
        documents = engine.wait(job_ids)
    finally:
        engine.close()
        if ephemeral:
            shutil.rmtree(jobs_dir, ignore_errors=True)
    print(f"{'alpha_ILV':>10} {'WL (m)':>12} {'ILVs':>8} "
          f"{'ILV density':>12}")
    points = []
    failed = False
    for index, (alpha, document) in enumerate(zip(alphas, documents)):
        if document["state"] != "done":
            print(f"point {index} ({document['id']}) "
                  f"{document['state']}: {document['error']}",
                  file=sys.stderr)
            failed = True
            continue
        summary = document["result"]
        points.append((summary["wirelength"], summary["ilv"]))
        print(f"{alpha:>10.1e} {summary['wirelength']:>12.5e} "
              f"{summary['ilv']:>8} {summary['ilv_density']:>12.4e}")
        outcome = engine.outcome(document["id"])
        telemetry = outcome.get("telemetry") if outcome else None
        if args.trace and telemetry is not None:
            print()
            print(obs.render(telemetry,
                             title=f"{netlist.name} point {index}"))
        errors = outcome.get("manifest_errors", []) if outcome else []
        for error in errors:
            print(error, file=sys.stderr)
        if errors:
            print("manifest failed schema validation: "
                  f"{outcome.get('manifest_path')}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    if args.telemetry_out:
        print(f"wrote {args.points} per-point manifests to "
              f"{args.telemetry_out}.point*.manifest.json")
    print()
    print(viz.tradeoff_ascii(points))
    return 0


def _cmd_serve(args) -> int:
    socket_path = args.socket or os.path.join(args.jobs_dir,
                                              "repro.sock")
    engine = PlacementEngine(args.jobs_dir, cache_dir=args.cache_dir,
                             workers=args.workers)
    engine.scheduler.start()
    server = RpcServer(engine, socket_path)
    print(f"serving jobs from {args.jobs_dir} on {socket_path}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        engine.close()
    print("server stopped")
    return 0


def _job_request_from_args(args) -> JobRequest:
    """Build the submission payload for ``repro job submit``."""
    config = PlacementConfig(
        alpha_ilv=args.alpha_ilv, alpha_temp=args.alpha_temp,
        num_layers=args.layers, seed=args.seed, num_workers=1)
    return JobRequest(config=config.to_dict(), circuit=args.circuit,
                      bookshelf=args.bookshelf, scale=args.scale,
                      label=args.label, check=args.check)


def _cmd_job(args) -> int:
    try:
        client = ServiceClient(args.socket)
    except OSError as exc:
        print(f"cannot connect to {args.socket}: {exc}",
              file=sys.stderr)
        return 2
    try:
        if args.job_command == "submit":
            response = client.submit(_job_request_from_args(args)
                                     .to_dict())
            job_id = response["job_id"]
            print(f"submitted {job_id}")
            if not args.wait:
                return 0
            deadline = (None if args.timeout is None
                        else time.monotonic() + args.timeout)
            while True:
                document = client.status(job_id)
                if document["state"] not in ("queued", "running"):
                    break
                if deadline is not None \
                        and time.monotonic() > deadline:
                    print(f"{job_id} still {document['state']} after "
                          f"{args.timeout:.1f}s", file=sys.stderr)
                    return 1
                time.sleep(0.2)
            print(f"{job_id} {document['state']} "
                  f"(cache {document['cache']})")
            if document["state"] == "done":
                print(json.dumps(document["result"], indent=2,
                                 sort_keys=True))
                return 0
            if document["error"]:
                print(document["error"], file=sys.stderr)
            return 1
        if args.job_command == "list":
            print(f"{'id':<12} {'state':<10} {'cache':<6} label")
            for document in client.list_jobs():
                print(f"{document['id']:<12} {document['state']:<10} "
                      f"{document['cache']:<6} {document['label']}")
            return 0
        handler = {"status": client.status, "result": client.result,
                   "cancel": client.cancel,
                   "resume": client.resume}[args.job_command]
        print(json.dumps(handler(args.job_id), indent=2,
                         sort_keys=True))
        return 0
    except RpcError as exc:
        print(f"rpc error {exc.code}: {exc.message}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_config_dump(args) -> int:
    config = PlacementConfig(alpha_ilv=args.alpha_ilv,
                             alpha_temp=args.alpha_temp,
                             num_layers=args.layers, seed=args.seed)
    document = config.to_dict()
    # Round-trip through from_dict so the dumped JSON is guaranteed to
    # be loadable (and unknown-key detection stays exercised).
    PlacementConfig.from_dict(document)
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _load_json_document(path: str) -> Optional[dict]:
    """Load a JSON object from ``path``; ``None`` (with a message on
    stderr) on any load failure — obs commands exit 2, not traceback."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(document, dict):
        print(f"{path}: expected a JSON object", file=sys.stderr)
        return None
    return document


def _cmd_obs_report(args) -> int:
    document = _load_json_document(args.document)
    if document is None:
        return 2
    if "spans" in document and "kind" not in document:
        # raw Telemetry snapshot (e.g. a worker's shipped telemetry)
        telemetry = obs.Telemetry(
            spans=document.get("spans") or {},
            counters=document.get("counters") or {},
            gauges=document.get("gauges") or {},
            series=document.get("series") or {},
            wall_seconds=float(document.get("wall_seconds") or 0.0))
        print(obs.render(telemetry, title=args.document))
        return 0
    print(obs.render_manifest(document))
    return 0


def _cmd_obs_diff(args) -> int:
    from repro.obs.diffing import (DiffThresholds, diff_documents,
                                   has_regressions, render_diff)
    before = _load_json_document(args.before)
    after = _load_json_document(args.after)
    if before is None or after is None:
        return 2
    thresholds = DiffThresholds(wall_pct=args.wall_pct,
                                rss_pct=args.rss_pct,
                                quality_pct=args.quality_pct)
    deltas = diff_documents(before, after, thresholds)
    print(render_diff(deltas, label_a=os.path.basename(args.before),
                      label_b=os.path.basename(args.after)))
    return 1 if has_regressions(deltas) else 0


def _cmd_obs_history(args) -> int:
    from repro.obs import history
    try:
        entries = history.load_ledger(args.ledger)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.append:
        if not args.label:
            print("--append requires --label", file=sys.stderr)
            return 2
        measurement = _load_json_document(args.append)
        if measurement is None:
            return 2
        try:
            entry = history.entry_from_measurement(
                measurement, label=args.label, commit=args.commit)
        except ValueError as exc:
            print(f"{args.append}: {exc}", file=sys.stderr)
            return 2
        history.append_entry(args.ledger, entry)
        entries.append(entry)
        print(f"appended entry '{args.label}' "
              f"({len(entry['metrics'])} metrics) to {args.ledger}")
    if args.check:
        if len(entries) < 2:
            print(f"need at least 2 ledger entries to check a "
                  f"regression (ledger {args.ledger} has "
                  f"{len(entries)})", file=sys.stderr)
            return 2
        regressions = history.check_latest(
            entries, window=args.window,
            threshold_pct=args.threshold)
        if regressions:
            for reg in regressions:
                print(f"REGRESSION {reg.metric}: {reg.value:.6g} vs "
                      f"baseline {reg.baseline:.6g} ({reg.pct:+.1f}% > "
                      f"{args.threshold:.0f}%)")
            return 1
        print(f"no regressions in latest of {len(entries)} entries "
              f"(window {args.window}, threshold {args.threshold:.0f}%)")
        return 0
    if not args.append:
        print(history.render_history(entries, metric=args.metric))
    return 0


def _cmd_obs(args) -> int:
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    if args.obs_command == "history":
        return _cmd_obs_history(args)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_suite() -> int:
    print(f"{'name':<8} {'cells':>8} {'area (mm^2)':>12}")
    for profile in SUITE_PROFILES.values():
        print(f"{profile.name:<8} {profile.cells:>8} "
              f"{profile.area_mm2:>12.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    configure_cli_logging(args.verbose - args.quiet)
    if args.command == "place":
        return _cmd_place(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "job":
        return _cmd_job(args)
    if args.command == "config-dump":
        return _cmd_config_dump(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "suite":
        return _cmd_suite()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly.
        # Detach stdout so the interpreter's shutdown flush cannot
        # raise a second BrokenPipeError.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
