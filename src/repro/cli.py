"""Command-line interface: ``python -m repro <command>``.

Commands:
    place        place a suite benchmark or a Bookshelf design
    sweep        sweep the via coefficient and print the tradeoff curve
    suite        list the built-in benchmark profiles (Table 1)
    config-dump  print the effective placement config as JSON

Examples::

    python -m repro place --circuit ibm01 --scale 0.05 \
        --alpha-ilv 1e-5 --alpha-temp 1e-5 --layers 4 --out /tmp/out
    python -m repro place --bookshelf /path/to/design --layers 2
    python -m repro -v place --circuit ibm01 --scale 0.01 \
        --telemetry-out /tmp/run --trace
    python -m repro place --circuit ibm01 --pipeline custom.json \
        --checkpoint-dir /tmp/ckpt
    python -m repro place --circuit ibm01 --checkpoint-dir /tmp/ckpt \
        --resume
    python -m repro sweep --circuit ibm02 --scale 0.02 --points 5 \
        --telemetry-out /tmp/sweep
    python -m repro config-dump --alpha-temp 1e-5 --layers 4
    python -m repro suite

The ``place`` pipeline is composable: ``--pipeline SPEC.json`` runs a
custom stage sequence (see ``repro.core.pipeline``), and with
``--checkpoint-dir`` the run state is serialized after every stage
boundary so ``--resume`` continues an interrupted run bit-identically.
``--halt-after UNIT`` stops at a named boundary (testing/drills).

Verbosity: ``-v`` shows per-stage progress (INFO), ``-vv`` debug,
``-q`` errors only.  ``--telemetry-out PREFIX`` writes
``PREFIX.trace.jsonl`` (the JSONL event stream) and
``PREFIX.manifest.json`` (the schema-validated run manifest) next to
any ``--out`` artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import (
    Placer3D,
    PlacementConfig,
    PlacementReport,
    evaluate_placement,
    load_benchmark,
)
from repro import obs
from repro.core.checkpoint import CheckpointError
from repro.core.config import THERMAL_FIDELITY_MODES
from repro.core.pipeline import (PipelineHalted, PipelineSpec,
                                 default_pipeline_spec)
from repro.netlist import bookshelf
from repro.netlist.suite import SUITE_PROFILES
from repro.obs import configure_cli_logging
from repro.parallel import create_backend
from repro.thermal.power import PowerModel
from repro.metrics.wirelength import compute_net_metrics
from repro import viz


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal- and via-aware 3D IC placement "
                    "(Goplen & Sapatnekar, DAC 2007 reproduction)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="place one design")
    src = place.add_mutually_exclusive_group(required=True)
    src.add_argument("--circuit", help="suite benchmark name (ibm01..18)")
    src.add_argument("--bookshelf",
                     help="prefix of .nodes/.nets Bookshelf files")
    place.add_argument("--scale", type=float, default=0.05,
                       help="suite benchmark scale (default 0.05)")
    place.add_argument("--alpha-ilv", type=float, default=1e-5,
                       help="interlayer-via coefficient (default 1e-5)")
    place.add_argument("--alpha-temp", type=float, default=0.0,
                       help="thermal coefficient (default 0 = off)")
    place.add_argument("--layers", type=int, default=4,
                       help="active layers (default 4)")
    place.add_argument("--thermal-fidelity",
                       choices=list(THERMAL_FIDELITY_MODES),
                       default="adaptive",
                       help="who computes temperature fields: the "
                            "exact finite-volume solver, the "
                            "calibrated closed-form surrogate, or "
                            "adaptive (surrogate inside stages, "
                            "exact + drift check at boundaries; "
                            "default).  Trajectory-neutral: the "
                            "placement and objective are identical "
                            "in every mode")
    place.add_argument("--workers", type=int, default=None,
                       help="execution-backend workers (default: "
                            "REPRO_WORKERS or serial; results are "
                            "bit-identical for any worker count)")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--out", help="write <out>.pl with the result")
    place.add_argument("--maps", action="store_true",
                       help="print per-layer density/temperature maps")
    place.add_argument("--trace", action="store_true",
                       help="print the telemetry report (spans, "
                            "counters, series)")
    place.add_argument("--telemetry-out", metavar="PREFIX",
                       help="write PREFIX.trace.jsonl and "
                            "PREFIX.manifest.json")
    place.add_argument("--pipeline", metavar="SPEC.json",
                       help="run a custom stage pipeline from a JSON "
                            "spec instead of the default flow")
    place.add_argument("--checkpoint-dir", metavar="DIR",
                       help="serialize run state here after every "
                            "stage boundary")
    place.add_argument("--resume", action="store_true",
                       help="resume from the last checkpoint in "
                            "--checkpoint-dir (bit-identical to an "
                            "uninterrupted run)")
    place.add_argument("--halt-after", metavar="UNIT",
                       help="stop after the named pipeline unit "
                            "(e.g. round1/detailed), leaving the "
                            "checkpoint behind")

    sweep = sub.add_parser("sweep",
                           help="alpha_ILV tradeoff sweep (Figure 3)")
    sweep.add_argument("--circuit", default="ibm01")
    sweep.add_argument("--scale", type=float, default=0.025)
    sweep.add_argument("--layers", type=int, default=4)
    sweep.add_argument("--points", type=int, default=6,
                       help="sweep points across 5e-9..5.2e-3")
    sweep.add_argument("--workers", type=int, default=None,
                       help="run sweep points concurrently on this "
                            "many workers (default: REPRO_WORKERS or "
                            "serial; point results are identical)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--trace", action="store_true",
                       help="print the telemetry report per point")
    sweep.add_argument("--telemetry-out", metavar="PREFIX",
                       help="write PREFIX.point<N>.trace.jsonl and "
                            "PREFIX.point<N>.manifest.json per point")

    dump = sub.add_parser(
        "config-dump",
        help="print the effective placement config as JSON")
    dump.add_argument("--alpha-ilv", type=float, default=1e-5)
    dump.add_argument("--alpha-temp", type=float, default=0.0)
    dump.add_argument("--layers", type=int, default=4)
    dump.add_argument("--seed", type=int, default=0)
    dump.add_argument("--out", metavar="FILE",
                      help="also write the JSON to FILE")

    sub.add_parser("suite", help="list benchmark profiles (Table 1)")
    return parser


def _cmd_place(args) -> int:
    if args.circuit:
        netlist = load_benchmark(args.circuit, scale=args.scale,
                                 seed=args.seed)
    else:
        netlist = bookshelf.read_bookshelf(args.bookshelf)
    config = PlacementConfig(
        alpha_ilv=args.alpha_ilv, alpha_temp=args.alpha_temp,
        num_layers=args.layers, seed=args.seed,
        thermal_fidelity=args.thermal_fidelity,
        num_workers=0 if args.workers is None else args.workers)
    print(f"placing {netlist.name}: {netlist.num_cells} cells, "
          f"{netlist.num_nets} nets, {args.layers} layers")
    recorder: Optional[obs.Recorder] = None
    trace_path: Optional[str] = None
    if args.trace or args.telemetry_out:
        sink = None
        if args.telemetry_out:
            trace_path = f"{args.telemetry_out}.trace.jsonl"
            sink = obs.EventSink(trace_path)
        recorder = obs.Recorder(sink=sink)
    spec = (PipelineSpec.from_json_file(args.pipeline)
            if args.pipeline else default_pipeline_spec(config))
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    placer = Placer3D(netlist, config, recorder=recorder, spec=spec)
    try:
        result = placer.run(check=True,
                            checkpoint_dir=args.checkpoint_dir,
                            resume=args.resume,
                            halt_after=args.halt_after)
    except PipelineHalted as halted:
        print(f"halted after {halted.unit}"
              + (f"; checkpoint at {halted.directory}"
                 if halted.directory else ""))
        return 0
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 1
    finally:
        if recorder is not None:
            recorder.close()
    report = evaluate_placement(result.placement, config.tech,
                                runtime_seconds=result.runtime_seconds,
                                stage_seconds=result.stage_seconds)
    print(PlacementReport.header())
    print(report.row())
    if args.trace and result.telemetry is not None:
        print()
        print(obs.render(result.telemetry, title=netlist.name))
    if args.maps:
        pm = PowerModel(netlist, config.tech)
        powers = pm.cell_powers(compute_net_metrics(result.placement))
        print()
        print(viz.layer_summary(result.placement, powers))
        for layer in range(config.num_layers):
            print()
            print(viz.density_map(result.placement, layer))
    if args.out:
        bookshelf.write_bookshelf(args.out, netlist, result.placement)
        print(f"wrote {args.out}.nodes/.nets/.pl")
    if args.telemetry_out:
        manifest = obs.build_manifest(
            netlist, config, result, trace_path=trace_path,
            peak_temperature=report.max_temperature,
            pipeline=spec.to_dict())
        manifest_path = obs.write_manifest(
            f"{args.telemetry_out}.manifest.json", manifest)
        errors = obs.validate_manifest(manifest)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            print(f"manifest failed schema validation: {manifest_path}",
                  file=sys.stderr)
            return 1
        print(f"wrote {trace_path} and {manifest_path}")
    return 0


@dataclass(frozen=True)
class _SweepPoint:
    """One sweep point as a picklable backend task.

    Carries only primitives (no netlists, no open files) so points can
    be dispatched to worker processes; each worker rebuilds the
    benchmark from ``(circuit, scale, seed)`` and writes its own
    per-point telemetry files (the paths are unique per index, so
    concurrent points never share a file handle).
    """

    index: int
    circuit: str
    scale: float
    alpha_ilv: float
    layers: int
    seed: int
    want_telemetry: bool
    telemetry_prefix: Optional[str]


@dataclass(frozen=True)
class _SweepResult:
    """What one sweep point ships back to the dispatching side."""

    index: int
    name: str
    wirelength: float
    ilv: int
    ilv_density: float
    telemetry: Optional[obs.Telemetry]
    manifest_errors: Tuple[str, ...]
    manifest_path: Optional[str]


def _run_sweep_point(point: _SweepPoint) -> _SweepResult:
    """Place one sweep point; pure function of the point payload.

    Runs with ``num_workers=1`` internally — sweep-level parallelism
    and placement-level parallelism do not nest (a worker process
    spawning its own pool would oversubscribe the machine).
    """
    netlist = load_benchmark(point.circuit, scale=point.scale,
                             seed=point.seed)
    config = PlacementConfig(alpha_ilv=point.alpha_ilv, alpha_temp=0.0,
                             num_layers=point.layers, seed=point.seed,
                             num_workers=1)
    recorder: Optional[obs.Recorder] = None
    trace_path: Optional[str] = None
    if point.want_telemetry or point.telemetry_prefix:
        sink = None
        if point.telemetry_prefix:
            trace_path = (f"{point.telemetry_prefix}"
                          f".point{point.index}.trace.jsonl")
            sink = obs.EventSink(trace_path)
        recorder = obs.Recorder(sink=sink)
    placer = Placer3D(netlist, config, recorder=recorder)
    result = placer.run()
    if recorder is not None:
        recorder.close()
    report = evaluate_placement(result.placement, config.tech,
                                thermal=False)
    errors: Tuple[str, ...] = ()
    manifest_path: Optional[str] = None
    if point.telemetry_prefix:
        manifest = obs.build_manifest(
            netlist, config, result, trace_path=trace_path,
            pipeline=placer.spec.to_dict())
        manifest_path = obs.write_manifest(
            f"{point.telemetry_prefix}.point{point.index}.manifest.json",
            manifest)
        errors = tuple(obs.validate_manifest(manifest))
    return _SweepResult(
        index=point.index, name=netlist.name,
        wirelength=report.wirelength, ilv=report.ilv,
        ilv_density=report.ilv_density, telemetry=result.telemetry,
        manifest_errors=errors, manifest_path=manifest_path)


def _cmd_sweep(args) -> int:
    alphas = np.logspace(np.log10(5e-9), np.log10(5.2e-3), args.points)
    tasks = [_SweepPoint(index=index, circuit=args.circuit,
                         scale=args.scale, alpha_ilv=float(alpha),
                         layers=args.layers, seed=args.seed,
                         want_telemetry=bool(args.trace),
                         telemetry_prefix=args.telemetry_out)
             for index, alpha in enumerate(alphas)]
    backend = create_backend(args.workers
                             if args.workers is not None else 0)
    try:
        results = backend.map(_run_sweep_point, tasks)
    finally:
        backend.close()
    print(f"{'alpha_ILV':>10} {'WL (m)':>12} {'ILVs':>8} "
          f"{'ILV density':>12}")
    points = []
    failed = False
    for alpha, result in zip(alphas, results):
        points.append((result.wirelength, result.ilv))
        print(f"{alpha:>10.1e} {result.wirelength:>12.5e} "
              f"{result.ilv:>8} {result.ilv_density:>12.4e}")
        if args.trace and result.telemetry is not None:
            print()
            print(obs.render(result.telemetry,
                             title=f"{result.name} point {result.index}"))
        for error in result.manifest_errors:
            print(error, file=sys.stderr)
        if result.manifest_errors:
            print("manifest failed schema validation: "
                  f"{result.manifest_path}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    if args.telemetry_out:
        print(f"wrote {args.points} per-point manifests to "
              f"{args.telemetry_out}.point*.manifest.json")
    print()
    print(viz.tradeoff_ascii(points))
    return 0


def _cmd_config_dump(args) -> int:
    config = PlacementConfig(alpha_ilv=args.alpha_ilv,
                             alpha_temp=args.alpha_temp,
                             num_layers=args.layers, seed=args.seed)
    document = config.to_dict()
    # Round-trip through from_dict so the dumped JSON is guaranteed to
    # be loadable (and unknown-key detection stays exercised).
    PlacementConfig.from_dict(document)
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_suite() -> int:
    print(f"{'name':<8} {'cells':>8} {'area (mm^2)':>12}")
    for profile in SUITE_PROFILES.values():
        print(f"{profile.name:<8} {profile.cells:>8} "
              f"{profile.area_mm2:>12.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    configure_cli_logging(args.verbose - args.quiet)
    if args.command == "place":
        return _cmd_place(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "config-dump":
        return _cmd_config_dump(args)
    if args.command == "suite":
        return _cmd_suite()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly.
        # Detach stdout so the interpreter's shutdown flush cannot
        # raise a second BrokenPipeError.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
