"""``python -m repro`` dispatches to the CLI."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pipe (e.g. `| head`) closed early; exit quietly.
    # Detach stdout so the interpreter's shutdown flush cannot raise
    # a second BrokenPipeError.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(0)
