"""Content-addressed result cache for placement jobs.

A placement run is a pure function of three documents — the config
(minus execution-only keys), the pipeline spec, and the netlist — so
its result can be addressed by the hash triple.  The cache stores, per
key, the final placement coordinates (``placement.npz``), the run
manifest (``manifest.json``) and a small result summary
(``summary.json``); a resubmission of the same triple short-circuits
straight to ``done`` without running a single stage, which is the
``cache/hit`` counter in service telemetry.

Entries are published atomically (staged in a temp directory, then
``os.replace``-d into place), so a half-written entry is never
visible; a concurrent publish of the same key keeps the first writer's
entry — both are bit-identical by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.obs.manifest import content_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.netlist import Netlist

__all__ = ["CacheEntry", "ResultCache", "cache_key", "netlist_hash"]


#: Memoized hashes for netlists served from the netlist cache: every
#: unpickled copy of one cached circuit shares a ``content_key``, so
#: the (linear-walk) hash below runs once per circuit, not per copy.
_HASH_BY_CONTENT_KEY: Dict[str, str] = {}

#: Bound on the memo; keys are short strings, digests 64 chars.
_MAX_HASH_MEMO = 64


def netlist_hash(netlist: "Netlist") -> str:
    """Stable content hash of a netlist's placement-relevant content.

    Hashes cell geometry/fixity and the *signal* net hypergraph (TRR
    nets are derived from the config, so including them would make the
    hash depend on whether thermal nets were already materialised).
    Two structurally identical netlists hash identically regardless of
    load path.  Copies carrying a netlist-cache ``content_key`` share
    one memoized computation.
    """
    memo_key = netlist.content_key
    if memo_key is not None:
        cached = _HASH_BY_CONTENT_KEY.get(memo_key)
        if cached is not None:
            return cached
    cells = [[cell.name, float(cell.width), float(cell.height),
              bool(cell.fixed),
              (None if cell.fixed_position is None
               else [float(cell.fixed_position[0]),
                     float(cell.fixed_position[1]),
                     int(cell.fixed_position[2])])]
             for cell in netlist.cells]
    nets = [[net.name, float(net.activity),
             [[int(cell_id), role.value] for cell_id, role in net.pins]]
            for net in netlist.signal_nets()]
    digest = content_hash({"name": netlist.name, "cells": cells,
                           "nets": nets})
    if memo_key is not None:
        if len(_HASH_BY_CONTENT_KEY) >= _MAX_HASH_MEMO:
            _HASH_BY_CONTENT_KEY.pop(next(iter(_HASH_BY_CONTENT_KEY)))
        _HASH_BY_CONTENT_KEY[memo_key] = digest
    return digest


def cache_key(config_hash: str, spec_hash: str,
              netlist_hash: str) -> str:
    """Derive the cache address from the identity hash triple.

    Returns:
        A bare sha256 hex digest (no prefix) — it doubles as the
        cache-entry directory name.
    """
    blob = "|".join((config_hash, spec_hash, netlist_hash))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One published cache entry.

    Attributes:
        key: the sha256 cache key the entry is addressed by.
        placement_path: path to the ``placement.npz`` coordinates.
        manifest_path: path to the cached run manifest.
        summary: the result summary (objective, wirelength, ilv,
            wall_seconds of the *original* run).
    """

    key: str
    placement_path: Path
    manifest_path: Path
    summary: Dict[str, Any]


class ResultCache:
    """Content-addressed store of finished placement results.

    Args:
        root: cache root directory; entries live in two-level
            fan-out subdirectories (``<root>/ab/abcdef…``).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def entry_dir(self, key: str) -> Path:
        """The directory a key's entry occupies (existing or not)."""
        return self.root / key[:2] / key

    def fetch(self, key: str) -> Optional[CacheEntry]:
        """Look up a key; returns the entry or ``None`` on a miss."""
        directory = self.entry_dir(key)
        summary_path = directory / "summary.json"
        if not summary_path.is_file():
            return None
        with open(summary_path, "r", encoding="utf-8") as fh:
            summary = json.load(fh)
        if not isinstance(summary, dict):
            return None
        return CacheEntry(key=key,
                          placement_path=directory / "placement.npz",
                          manifest_path=directory / "manifest.json",
                          summary=summary)

    def store(self, key: str, placement_path: Union[str, Path],
              manifest: Dict[str, Any],
              summary: Dict[str, Any]) -> CacheEntry:
        """Publish a finished result under ``key`` atomically.

        The artifacts are staged into a sibling temp directory and
        moved into place with ``os.replace``; if another publisher won
        the race the first entry is kept (the results are
        bit-identical by construction, so either is correct).
        """
        directory = self.entry_dir(key)
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = directory.parent / f".tmp-{key}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        shutil.copyfile(placement_path, staging / "placement.npz")
        with open(staging / "manifest.json", "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        with open(staging / "summary.json", "w",
                  encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        try:
            os.replace(staging, directory)
        except OSError:
            # lost the publish race (or a non-empty dir already
            # exists): keep the incumbent entry, drop the staging copy
            shutil.rmtree(staging, ignore_errors=True)
        entry = self.fetch(key)
        assert entry is not None
        return entry

    def keys(self) -> List[str]:
        """All published cache keys (unordered fan-out walk)."""
        found: List[str] = []
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir() and (entry / "summary.json").is_file():
                    found.append(entry.name)
        return found
