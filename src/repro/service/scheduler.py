"""Shards queued jobs across the execution backend.

The scheduler is a pump: each :meth:`Scheduler.pump` harvests finished
task handles (publishing results to the cache, parking failures and
preemptions) and then dispatches queued jobs up to the backend's
worker count.  It can be pumped inline (the engine's ``wait`` path)
or from a daemon thread (:meth:`Scheduler.start`, the ``serve`` path).

Scheduling policy, all observable through the job store:

- FIFO by job id; at most ``backend.num_workers`` jobs in flight.
- A queued job whose cancel sentinel is raised is parked as
  ``cancelled`` without ever dispatching.
- A queued job whose cache key is already published short-circuits to
  ``done`` with ``cache="hit"`` (the ``cache/hit`` telemetry counter).
- A queued job whose cache key is *in flight* is coalesced: it stays
  queued and resolves as a cache hit once the leader publishes.
- A running job that stops with
  :class:`~repro.core.pipeline.PipelinePreempted` is parked as
  ``cancelled`` with its preemption count bumped; its checkpoint
  remains, so a requeue resumes bit-identically.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.obs import Recorder, get_logger
from repro.parallel import ExecutionBackend, TaskHandle
from repro.service.cache import CacheEntry, ResultCache
from repro.service.jobstore import JobStore
from repro.service.worker import execute_job

__all__ = ["Scheduler", "fulfil_from_cache"]

_log = get_logger(__name__)


def fulfil_from_cache(store: JobStore, document: Dict[str, Any],
                      entry: CacheEntry,
                      recorder: Optional[Recorder] = None,
                      ) -> Dict[str, Any]:
    """Short-circuit a queued job to ``done`` from a cache entry.

    Copies the cached placement into the job's result directory and
    rewrites the cached manifest's ``job`` section for *this* job
    (``cache="hit"``, no trace), so the job's artifacts are
    indistinguishable in shape from a cold run's.
    """
    job_id = str(document["id"])
    result_dir = store.result_dir(job_id)
    result_dir.mkdir(exist_ok=True)
    shutil.copyfile(entry.placement_path, result_dir / "placement.npz")
    with open(entry.manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    manifest["job"] = {"id": job_id, "cache": "hit",
                       "preemptions": int(document["preemptions"])}
    manifest["trace_path"] = None
    manifest_path = result_dir / "manifest.json"
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    prefix = document["request"].get("telemetry_prefix")
    if prefix:
        with open(f"{prefix}.manifest.json", "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if recorder is not None:
        recorder.count("cache/hit")
    return store.transition(job_id, "done", expect=("queued",),
                            cache="hit", result=dict(entry.summary),
                            manifest_path=str(manifest_path))


class Scheduler:
    """Pumps queued jobs through an execution backend.

    Args:
        store: the spooled job store.
        cache: the content-addressed result cache.
        backend: where job payloads execute; its ``num_workers`` is
            the shard width.
        recorder: service telemetry (``cache/hit``, ``cache/miss``,
            ``jobs/*`` counters).
        poll_seconds: harvest cadence of the daemon-thread loop.
    """

    def __init__(self, store: JobStore, cache: ResultCache,
                 backend: ExecutionBackend,
                 recorder: Optional[Recorder] = None,
                 poll_seconds: float = 0.05) -> None:
        self.store = store
        self.cache = cache
        self.backend = backend
        self.recorder = recorder
        self.poll_seconds = float(poll_seconds)
        self._lock = threading.RLock()
        self._inflight: Dict[str, Tuple[str, TaskHandle]] = {}
        self._outcomes: Dict[str, Dict[str, Any]] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def _count(self, name: str) -> None:
        if self.recorder is not None:
            self.recorder.count(name)

    # -- pump ----------------------------------------------------------
    def pump(self) -> int:
        """One harvest + dispatch round; returns jobs still active
        (queued or in flight)."""
        with self._lock:
            self._harvest()
            return self._dispatch()

    def _harvest(self) -> None:
        for job_id, (key, handle) in list(self._inflight.items()):
            if not handle.done():
                continue
            del self._inflight[job_id]
            self.backend.forget(job_id)
            error = handle.exception()
            if error is not None:
                _log.warning("job %s failed: %s", job_id, error)
                self.store.transition(job_id, "failed",
                                      expect=("running",),
                                      error=str(error))
                self._count("jobs/failed")
                continue
            outcome = handle.result()
            if outcome["state"] == "preempted":
                document = self.store.load(job_id)
                self.store.transition(
                    job_id, "cancelled", expect=("running",),
                    preemptions=int(document["preemptions"]) + 1)
                self._count("jobs/preempted")
                continue
            self._outcomes[job_id] = outcome
            self.store.transition(
                job_id, "done", expect=("running",),
                result=dict(outcome["summary"]),
                manifest_path=str(outcome["manifest_path"]))
            self._count("jobs/done")
            self._publish(job_id, key, outcome)

    def _publish(self, job_id: str, key: str,
                 outcome: Dict[str, Any]) -> None:
        placement_path = self.store.result_dir(job_id) / "placement.npz"
        with open(outcome["manifest_path"], "r",
                  encoding="utf-8") as fh:
            manifest = json.load(fh)
        self.cache.store(key, placement_path, manifest,
                         dict(outcome["summary"]))

    def _dispatch(self) -> int:
        capacity = self.backend.num_workers - len(self._inflight)
        inflight_keys = {key for key, _ in self._inflight.values()}
        active = len(self._inflight)
        for document in self.store.list_jobs():
            if document["state"] != "queued":
                continue
            job_id = str(document["id"])
            if document["cancel_requested"] \
                    or self.store.cancel_requested(job_id):
                self.store.transition(job_id, "cancelled",
                                      expect=("queued",))
                self._count("jobs/cancelled")
                continue
            key = str(document["hashes"]["cache_key"])
            entry = self.cache.fetch(key)
            if entry is not None:
                fulfil_from_cache(self.store, document, entry,
                                  self.recorder)
                continue
            if key in inflight_keys or capacity <= 0:
                # duplicate-in-flight coalesces to a cache hit once
                # the leader publishes; over-capacity jobs just wait
                active += 1
                continue
            self.store.transition(job_id, "running", expect=("queued",))
            self._count("cache/miss")
            handle = self.backend.submit(
                execute_job,
                {"job_dir": str(self.store.job_dir(job_id))},
                task_id=job_id)
            self._inflight[job_id] = (key, handle)
            inflight_keys.add(key)
            capacity -= 1
            active += 1
        return active

    # -- blocking / threaded operation ---------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Pump until no job is queued or running.

        Raises:
            TimeoutError: active jobs remain after ``timeout`` seconds.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while self.pump() > 0:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"jobs still active after {timeout:.1f}s")
            time.sleep(self.poll_seconds)

    def start(self) -> None:
        """Run the pump loop in a daemon thread (the serve path)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-scheduler",
                                        daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.pump()
            self._stop.wait(self.poll_seconds)

    def stop(self) -> None:
        """Stop the pump thread (in-flight backend tasks keep running)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    # -- introspection -------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the daemon pump thread is active."""
        return self._thread is not None

    def liveness(self) -> Dict[str, str]:
        """Per-task liveness as reported by the execution backend."""
        return self.backend.liveness()

    def outcome(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The in-memory outcome of a job completed this session
        (telemetry included), or ``None``."""
        with self._lock:
            return self._outcomes.get(job_id)
