"""Placement-as-a-service: job engine, sharded workers, result cache.

This package composes the substrate earlier layers provide — the
config/spec/netlist hashes on checkpoints, the pluggable
:class:`~repro.parallel.ExecutionBackend`, validated manifests — into a
submit-and-evaluate service:

- :class:`JobStore` (``jobstore.py``) — spooled job directories with
  atomic state transitions ``queued → running → done/failed/cancelled``;
  each job owns a checkpoint directory and a result manifest.
- :class:`ResultCache` (``cache.py``) — content-addressed placement
  results keyed on the ``(config_hash, spec_hash, netlist_hash)``
  triple; a resubmitted job short-circuits to the cached manifest and
  placement (``cache/hit`` in telemetry).
- :class:`Scheduler` (``scheduler.py``) — shards queued jobs across
  the execution backend, coalesces duplicate submissions in flight,
  and parks cancelled jobs at the nearest stage boundary via the
  pipeline's cooperative preemption hook (resumable bit-identically).
- :class:`PlacementEngine` (``engine.py``) — the façade the CLI's
  ``place``/``sweep``/``serve`` commands submit jobs through.
- :class:`RpcServer` / :class:`ServiceClient` (``rpc.py``) — a
  newline-delimited JSON-RPC API over a unix socket
  (``submit`` / ``status`` / ``cancel`` / ``result`` / ``shutdown``).

``rpc.py`` is the only module in ``src/repro`` allowed to import
``socket`` / ``selectors`` (lint rule RPL014).
"""

from repro.service.cache import (CacheEntry, ResultCache, cache_key,
                                 netlist_hash)
from repro.service.engine import PlacementEngine
from repro.service.jobstore import (JOB_STATES, TERMINAL_STATES,
                                    JobError, JobRequest, JobStateError,
                                    JobStore)
from repro.service.rpc import RpcError, RpcServer, ServiceClient
from repro.service.scheduler import Scheduler
from repro.service.worker import execute_job, load_job_netlist

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "CacheEntry",
    "JobError",
    "JobRequest",
    "JobStateError",
    "JobStore",
    "PlacementEngine",
    "ResultCache",
    "RpcError",
    "RpcServer",
    "Scheduler",
    "ServiceClient",
    "cache_key",
    "execute_job",
    "load_job_netlist",
    "netlist_hash",
]
