"""Spooled job store: one directory per job, atomic state transitions.

A job is a directory under the store root::

    <root>/job-000001/
        job.json        # the job document (schema-validated)
        CANCEL          # cancel sentinel (cooperative preemption)
        checkpoint/     # the run's stage-boundary checkpoints
        result/         # placement.npz + manifest.json when done

``job.json`` is the single source of truth for a job's lifecycle.  It
is always written atomically (temp file + ``os.replace``), and state
changes go through :meth:`JobStore.transition`, which enforces the
legal state machine::

    queued ──> running ──> done
       │          │  └───> failed ──> queued   (retry)
       │          └──────> cancelled ──> queued   (resume)
       ├────────> cancelled
       └────────> done   (cache hit)

Cancellation of a *running* job is cooperative: the store writes the
``CANCEL`` sentinel, the worker's preemption hook (polled at every
stage boundary, after the checkpoint is saved) sees it and stops with
:class:`~repro.core.pipeline.PipelinePreempted`; the scheduler then
parks the job as ``cancelled``.  Because the checkpoint for the last
completed unit is already on disk, a later resume replays the rest of
the pipeline bit-identically.

All mutation happens in one process (the engine's); the threading lock
serializes the scheduler thread against RPC handlers.  Other processes
(pool workers) only ever *read* job documents and *create* files under
their own job directory.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.clock import wall_time

__all__ = ["JOB_KIND", "JOB_SCHEMA_VERSION", "JOB_STATES",
           "TERMINAL_STATES", "JobError", "JobRequest", "JobStateError",
           "JobStore", "load_job_schema", "validate_job"]

JOB_KIND = "repro.service.job"
JOB_SCHEMA_VERSION = 1

#: Every legal job state, in rough lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job no longer makes progress from (``cancelled``/``failed``
#: jobs can still be requeued explicitly via :meth:`JobStore.requeue`).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: The legal transitions of the job state machine.
_TRANSITIONS = frozenset({
    ("queued", "running"),
    ("queued", "done"),        # cache hit short-circuit
    ("queued", "cancelled"),
    ("running", "done"),
    ("running", "failed"),
    ("running", "cancelled"),  # preempted at a stage boundary
    ("cancelled", "queued"),   # resume
    ("failed", "queued"),      # retry
})

_SCHEMA_PATH = Path(__file__).with_name("job_schema.json")


class JobError(RuntimeError):
    """A job or job document is missing or malformed."""


class JobStateError(JobError):
    """An illegal state transition was requested."""


@dataclass(frozen=True)
class JobRequest:
    """What to place: the JSON-safe submission payload.

    Exactly one of ``circuit`` (a suite benchmark name) or
    ``bookshelf`` (a ``.nodes``/``.nets`` file prefix) names the
    netlist source; workers rebuild the netlist from this descriptor,
    so requests stay picklable and spool-able.

    Attributes:
        config: the placement config as ``PlacementConfig.to_dict()``.
        circuit: suite benchmark name (``ibm01`` …), or ``None``.
        bookshelf: Bookshelf file prefix, or ``None``.
        scale: suite benchmark scale (ignored for Bookshelf input).
        spec: serialized pipeline spec, or ``None`` for the default
            flow derived from ``config``.
        label: display label; defaults to the netlist source.
        telemetry_prefix: when set, the worker writes
            ``<prefix>.trace.jsonl`` and ``<prefix>.manifest.json``.
        want_telemetry: ship the run's telemetry snapshot back to the
            dispatching side (for ``--trace`` style reports).
        check: assert legality of the final placement.
    """

    config: Dict[str, Any]
    circuit: Optional[str] = None
    bookshelf: Optional[str] = None
    scale: float = 0.05
    spec: Optional[Dict[str, Any]] = None
    label: Optional[str] = None
    telemetry_prefix: Optional[str] = None
    want_telemetry: bool = False
    check: bool = False

    def __post_init__(self) -> None:
        if (self.circuit is None) == (self.bookshelf is None):
            raise ValueError("a job request needs exactly one of "
                             "'circuit' or 'bookshelf'")

    @property
    def source(self) -> str:
        """Human-readable netlist source description."""
        if self.circuit is not None:
            return f"{self.circuit}@{self.scale}"
        return str(self.bookshelf)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (round-trips through :meth:`from_dict`)."""
        return {
            "config": dict(self.config),
            "circuit": self.circuit,
            "bookshelf": self.bookshelf,
            "scale": float(self.scale),
            "spec": self.spec,
            "label": self.label,
            "telemetry_prefix": self.telemetry_prefix,
            "want_telemetry": bool(self.want_telemetry),
            "check": bool(self.check),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRequest":
        """Inverse of :meth:`to_dict`, rejecting unknown keys."""
        known = {"config", "circuit", "bookshelf", "scale", "spec",
                 "label", "telemetry_prefix", "want_telemetry", "check"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job-request keys: {unknown}")
        config = data.get("config")
        if not isinstance(config, Mapping):
            raise ValueError("job request needs a 'config' object")
        return cls(
            config=dict(config),
            circuit=data.get("circuit"),
            bookshelf=data.get("bookshelf"),
            scale=float(data.get("scale", 0.05)),
            spec=(dict(data["spec"])
                  if isinstance(data.get("spec"), Mapping) else None),
            label=data.get("label"),
            telemetry_prefix=data.get("telemetry_prefix"),
            want_telemetry=bool(data.get("want_telemetry", False)),
            check=bool(data.get("check", False)))


def load_job_schema() -> Dict[str, Any]:
    """Load the packaged job-document schema."""
    with open(_SCHEMA_PATH, "r", encoding="utf-8") as fh:
        schema = json.load(fh)
    assert isinstance(schema, dict)
    return schema


def validate_job(document: Dict[str, Any]) -> List[str]:
    """Validate a job document; returns errors (empty = valid)."""
    from repro.obs.validate import validate
    return validate(document, load_job_schema())


@dataclass
class JobStore:
    """A directory of spooled jobs with atomic state transitions.

    Attributes:
        root: the store root directory (created on construction).
    """

    root: Path
    _lock: threading.RLock = field(init=False, repr=False)

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        """The job's spool directory."""
        return self.root / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        """Where the job's run checkpoints live."""
        return self.job_dir(job_id) / "checkpoint"

    def result_dir(self, job_id: str) -> Path:
        """Where the job's result artifacts live."""
        return self.job_dir(job_id) / "result"

    def cancel_path(self, job_id: str) -> Path:
        """The cooperative-cancellation sentinel file."""
        return self.job_dir(job_id) / "CANCEL"

    def _doc_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    # -- creation ------------------------------------------------------
    def create(self, request: JobRequest,
               hashes: Mapping[str, str]) -> Dict[str, Any]:
        """Spool a new ``queued`` job; returns its document.

        Args:
            request: the submission payload.
            hashes: the job's identity —  ``config``, ``spec``,
                ``netlist`` content hashes plus the derived
                ``cache_key``.
        """
        with self._lock:
            job_id = self._allocate_id()
            now = wall_time()
            document: Dict[str, Any] = {
                "kind": JOB_KIND,
                "schema_version": JOB_SCHEMA_VERSION,
                "id": job_id,
                "state": "queued",
                "created_unix": now,
                "updated_unix": now,
                "label": request.label or request.source,
                "request": request.to_dict(),
                "hashes": dict(hashes),
                "cache": "miss",
                "preemptions": 0,
                "cancel_requested": False,
                "error": None,
                "result": None,
                "manifest_path": None,
            }
            self._write(job_id, document)
            return document

    def _allocate_id(self) -> str:
        existing = [p.name for p in self.root.iterdir()
                    if p.is_dir() and p.name.startswith("job-")]
        index = len(existing) + 1
        while True:
            job_id = f"job-{index:06d}"
            try:
                (self.root / job_id).mkdir(exist_ok=False)
                return job_id
            except FileExistsError:
                index += 1

    # -- reads ---------------------------------------------------------
    def load(self, job_id: str) -> Dict[str, Any]:
        """Read one job document.

        Raises:
            JobError: the job does not exist or its document is
                malformed.
        """
        path = self._doc_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            raise JobError(f"no such job: {job_id}") from None
        except json.JSONDecodeError as exc:
            raise JobError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(document, dict) \
                or document.get("kind") != JOB_KIND:
            raise JobError(f"{path}: not a {JOB_KIND} document")
        return document

    def list_jobs(self) -> List[Dict[str, Any]]:
        """All job documents, ordered by job id (submission order)."""
        with self._lock:
            ids = sorted(p.name for p in self.root.iterdir()
                         if p.is_dir() and p.name.startswith("job-")
                         and (p / "job.json").is_file())
            return [self.load(job_id) for job_id in ids]

    def cancel_requested(self, job_id: str) -> bool:
        """Whether the job's cancel sentinel exists."""
        return self.cancel_path(job_id).exists()

    # -- mutation ------------------------------------------------------
    def _write(self, job_id: str, document: Dict[str, Any]) -> None:
        errors = validate_job(document)
        if errors:
            raise JobError("refusing to write an invalid job document: "
                           + "; ".join(errors))
        path = self._doc_path(job_id)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def update(self, job_id: str, **fields: Any) -> Dict[str, Any]:
        """Merge non-state fields into a job document atomically."""
        if "state" in fields:
            raise JobStateError("use transition() to change a job's "
                                "state")
        with self._lock:
            document = self.load(job_id)
            document.update(fields)
            document["updated_unix"] = wall_time()
            self._write(job_id, document)
            return document

    def transition(self, job_id: str, to_state: str,
                   expect: Optional[Tuple[str, ...]] = None,
                   **fields: Any) -> Dict[str, Any]:
        """Atomically move a job to ``to_state`` (merging ``fields``).

        Args:
            job_id: the job to transition.
            to_state: the new state.
            expect: optionally restrict the allowed *current* states;
                the state-machine check applies either way.
            fields: extra document fields to merge in the same write.

        Raises:
            JobStateError: the transition is not in the legal state
                machine, or the current state is not in ``expect``.
        """
        if to_state not in JOB_STATES:
            raise JobStateError(f"unknown job state {to_state!r}")
        with self._lock:
            document = self.load(job_id)
            current = str(document["state"])
            if expect is not None and current not in expect:
                raise JobStateError(
                    f"{job_id} is {current!r}, expected one of "
                    f"{list(expect)}")
            if (current, to_state) not in _TRANSITIONS:
                raise JobStateError(
                    f"illegal transition {current!r} -> {to_state!r} "
                    f"for {job_id}")
            document["state"] = to_state
            document.update(fields)
            document["updated_unix"] = wall_time()
            self._write(job_id, document)
            return document

    def request_cancel(self, job_id: str) -> Dict[str, Any]:
        """Raise the cancel sentinel and flag the document.

        A running worker's preemption hook polls the sentinel at every
        stage boundary; a queued job is cancelled by the scheduler (or
        the engine) before dispatch.
        """
        with self._lock:
            self.load(job_id)  # existence check
            self.cancel_path(job_id).touch()
            return self.update(job_id, cancel_requested=True)

    def clear_cancel(self, job_id: str) -> None:
        """Drop the cancel sentinel (the resume path)."""
        with self._lock:
            try:
                self.cancel_path(job_id).unlink()
            except FileNotFoundError:
                pass

    def requeue(self, job_id: str) -> Dict[str, Any]:
        """Move a ``cancelled``/``failed`` job back to ``queued``.

        Clears the cancel sentinel first, so the resumed run is not
        immediately re-preempted; the job resumes from its last
        checkpoint and finishes bit-identically to an uninterrupted
        run.
        """
        with self._lock:
            self.clear_cancel(job_id)
            return self.transition(job_id, "queued",
                                   expect=("cancelled", "failed"),
                                   cancel_requested=False, error=None)
