"""Unix-socket JSON-RPC for the placement engine.

Wire format: newline-delimited JSON objects.  Requests are
``{"id": <any>, "method": <name>, "params": {...}}``; responses echo
the id with either ``{"result": ...}`` or
``{"error": {"code": <int>, "message": <str>}}``.

Methods:
    ``submit``    params: a job-request document (+ optional
                  ``netlist_hash``); result: ``{"job_id": ...}``
    ``status``    params: ``{"job_id"}``; result: the job document
    ``list``      result: ``{"jobs": [...]}``
    ``cancel``    params: ``{"job_id"}``; result: the job document
    ``resume``    params: ``{"job_id"}``; result: the job document
    ``result``    params: ``{"job_id"}``; result: summary + artifact
                  paths of a ``done`` job
    ``stats``     result: service counters + per-task liveness
    ``shutdown``  result: ``{"ok": true}``; the server then exits

The server is a single-threaded ``selectors`` loop — job execution
happens on the scheduler's backend, so the RPC thread only ever does
bookkeeping, and all engine calls are serialized without extra locks.

This is the **only** module in ``src/repro`` that may import
``socket``/``selectors`` (lint rule RPL014): every other layer talks
to the service through :class:`ServiceClient` or the engine API.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import get_logger
from repro.service.engine import PlacementEngine
from repro.service.jobstore import (JobError, JobRequest,
                                    JobStateError)

__all__ = ["RpcError", "RpcServer", "ServiceClient"]

_log = get_logger(__name__)

#: JSON-RPC-style error codes used on the wire.
_INVALID_REQUEST = -32600
_METHOD_NOT_FOUND = -32601
_INVALID_PARAMS = -32602
_JOB_ERROR = -32000


class RpcError(RuntimeError):
    """A structured RPC failure (server- or client-side).

    Attributes:
        code: the numeric wire code.
        message: the human-readable description.
    """

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = int(code)
        self.message = message


class RpcServer:
    """Serves a :class:`PlacementEngine` over a unix socket.

    Args:
        engine: the engine to expose (its scheduler thread should be
            started by the caller; the server never pumps).
        socket_path: filesystem path of the unix socket to bind.
    """

    def __init__(self, engine: PlacementEngine,
                 socket_path: Union[str, Path]) -> None:
        self.engine = engine
        self.socket_path = str(socket_path)
        self._shutdown = False

    # -- method dispatch -----------------------------------------------
    def handle(self, method: str,
               params: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one RPC method; returns its result document."""
        try:
            if method == "submit":
                return self._handle_submit(params)
            if method == "status":
                return self.engine.status(self._job_id(params))
            if method == "list":
                return {"jobs": self.engine.list_jobs()}
            if method == "cancel":
                return self.engine.cancel(self._job_id(params))
            if method == "resume":
                return self.engine.resume(self._job_id(params))
            if method == "result":
                return self._handle_result(params)
            if method == "stats":
                return {"counters": self.engine.counters(),
                        "liveness": self.engine.scheduler.liveness()}
            if method == "shutdown":
                self._shutdown = True
                return {"ok": True}
        except RpcError:
            raise
        except (JobStateError, JobError, ValueError) as exc:
            raise RpcError(_JOB_ERROR, str(exc)) from exc
        raise RpcError(_METHOD_NOT_FOUND, f"unknown method {method!r}")

    @staticmethod
    def _job_id(params: Dict[str, Any]) -> str:
        job_id = params.get("job_id")
        if not isinstance(job_id, str):
            raise RpcError(_INVALID_PARAMS, "missing string 'job_id'")
        return job_id

    def _handle_submit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        digest = params.pop("netlist_hash", None)
        if digest is not None and not isinstance(digest, str):
            raise RpcError(_INVALID_PARAMS,
                           "'netlist_hash' must be a string")
        request = JobRequest.from_dict(params)
        job_id = self.engine.submit(request, netlist_digest=digest)
        return {"job_id": job_id}

    def _handle_result(self, params: Dict[str, Any]) -> Dict[str, Any]:
        document = self.engine.status(self._job_id(params))
        if document["state"] != "done":
            raise RpcError(_JOB_ERROR,
                           f"{document['id']} is {document['state']}, "
                           f"not done")
        result_dir = self.engine.store.result_dir(str(document["id"]))
        return {"id": document["id"],
                "cache": document["cache"],
                "result": document["result"],
                "manifest_path": document["manifest_path"],
                "placement_path": str(result_dir / "placement.npz")}

    # -- socket loop ---------------------------------------------------
    def serve_forever(self) -> None:
        """Accept and serve connections until ``shutdown`` arrives.

        Unlinks a stale socket path on bind and removes the socket on
        exit.  Intended to run on the main thread of ``repro serve``
        while the engine's scheduler thread pumps jobs.
        """
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        selector = selectors.DefaultSelector()
        try:
            server.bind(self.socket_path)
            server.listen()
            server.setblocking(False)
            selector.register(server, selectors.EVENT_READ, data=None)
            buffers: Dict[socket.socket, bytes] = {}
            while not self._shutdown:
                for key, _ in selector.select(timeout=0.2):
                    if key.data is None:
                        conn, _addr = server.accept()
                        conn.setblocking(False)
                        selector.register(conn, selectors.EVENT_READ,
                                          data="conn")
                        buffers[conn] = b""
                    else:
                        conn = key.fileobj  # type: ignore[assignment]
                        self._pump_connection(conn, selector, buffers)
        finally:
            selector.close()
            server.close()
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass

    def _pump_connection(self, conn: socket.socket,
                         selector: selectors.BaseSelector,
                         buffers: Dict[socket.socket, bytes]) -> None:
        try:
            chunk = conn.recv(65536)
        except (ConnectionResetError, BlockingIOError):
            chunk = b""
        if not chunk:
            selector.unregister(conn)
            buffers.pop(conn, None)
            conn.close()
            return
        buffers[conn] += chunk
        while b"\n" in buffers[conn]:
            line, buffers[conn] = buffers[conn].split(b"\n", 1)
            if not line.strip():
                continue
            response = self._respond(line)
            conn.setblocking(True)
            try:
                conn.sendall(json.dumps(response).encode("utf-8")
                             + b"\n")
            except OSError:
                selector.unregister(conn)
                buffers.pop(conn, None)
                conn.close()
                return
            finally:
                if conn.fileno() >= 0:
                    conn.setblocking(False)
            if self._shutdown:
                return

    def _respond(self, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise RpcError(_INVALID_REQUEST,
                               "request must be a JSON object")
            request_id = request.get("id")
            method = request.get("method")
            if not isinstance(method, str):
                raise RpcError(_INVALID_REQUEST,
                               "missing string 'method'")
            params = request.get("params") or {}
            if not isinstance(params, dict):
                raise RpcError(_INVALID_PARAMS,
                               "'params' must be an object")
            return {"id": request_id,
                    "result": self.handle(method, dict(params))}
        except RpcError as exc:
            return {"id": request_id,
                    "error": {"code": exc.code,
                              "message": exc.message}}
        except json.JSONDecodeError as exc:
            return {"id": request_id,
                    "error": {"code": _INVALID_REQUEST,
                              "message": f"invalid JSON: {exc}"}}


class ServiceClient:
    """Blocking client for the unix-socket RPC API.

    Args:
        socket_path: path of a listening :class:`RpcServer` socket.

    Example:
        >>> with ServiceClient("/tmp/repro.sock") as client:   # doctest: +SKIP
        ...     job_id = client.submit(request_doc)["job_id"]
        ...     client.status(job_id)["state"]
    """

    def __init__(self, socket_path: Union[str, Path]) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def call(self, method: str, **params: Any) -> Any:
        """Issue one RPC call; returns the result payload.

        Raises:
            RpcError: the server answered with an error document.
        """
        self._next_id += 1
        request = {"id": self._next_id, "method": method,
                   "params": params}
        self._file.write(json.dumps(request).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise RpcError(_INVALID_REQUEST,
                           "server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise RpcError(_INVALID_REQUEST,
                           "malformed response from server")
        if "error" in response and response["error"] is not None:
            error = response["error"]
            raise RpcError(int(error.get("code", _JOB_ERROR)),
                           str(error.get("message", "unknown error")))
        return response.get("result")

    # -- convenience wrappers ------------------------------------------
    def submit(self, request: Dict[str, Any],
               netlist_hash: Optional[str] = None) -> Dict[str, Any]:
        """Submit a job-request document; returns ``{"job_id": ...}``."""
        params = dict(request)
        if netlist_hash is not None:
            params["netlist_hash"] = netlist_hash
        result = self.call("submit", **params)
        assert isinstance(result, dict)
        return result

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current document."""
        result = self.call("status", job_id=job_id)
        assert isinstance(result, dict)
        return result

    def list_jobs(self) -> Any:
        """All job documents."""
        result = self.call("list")
        assert isinstance(result, dict)
        return result["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation of a job."""
        result = self.call("cancel", job_id=job_id)
        assert isinstance(result, dict)
        return result

    def resume(self, job_id: str) -> Dict[str, Any]:
        """Requeue a cancelled/failed job."""
        result = self.call("resume", job_id=job_id)
        assert isinstance(result, dict)
        return result

    def result(self, job_id: str) -> Dict[str, Any]:
        """Result summary and artifact paths of a ``done`` job."""
        result = self.call("result", job_id=job_id)
        assert isinstance(result, dict)
        return result

    def stats(self) -> Dict[str, Any]:
        """Service counters and per-task liveness."""
        result = self.call("stats")
        assert isinstance(result, dict)
        return result

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to exit its accept loop."""
        result = self.call("shutdown")
        assert isinstance(result, dict)
        return result

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()
