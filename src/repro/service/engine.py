"""The placement engine: the façade every run path submits through.

``PlacementEngine`` composes the job store, the result cache, an
execution backend and the scheduler into one object with two modes:

- **Spooled** (``submit`` + ``wait``/``serve``): jobs execute as
  :func:`~repro.service.worker.execute_job` payloads on the backend —
  the ``sweep`` and ``serve`` paths.
- **Inline** (``run_inline``): the caller's own netlist/config/spec
  objects run on the calling thread, with job bookkeeping wrapped
  around the exact historical call sequence — the ``place`` path,
  which must stay bit-identical to the pre-service CLI.

Either way the result lands in the content-addressed cache, so a
``place`` today seeds a cache hit for a ``sweep`` point tomorrow.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro import obs
from repro.core.checkpoint import CheckpointError
from repro.core.config import PlacementConfig
from repro.core.pipeline import (PipelineHalted, PipelineSpec,
                                 default_pipeline_spec)
from repro.core.placer import Placer3D
from repro.core.result import PlacementResult
from repro.metrics.report import evaluate_placement
from repro.netlist.netlist import Netlist
from repro.obs.manifest import config_hash, content_hash
from repro.parallel import create_backend
from repro.service.cache import (CacheEntry, ResultCache, cache_key,
                                 netlist_hash)
from repro.service.jobstore import JobRequest, JobStateError, JobStore
from repro.service.scheduler import Scheduler, fulfil_from_cache
from repro.service.worker import (load_job_netlist, result_summary)

__all__ = ["PlacementEngine"]


class PlacementEngine:
    """Job store + cache + backend + scheduler behind one interface.

    Args:
        jobs_dir: the job-store root (spool directories live here).
        cache_dir: the result-cache root; defaults to
            ``<jobs_dir>/cache``.
        workers: execution-backend worker count (``0``/``None`` =
            auto, same resolution as ``--workers``).
        recorder: service telemetry recorder; a private one is created
            when omitted (counters surface via :meth:`counters`).
        poll_seconds: scheduler pump cadence.
    """

    def __init__(self, jobs_dir: Union[str, Path],
                 cache_dir: Optional[Union[str, Path]] = None,
                 workers: Optional[int] = None,
                 recorder: Optional[obs.Recorder] = None,
                 poll_seconds: float = 0.05) -> None:
        self.jobs_dir = Path(jobs_dir)
        self.store = JobStore(self.jobs_dir)
        self.cache = ResultCache(cache_dir if cache_dir is not None
                                 else self.jobs_dir / "cache")
        self.backend = create_backend(workers)
        self.recorder = recorder if recorder is not None \
            else obs.Recorder()
        self.scheduler = Scheduler(self.store, self.cache, self.backend,
                                   recorder=self.recorder,
                                   poll_seconds=poll_seconds)

    # -- submission ----------------------------------------------------
    def job_hashes(self, request: JobRequest,
                   netlist: Optional[Netlist] = None,
                   netlist_digest: Optional[str] = None,
                   ) -> Dict[str, str]:
        """The identity hash triple (plus cache key) of a request.

        Args:
            request: the submission payload.
            netlist: an already-loaded netlist to hash (avoids
                reloading when the caller has one — e.g. a sweep
                hashing one circuit for every point).
            netlist_digest: a precomputed netlist hash (strongest
                form of the same shortcut).
        """
        config = PlacementConfig.from_dict(request.config)
        spec_doc = (request.spec if request.spec is not None
                    else default_pipeline_spec(config).to_dict())
        if netlist_digest is None:
            if netlist is None:
                netlist = load_job_netlist(request, config.seed)
            netlist_digest = netlist_hash(netlist)
        cfg_hash = config_hash(config)
        spec_hash = content_hash(spec_doc)
        return {"config": cfg_hash, "spec": spec_hash,
                "netlist": netlist_digest,
                "cache_key": cache_key(cfg_hash, spec_hash,
                                       netlist_digest)}

    def submit(self, request: JobRequest,
               netlist: Optional[Netlist] = None,
               netlist_digest: Optional[str] = None) -> str:
        """Spool a new queued job; returns its job id."""
        hashes = self.job_hashes(request, netlist=netlist,
                                 netlist_digest=netlist_digest)
        document = self.store.create(request, hashes)
        self.recorder.count("jobs/submitted")
        return str(document["id"])

    # -- inline execution (the bit-identical `place` path) -------------
    def run_inline(self, job_id: str, *, netlist: Netlist,
                   config: PlacementConfig, spec: PipelineSpec,
                   recorder: Optional[obs.Recorder] = None,
                   check: bool = False,
                   checkpoint_dir: Optional[Union[str, Path]] = None,
                   resume: bool = False,
                   halt_after: Optional[str] = None,
                   ) -> PlacementResult:
        """Run a queued job on the calling thread with the caller's
        own objects.

        The placer invocation is exactly the historical CLI sequence —
        same netlist/config/spec/recorder instances, same keyword
        values — so the resulting placement is bit-identical to the
        pre-service run path; the engine only wraps state transitions
        and result/cache publication around it.

        Raises:
            PipelineHalted: ``halt_after`` boundary reached (job parks
                as ``cancelled``, resumable).
            CheckpointError: resume mismatch (job parks as ``failed``).
        """
        self.store.transition(job_id, "running", expect=("queued",))
        self.recorder.count("cache/miss")
        placer = Placer3D(netlist, config, recorder=recorder, spec=spec)
        try:
            result = placer.run(check=check,
                                checkpoint_dir=checkpoint_dir,
                                resume=resume, halt_after=halt_after)
        except PipelineHalted:
            # halted at a boundary with its checkpoint behind: park as
            # cancelled (the resumable parking state)
            self.store.transition(job_id, "cancelled",
                                  expect=("running",))
            raise
        except CheckpointError as exc:
            self.store.transition(job_id, "failed", expect=("running",),
                                  error=str(exc))
            raise
        except Exception as exc:
            self.store.transition(job_id, "failed", expect=("running",),
                                  error=str(exc))
            raise
        self._publish_inline(job_id, netlist, config, spec, result)
        return result

    def _publish_inline(self, job_id: str, netlist: Netlist,
                        config: PlacementConfig, spec: PipelineSpec,
                        result: PlacementResult) -> None:
        document = self.store.load(job_id)
        result_dir = self.store.result_dir(job_id)
        result_dir.mkdir(exist_ok=True)
        placement_path = result_dir / "placement.npz"
        np.savez_compressed(placement_path, x=result.placement.x,
                            y=result.placement.y, z=result.placement.z)
        manifest = obs.build_manifest(
            netlist, config, result, pipeline=spec.to_dict(),
            job={"id": job_id, "cache": "miss",
                 "preemptions": int(document["preemptions"])})
        manifest_path = obs.write_manifest(result_dir / "manifest.json",
                                           manifest)
        report = evaluate_placement(result.placement, config.tech,
                                    thermal=False)
        summary = result_summary(result, report)
        self.store.transition(job_id, "done", expect=("running",),
                              result=summary,
                              manifest_path=manifest_path)
        self.recorder.count("jobs/done")
        self.cache.store(str(document["hashes"]["cache_key"]),
                         placement_path, manifest, summary)

    def try_cache(self, job_id: str) -> Optional[CacheEntry]:
        """Short-circuit a queued job if its key is already cached."""
        document = self.store.load(job_id)
        if document["state"] != "queued":
            return None
        entry = self.cache.fetch(str(document["hashes"]["cache_key"]))
        if entry is None:
            return None
        fulfil_from_cache(self.store, document, entry, self.recorder)
        return entry

    # -- lifecycle operations ------------------------------------------
    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current document."""
        return self.store.load(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        """All job documents in submission order."""
        return self.store.list_jobs()

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation (cooperative for running jobs).

        A queued job parks as ``cancelled`` immediately; a running job
        keeps going until its next stage boundary, where the worker's
        preemption hook sees the sentinel and stops (the scheduler
        then parks it).  Either way the checkpoint state supports a
        bit-identical :meth:`resume`.
        """
        document = self.store.request_cancel(job_id)
        if document["state"] == "queued":
            try:
                document = self.store.transition(job_id, "cancelled",
                                                 expect=("queued",))
            except JobStateError:
                # raced the scheduler's dispatch; the sentinel still
                # preempts the now-running job at its next boundary
                document = self.store.load(job_id)
        return document

    def resume(self, job_id: str) -> Dict[str, Any]:
        """Requeue a cancelled/failed job to resume from its
        checkpoint."""
        return self.store.requeue(job_id)

    def job_section(self, job_id: str) -> Dict[str, Any]:
        """The manifest ``job`` section for this job."""
        document = self.store.load(job_id)
        return {"id": str(document["id"]),
                "cache": str(document["cache"]),
                "preemptions": int(document["preemptions"])}

    def outcome(self, job_id: str) -> Optional[Dict[str, Any]]:
        """In-memory worker outcome (telemetry included), if any."""
        return self.scheduler.outcome(job_id)

    def counters(self) -> Dict[str, float]:
        """Service telemetry counters (``cache/hit`` …)."""
        return dict(self.recorder.snapshot().counters)

    # -- waiting -------------------------------------------------------
    def wait(self, job_ids: Optional[Iterable[str]] = None,
             timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Block until the given jobs (default: all) leave the active
        states; pumps the scheduler inline unless its thread runs.

        Returns:
            The final job documents, in the order requested.

        Raises:
            TimeoutError: active jobs remain after ``timeout`` seconds.
        """
        wanted = (list(job_ids) if job_ids is not None
                  else [d["id"] for d in self.store.list_jobs()])
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            if not self.scheduler.running:
                self.scheduler.pump()
            states = {job_id: self.store.load(job_id)["state"]
                      for job_id in wanted}
            if all(state not in ("queued", "running")
                   for state in states.values()):
                return [self.store.load(job_id) for job_id in wanted]
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"jobs still active after {timeout:.1f}s: "
                    + ", ".join(sorted(j for j, s in states.items()
                                       if s in ("queued", "running"))))
            time.sleep(self.scheduler.poll_seconds)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop the scheduler thread and release the backend."""
        self.scheduler.stop()
        self.backend.close()
        self.recorder.close()

    def __enter__(self) -> "PlacementEngine":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()
