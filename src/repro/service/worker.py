"""The job execution payload: what runs on a backend worker.

:func:`execute_job` is a module-level function of one picklable
``{"job_dir": ...}`` payload, so the scheduler can dispatch it through
either execution backend unchanged — inline on
:class:`~repro.parallel.SerialBackend`, in a separate process on
:class:`~repro.parallel.ProcessPoolBackend`.  Everything it needs is
(re)built from the spooled ``job.json``: the netlist from the request
descriptor, the config from its dict form, the pipeline spec from its
serialized form.

Cancellation and resume both ride the checkpoint substrate: the run
always checkpoints into the job's ``checkpoint/`` directory, the
preemption hook polls the job's ``CANCEL`` sentinel at every stage
boundary, and a requeued job resumes from the last checkpoint —
finishing bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro import obs
from repro.core.checkpoint import has_checkpoint
from repro.core.config import PlacementConfig
from repro.core.pipeline import (PipelinePreempted, PipelineSpec,
                                 default_pipeline_spec)
from repro.core.placer import Placer3D
from repro.metrics.report import PlacementReport, evaluate_placement
from repro.netlist import bookshelf
from repro.netlist.cache import (benchmark_key, bookshelf_key,
                                 cached_netlist)
from repro.netlist.netlist import Netlist
from repro.netlist.suite import load_benchmark
from repro.service.jobstore import JobRequest

__all__ = ["execute_job", "load_job_netlist", "result_summary"]


def load_job_netlist(request: JobRequest, seed: int) -> Netlist:
    """Rebuild the netlist a job request describes.

    Loads go through the content-keyed netlist cache: a sweep's
    per-alpha jobs and service resubmissions of one circuit parse or
    generate it once and unpickle pristine copies after that.
    Bookshelf circuits use the streaming reader, so full-size files
    parse in bounded memory.
    """
    if request.circuit is not None:
        circuit = request.circuit
        return cached_netlist(
            benchmark_key(circuit, request.scale, seed),
            lambda: load_benchmark(circuit, scale=request.scale,
                                   seed=seed))
    assert request.bookshelf is not None
    prefix = request.bookshelf
    return cached_netlist(
        bookshelf_key(prefix),
        lambda: bookshelf.read_bookshelf_streaming(prefix))


def result_summary(result: Any,
                   report: PlacementReport) -> Dict[str, Any]:
    """The compact result section stored on job documents.

    Wirelength/ILV come from the metric ``report`` (the evaluated
    placement, what ``sweep`` tables print), the objective and wall
    time from the placer ``result``.
    """
    return {
        "objective": float(result.objective),
        "wirelength": float(report.wirelength),
        "ilv": int(report.ilv),
        "ilv_density": float(report.ilv_density),
        "wall_seconds": float(result.runtime_seconds),
    }


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one spooled job to its next boundary: done or preempted.

    Args:
        payload: ``{"job_dir": <path>}`` — the job's spool directory
            (must contain ``job.json``).

    Returns:
        ``{"state": "preempted", "unit": ...}`` when the cancel
        sentinel stopped the run at a stage boundary (checkpoint
        already saved), else ``{"state": "done", "summary": ...,
        "manifest_path": ..., "manifest_errors": [...],
        "telemetry": Telemetry | None}``.  Exceptions propagate to the
        handle and park the job as ``failed``.
    """
    job_dir = Path(payload["job_dir"])
    with open(job_dir / "job.json", "r", encoding="utf-8") as fh:
        document = json.load(fh)
    request = JobRequest.from_dict(document["request"])
    config = PlacementConfig.from_dict(request.config)
    netlist = load_job_netlist(request, config.seed)
    spec = (PipelineSpec.from_dict(request.spec)
            if request.spec is not None
            else default_pipeline_spec(config))

    recorder: Optional[obs.Recorder] = None
    trace_path: Optional[str] = None
    if request.want_telemetry or request.telemetry_prefix:
        sink = None
        if request.telemetry_prefix:
            trace_path = f"{request.telemetry_prefix}.trace.jsonl"
            sink = obs.EventSink(trace_path)
        recorder = obs.Recorder(sink=sink)

    checkpoint_dir = job_dir / "checkpoint"
    cancel_path = job_dir / "CANCEL"

    def preempt() -> bool:
        return cancel_path.exists()

    placer = Placer3D(netlist, config, recorder=recorder, spec=spec)
    try:
        result = placer.run(check=request.check,
                            checkpoint_dir=checkpoint_dir,
                            resume=has_checkpoint(checkpoint_dir),
                            preempt=preempt)
    except PipelinePreempted as stopped:
        if recorder is not None:
            recorder.close()
        return {"state": "preempted", "unit": stopped.unit}
    if recorder is not None:
        recorder.close()

    report = evaluate_placement(result.placement, config.tech,
                                thermal=False)
    result_dir = job_dir / "result"
    result_dir.mkdir(exist_ok=True)
    placement_path = result_dir / "placement.npz"
    np.savez_compressed(placement_path, x=result.placement.x,
                        y=result.placement.y, z=result.placement.z)

    manifest = obs.build_manifest(
        netlist, config, result, trace_path=trace_path,
        pipeline=spec.to_dict(),
        job={"id": document["id"], "cache": "miss",
             "preemptions": int(document.get("preemptions", 0))})
    manifest_path = obs.write_manifest(result_dir / "manifest.json",
                                       manifest)
    errors = list(obs.validate_manifest(manifest))
    if request.telemetry_prefix:
        obs.write_manifest(f"{request.telemetry_prefix}.manifest.json",
                           manifest)
    return {
        "state": "done",
        "summary": result_summary(result, report),
        "manifest_path": manifest_path,
        "manifest_errors": errors,
        "telemetry": result.telemetry,
    }
